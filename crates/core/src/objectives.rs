//! Computing the estimated components `L`, `A`, `D` for a candidate set
//! (Algorithm 1, lines 4–10).
//!
//! For one query point (the vehicle at a route node `v`, planning to
//! rejoin the trip at node `r`), the components of every candidate charger
//! `b` are:
//!
//! * **ETA** — free-flow fastest-path time `v → b` (line 4);
//! * **L** — the clean-power forecast interval at the charger at ETA,
//!   capped by the charger's own rate and normalised by the environment's
//!   maximum clean power (lines 5–6);
//! * **A** — the availability forecast interval at ETA (lines 7–8);
//! * **D** — the out-and-back derouting energy `E(v→b) + E(b→r)`, scaled
//!   by the traffic energy-factor interval and normalised by the
//!   environment's maximum derouting energy (lines 9–10).
//!
//! Costs are batched: one forward time search, one forward energy
//! search, one reverse energy search — *independent of the candidate
//! count* — where the Brute-Force baseline pays per-charger searches.
//! The searches go through [`crate::detour::detour_batch`], which
//! dispatches on the configured
//! [`DetourBackend`](roadnet::DetourBackend) (batched Dijkstra sweeps or
//! the Contraction-Hierarchy index — bit-identical either way). Traffic
//! is applied as a per-query-time interval factor for the detour's
//! *dominant road class* (the class carrying the most metres of the
//! out-and-back path; see DESIGN.md §3: per-edge live congestion is
//! collapsed to a class-level factor, which preserves the
//! estimated-component structure the ranking consumes).

use crate::context::QueryCtx;
use crate::detour::detour_batch;
use ec_types::{
    ChargerId, ComponentQuality, EcError, Interval, NodeId, Provenance, SimDuration, SimTime,
    SourcedInterval,
};
use roadnet::SearchEngine;

/// The estimated components of one candidate charger at one query point.
#[derive(Debug, Clone, PartialEq)]
pub struct Components {
    /// Which charger.
    pub charger: ChargerId,
    /// Normalised sustainable charging level `[L_min, L_max]` ∈ `[0,1]`.
    pub l: Interval,
    /// Raw clean-power interval at the charger at ETA, kW (rate-capped).
    pub clean_kw: Interval,
    /// Availability `[A_min, A_max]` ∈ `[0,1]`.
    pub a: Interval,
    /// Normalised derouting cost `[D_min, D_max]` ∈ `[0,1]`.
    pub d: Interval,
    /// Estimated arrival at the charger.
    pub eta: SimTime,
    /// Raw detour energy interval, kWh (for display in the table).
    pub detour_kwh: Interval,
    /// How the data behind each component was obtained (fresh feed,
    /// stale-and-widened, or configured fallback).
    pub quality: Provenance,
}

/// The cheap, exactly-computable stage of one candidate's evaluation:
/// ETA, clean power (sun + wind, rate-capped), and the traffic-scaled
/// detour energy — everything except the availability forecast, which is
/// the one genuinely per-charger upstream feed. Shared verbatim between
/// the eager path and the lazy filter–refine engine
/// ([`crate::lazy`]) so both produce bit-identical values in the same
/// operation order.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CheapStage {
    pub charger: ChargerId,
    pub eta: SimTime,
    pub clean_kw: Interval,
    pub detour_kwh: Interval,
    pub l_quality: ComponentQuality,
    pub d_quality: ComponentQuality,
}

/// Evaluate the cheap stage for candidate `i` of a batched detour sweep.
/// `Ok(None)` = candidate dropped (unreachable, or battery-infeasible
/// for the configured vehicle).
pub(crate) fn eval_cheap(
    ctx: &QueryCtx<'_>,
    det: &crate::detour::DetourBatch,
    i: usize,
    cid: ChargerId,
    now: SimTime,
) -> Result<Option<CheapStage>, EcError> {
    let secs_fwd = det.secs.as_deref().expect("time sweep requested");
    let (Some(secs), Some(e_fwd), Some(e_ret)) = (secs_fwd[i], det.kwh_fwd[i], det.kwh_ret[i])
    else {
        return Ok(None); // unreachable candidate
    };
    let charger = ctx.fleet.get(cid);
    let eta = now + SimDuration::from_secs_f64(secs);

    // L (lines 5–6): forecast clean power at ETA — solar plus any
    // net-metered wind — capped by whichever is tighter: the charger's
    // delivery rate or (when a vehicle model is attached) the
    // vehicle's acceptance rate.
    // Normalised later once the pool maximum is known.
    let policy = &ctx.config.degraded;
    let (sun, sun_q) =
        component_or_fallback(ctx.server.sun_forecast(&charger.loc, now, eta), policy.sun())?;
    let (wind, wind_q) = if charger.has_wind() {
        component_or_fallback(ctx.server.wind_forecast(&charger.loc, now, eta), policy.wind())?
    } else {
        (Interval::zero(), ComponentQuality::Fresh)
    };
    let rate = match &ctx.config.vehicle {
        Some(v) => v.accept_rate(charger.kind).value(),
        None => charger.kind.rate().value(),
    };
    let clean_kw = Interval::new(
        (sun.lo() * charger.panel.value() + wind.lo() * charger.wind.value()).min(rate),
        (sun.hi() * charger.panel.value() + wind.hi() * charger.wind.value()).min(rate),
    );

    // D (lines 9–10): out-and-back energy under the traffic interval
    // of the detour's dominant road class. Normalised later once the
    // pool maximum is known.
    let (factor, d_q) = component_or_fallback(
        ctx.server.traffic_energy_forecast(det.class[i], now, eta),
        policy.traffic(),
    )?;
    let detour_kwh = Interval::point(e_fwd + e_ret) * factor;

    // Battery feasibility: drop candidates the vehicle might not
    // reach (and return from) with its reserve intact. Checked before
    // the availability feed so an infeasible candidate never counts as
    // an exact evaluation on either path.
    if let Some(v) = &ctx.config.vehicle {
        if !v.can_afford(detour_kwh.hi()) {
            return Ok(None);
        }
    }

    Ok(Some(CheapStage {
        charger: cid,
        eta,
        clean_kw,
        detour_kwh,
        l_quality: sun_q.worst(wind_q),
        d_quality: d_q,
    }))
}

/// The expensive per-charger step: the availability forecast at ETA
/// (lines 7–8), with the degraded-policy fallback applied.
pub(crate) fn eval_availability(
    ctx: &QueryCtx<'_>,
    charger: &chargers::Charger,
    now: SimTime,
    eta: SimTime,
) -> Result<(Interval, ComponentQuality), EcError> {
    component_or_fallback(
        ctx.server.availability_forecast(charger, now, eta),
        ctx.config.degraded.availability(),
    )
}

/// Assemble raw [`Components`] from a cheap stage plus an availability
/// interval; `l`/`d` are filled by the pool normalisation passes.
pub(crate) fn assemble(stage: &CheapStage, a: Interval, a_quality: ComponentQuality) -> Components {
    Components {
        charger: stage.charger,
        l: Interval::zero(),
        clean_kw: stage.clean_kw,
        a,
        d: Interval::zero(),
        eta: stage.eta,
        detour_kwh: stage.detour_kwh,
        quality: Provenance { l: stage.l_quality, a: a_quality, d: stage.d_quality },
    }
}

/// Unwrap a forecast, or substitute the configured fallback interval when
/// the source is exhausted and the degraded policy provides one. Returns
/// the interval together with the quality tag the component inherits;
/// with no fallback the provider error propagates.
///
/// # Errors
/// The original forecast error, when no fallback applies.
pub fn component_or_fallback(
    forecast: Result<SourcedInterval, EcError>,
    fallback: Option<Interval>,
) -> Result<(Interval, ComponentQuality), EcError> {
    match forecast {
        Ok(s) => Ok((s.value, s.quality)),
        Err(e) => fallback.map(|f| (f, ComponentQuality::Fallback)).ok_or(e),
    }
}

/// Compute components for every candidate; candidates unreachable from
/// `at_node` (or that cannot rejoin at `rejoin_node`) are dropped.
///
/// # Errors
/// Propagates provider failures from the information server.
pub fn compute_components(
    ctx: &QueryCtx<'_>,
    engine: &mut SearchEngine,
    at_node: NodeId,
    rejoin_node: NodeId,
    now: SimTime,
    candidates: &[ChargerId],
) -> Result<Vec<Components>, EcError> {
    if candidates.is_empty() {
        return Ok(Vec::new());
    }
    let nodes: Vec<NodeId> = candidates.iter().map(|&c| ctx.fleet.get(c).node).collect();
    let threads = ctx.config.threads;

    // Three batched searches (lines 4, 9–10) on the configured detour
    // backend; with parallel execution enabled the extra searches run on
    // pool engines concurrently — each is a pure function of
    // (graph, nodes), so overlapping them cannot change any result.
    let det = detour_batch(ctx, engine, at_node, rejoin_node, &nodes, true);

    // Per-candidate evaluation: reads only this candidate's slots of the
    // batched search results plus the (internally synchronised) info
    // server, so candidates are independent and parallelise without
    // changing any value. `Ok(None)` = candidate dropped (unreachable or
    // battery-infeasible).
    let eval_one = |i: usize, cid: ChargerId| -> Result<Option<Components>, EcError> {
        let Some(stage) = eval_cheap(ctx, &det, i, cid, now)? else {
            return Ok(None);
        };
        // A (lines 7–8).
        let (a, a_q) = eval_availability(ctx, ctx.fleet.get(cid), now, stage.eta)?;
        Ok(Some(assemble(&stage, a, a_q)))
    };

    // threads <= 1 is the plain sequential `?`-loop inside
    // try_parallel_map; otherwise results land in pre-indexed slots, so
    // flattening preserves candidate order exactly.
    let slots =
        ec_exec::try_parallel_map(threads, candidates, |_| (), |(), i, &cid| eval_one(i, cid))?;
    let mut out: Vec<Components> = slots.into_iter().flatten().collect();
    normalize_derouting(&mut out, ctx.norm.max_derouting_kwh);
    normalize_clean_power(&mut out);
    Ok(out)
}

/// Normalise each candidate's clean-power interval by "the environment's
/// maximum charging level value" (§III-B) — the largest clean power in
/// the current candidate pool. The scale uses the pool's largest
/// *midpoint* estimate: scaling by the optimistic endpoint would deflate
/// every `L` by the forecast uncertainty margin and systematically
/// under-weight the objective relative to the ground-truth referee. A
/// pool with no sun anywhere gets `L = 0` everywhere.
pub fn normalize_clean_power(comps: &mut [Components]) {
    let max = comps.iter().map(|c| c.clean_kw.mid()).fold(0.0f64, f64::max);
    if max <= f64::EPSILON {
        for c in comps {
            c.l = Interval::zero();
        }
        return;
    }
    for c in comps {
        c.l = Interval::new(
            (c.clean_kw.lo() / max).clamp(0.0, 1.0),
            (c.clean_kw.hi() / max).clamp(0.0, 1.0),
        );
    }
}

/// Normalise each candidate's derouting interval by "the environment's
/// maximum derouting distance" (§III-B) — the largest detour in the
/// current candidate pool, capped at the `R`-derived environment maximum
/// so one absurd outlier (a charger across the region) cannot compress
/// everyone else's `D` to zero. The farthest candidate gets `D = 1`; a
/// charger directly on the route gets `D ≈ 0`.
pub fn normalize_derouting(comps: &mut [Components], cap_kwh: f64) {
    // Scale on the pool's largest *midpoint* detour (see
    // `normalize_clean_power` for why the optimistic endpoint would bias
    // the objective weighting); endpoints beyond the scale clamp to 1.
    let max = comps
        .iter()
        .map(|c| c.detour_kwh.mid())
        .fold(0.0f64, f64::max)
        .min(cap_kwh.max(f64::EPSILON));
    if max <= f64::EPSILON {
        for c in comps {
            c.d = Interval::zero();
        }
        return;
    }
    for c in comps {
        c.d = Interval::new(
            (c.detour_kwh.lo() / max).clamp(0.0, 1.0),
            (c.detour_kwh.hi() / max).clamp(0.0, 1.0),
        );
    }
}

/// Recompute **only** the derouting component of previously computed
/// components from a new query point, keeping `L`/`A` as cached — the
/// adaptation step of Dynamic Caching (§IV-C: "an adaptation of a
/// previously generated solution occurs").
pub fn refresh_derouting(
    ctx: &QueryCtx<'_>,
    engine: &mut SearchEngine,
    at_node: NodeId,
    rejoin_node: NodeId,
    now: SimTime,
    cached: &[Components],
) -> Result<Vec<Components>, EcError> {
    if cached.is_empty() {
        return Ok(Vec::new());
    }
    let nodes: Vec<NodeId> = cached.iter().map(|c| ctx.fleet.get(c.charger).node).collect();
    let threads = ctx.config.threads;

    // Two batched energy searches on the configured detour backend,
    // overlapped on a pool engine when parallel execution is enabled
    // (pure functions of (graph, nodes)).
    let det = detour_batch(ctx, engine, at_node, rejoin_node, &nodes, false);
    let (kwh_fwd, kwh_ret) = (&det.kwh_fwd, &det.kwh_ret);

    let eval_one = |i: usize, comp: &Components| -> Result<Option<Components>, EcError> {
        let (Some(e_fwd), Some(e_ret)) = (kwh_fwd[i], kwh_ret[i]) else {
            return Ok(None);
        };
        let (factor, d_q) = component_or_fallback(
            ctx.server.traffic_energy_forecast(det.class[i], now, comp.eta),
            ctx.config.degraded.traffic(),
        )?;
        let mut refreshed = comp.clone();
        refreshed.detour_kwh = Interval::point(e_fwd + e_ret) * factor;
        refreshed.quality.d = d_q;
        Ok(Some(refreshed))
    };

    let slots =
        ec_exec::try_parallel_map(threads, cached, |_| (), |(), i, comp| eval_one(i, comp))?;
    let mut out: Vec<Components> = slots.into_iter().flatten().collect();
    normalize_derouting(&mut out, ctx.norm.max_derouting_kwh);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::EcoChargeConfig;
    use chargers::{synth_fleet, FleetParams};
    use ec_types::DayOfWeek;
    use eis::{InfoServer, SimProviders};
    use roadnet::{urban_grid, UrbanGridParams};

    struct Fixture {
        graph: roadnet::RoadGraph,
        fleet: chargers::ChargerFleet,
        server: InfoServer,
        sims: SimProviders,
        config: EcoChargeConfig,
    }

    impl Fixture {
        fn new() -> Self {
            let graph = urban_grid(&UrbanGridParams { cols: 12, rows: 12, ..Default::default() });
            let fleet =
                synth_fleet(&graph, &FleetParams { count: 40, seed: 3, ..Default::default() });
            let sims = SimProviders::new(9);
            let server = InfoServer::from_sims(sims.clone());
            Self { graph, fleet, server, sims, config: EcoChargeConfig::default() }
        }

        fn ctx(&self) -> QueryCtx<'_> {
            QueryCtx::new(&self.graph, &self.fleet, &self.server, &self.sims, self.config)
        }
    }

    #[test]
    fn components_cover_reachable_candidates() {
        let f = Fixture::new();
        let ctx = f.ctx();
        let mut engine = SearchEngine::new();
        let now = SimTime::at(0, DayOfWeek::Tue, 10, 0);
        let candidates: Vec<ChargerId> = f.fleet.iter().map(|c| c.id).take(20).collect();
        let comps =
            compute_components(&ctx, &mut engine, NodeId(0), NodeId(5), now, &candidates).unwrap();
        // The grid is connected: every candidate resolves.
        assert_eq!(comps.len(), 20);
        for c in &comps {
            assert!(c.l.lo() >= 0.0 && c.l.hi() <= 1.0, "L out of range: {}", c.l);
            assert!(c.a.lo() >= 0.0 && c.a.hi() <= 1.0, "A out of range: {}", c.a);
            assert!(c.d.lo() >= 0.0 && c.d.hi() <= 1.0, "D out of range: {}", c.d);
            assert!(c.eta >= now);
            assert!(c.detour_kwh.lo() >= 0.0);
        }
    }

    #[test]
    fn empty_candidates_give_empty_components() {
        let f = Fixture::new();
        let ctx = f.ctx();
        let mut engine = SearchEngine::new();
        let now = SimTime::at(0, DayOfWeek::Tue, 10, 0);
        assert!(compute_components(&ctx, &mut engine, NodeId(0), NodeId(1), now, &[])
            .unwrap()
            .is_empty());
    }

    #[test]
    fn nearer_chargers_deroute_less() {
        let f = Fixture::new();
        let ctx = f.ctx();
        let mut engine = SearchEngine::new();
        let now = SimTime::at(0, DayOfWeek::Tue, 10, 0);
        let at = NodeId(0);
        let pos = f.graph.point(at);
        // Nearest and farthest candidate by straight line.
        let mut by_dist: Vec<&chargers::Charger> = f.fleet.iter().collect();
        by_dist
            .sort_by(|a, b| pos.fast_dist_m(&a.loc).partial_cmp(&pos.fast_dist_m(&b.loc)).unwrap());
        let near = by_dist.first().unwrap().id;
        let far = by_dist.last().unwrap().id;
        let comps = compute_components(&ctx, &mut engine, at, at, now, &[near, far]).unwrap();
        assert_eq!(comps.len(), 2);
        assert!(
            comps[0].detour_kwh.mid() < comps[1].detour_kwh.mid(),
            "near {} vs far {}",
            comps[0].detour_kwh,
            comps[1].detour_kwh
        );
    }

    #[test]
    fn refresh_derouting_keeps_l_and_a() {
        let f = Fixture::new();
        let ctx = f.ctx();
        let mut engine = SearchEngine::new();
        let now = SimTime::at(0, DayOfWeek::Tue, 10, 0);
        let candidates: Vec<ChargerId> = f.fleet.iter().map(|c| c.id).take(10).collect();
        let comps =
            compute_components(&ctx, &mut engine, NodeId(0), NodeId(3), now, &candidates).unwrap();
        let later = now + SimDuration::from_mins(5);
        let refreshed =
            refresh_derouting(&ctx, &mut engine, NodeId(30), NodeId(33), later, &comps).unwrap();
        assert_eq!(refreshed.len(), comps.len());
        for (old, new) in comps.iter().zip(&refreshed) {
            assert_eq!(old.l, new.l, "L must be reused");
            assert_eq!(old.a, new.a, "A must be reused");
            assert_eq!(old.eta, new.eta, "cached ETA is kept");
        }
        // D generally changes from a different query point.
        assert!(comps.iter().zip(&refreshed).any(|(o, n)| o.d != n.d));
    }

    #[test]
    fn parallel_components_bit_identical_to_sequential() {
        let mut f = Fixture::new();
        let now = SimTime::at(0, DayOfWeek::Tue, 10, 0);
        let candidates: Vec<ChargerId> = f.fleet.iter().map(|c| c.id).collect();

        let seq = {
            let ctx = f.ctx();
            let mut engine = SearchEngine::new();
            compute_components(&ctx, &mut engine, NodeId(0), NodeId(5), now, &candidates).unwrap()
        };
        for threads in [2, 4, 8] {
            f.config.threads = threads;
            let ctx = f.ctx();
            let mut engine = SearchEngine::new();
            let par = compute_components(&ctx, &mut engine, NodeId(0), NodeId(5), now, &candidates)
                .unwrap();
            // PartialEq over every f64 field: bit-identical, not "close".
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn parallel_refresh_bit_identical_to_sequential() {
        let mut f = Fixture::new();
        let now = SimTime::at(0, DayOfWeek::Tue, 10, 0);
        let candidates: Vec<ChargerId> = f.fleet.iter().map(|c| c.id).take(25).collect();
        let later = now + SimDuration::from_mins(5);

        let (base, seq) = {
            let ctx = f.ctx();
            let mut engine = SearchEngine::new();
            let base =
                compute_components(&ctx, &mut engine, NodeId(0), NodeId(3), now, &candidates)
                    .unwrap();
            let seq =
                refresh_derouting(&ctx, &mut engine, NodeId(30), NodeId(33), later, &base).unwrap();
            (base, seq)
        };
        f.config.threads = 4;
        let ctx = f.ctx();
        let mut engine = SearchEngine::new();
        let par =
            refresh_derouting(&ctx, &mut engine, NodeId(30), NodeId(33), later, &base).unwrap();
        assert_eq!(par, seq);
    }

    #[test]
    fn ch_backend_bit_identical_to_dijkstra() {
        let mut f = Fixture::new();
        let now = SimTime::at(0, DayOfWeek::Tue, 10, 0);
        let candidates: Vec<ChargerId> = f.fleet.iter().map(|c| c.id).collect();
        let later = now + SimDuration::from_mins(5);

        let (base_comps, base_refresh) = {
            let ctx = f.ctx();
            let mut engine = SearchEngine::new();
            let comps =
                compute_components(&ctx, &mut engine, NodeId(0), NodeId(5), now, &candidates)
                    .unwrap();
            let refresh =
                refresh_derouting(&ctx, &mut engine, NodeId(30), NodeId(33), later, &comps)
                    .unwrap();
            (comps, refresh)
        };
        // CH backend, at several thread counts: every f64 field equal.
        for threads in [1, 4] {
            f.config.detour_backend = roadnet::DetourBackend::Ch;
            f.config.threads = threads;
            let ctx = f.ctx();
            let mut engine = SearchEngine::new();
            let comps =
                compute_components(&ctx, &mut engine, NodeId(0), NodeId(5), now, &candidates)
                    .unwrap();
            assert_eq!(comps, base_comps, "ch threads={threads}");
            let refresh =
                refresh_derouting(&ctx, &mut engine, NodeId(30), NodeId(33), later, &comps)
                    .unwrap();
            assert_eq!(refresh, base_refresh, "ch refresh threads={threads}");
        }
    }

    /// Satellite regression: a detour that is all motorway must be scaled
    /// by the motorway congestion profile, not the old hardcoded
    /// `Primary` one.
    #[test]
    fn motorway_heavy_detour_uses_motorway_profile() {
        use ec_types::{GeoPoint, Kilowatts};
        use roadnet::{GraphBuilder, RoadClass};

        let mut b = GraphBuilder::new();
        let o = GeoPoint::new(8.0, 53.0);
        let n0 = b.add_node(o);
        let n1 = b.add_node(o.offset_m(3_000.0, 0.0));
        let n2 = b.add_node(o.offset_m(6_000.0, 0.0));
        for (a, z) in [(n0, n1), (n1, n0), (n1, n2), (n2, n1)] {
            b.add_edge_with_len(a, z, 3_000.0, RoadClass::Motorway);
        }
        let graph = b.build();
        let fleet = chargers::ChargerFleet::new(vec![chargers::Charger {
            id: ChargerId::from_index(0),
            loc: graph.point(n2),
            node: n2,
            kind: chargers::ChargerKind::Dc50,
            panel: Kilowatts(30.0),
            wind: Kilowatts(0.0),
            archetype: ec_models::SiteArchetype::Highway,
        }]);
        let sims = SimProviders::new(9);
        let server = InfoServer::from_sims(sims.clone());
        let config = EcoChargeConfig::default();
        let ctx = QueryCtx::new(&graph, &fleet, &server, &sims, config);
        let mut engine = SearchEngine::new();
        // Morning rush: the class profiles diverge most.
        let now = SimTime::at(0, DayOfWeek::Tue, 8, 0);
        let comps = compute_components(&ctx, &mut engine, n0, n0, now, &[ChargerId::from_index(0)])
            .unwrap();
        assert_eq!(comps.len(), 1);
        let c = &comps[0];

        let motorway =
            ctx.server.traffic_energy_forecast(RoadClass::Motorway, now, c.eta).unwrap().value;
        let primary =
            ctx.server.traffic_energy_forecast(RoadClass::Primary, now, c.eta).unwrap().value;
        assert_ne!(motorway, primary, "class profiles must differ at rush hour");

        // Recover the raw out-and-back energy and check which profile
        // scaled it: identical operation order makes the comparison exact.
        let e_fwd = engine.one_to_many(
            &graph,
            n0,
            &[n2],
            roadnet::metric_cost(roadnet::CostMetric::Energy),
        )[0]
        .unwrap();
        let e_ret = engine.many_to_one(
            &graph,
            n0,
            &[n2],
            roadnet::metric_cost(roadnet::CostMetric::Energy),
        )[0]
        .unwrap();
        assert_eq!(c.detour_kwh, Interval::point(e_fwd + e_ret) * motorway);
        assert_ne!(c.detour_kwh, Interval::point(e_fwd + e_ret) * primary);
    }

    #[test]
    fn day_charger_has_higher_l_than_night() {
        let f = Fixture::new();
        let ctx = f.ctx();
        let mut engine = SearchEngine::new();
        let candidates: Vec<ChargerId> = f.fleet.iter().map(|c| c.id).collect();
        let noon = SimTime::at(0, DayOfWeek::Tue, 12, 30);
        let night = SimTime::at(0, DayOfWeek::Tue, 1, 30);
        let day_comps =
            compute_components(&ctx, &mut engine, NodeId(0), NodeId(1), noon, &candidates).unwrap();
        let night_comps =
            compute_components(&ctx, &mut engine, NodeId(0), NodeId(1), night, &candidates)
                .unwrap();
        let day_l: f64 = day_comps.iter().map(|c| c.l.mid()).sum();
        let night_l: f64 = night_comps.iter().map(|c| c.l.mid()).sum();
        assert!(day_l > night_l, "day {day_l} vs night {night_l}");
        assert!(night_l < 1e-6, "no clean energy at night");
    }
}
