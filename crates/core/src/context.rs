//! The query context: everything a ranking method needs to answer one
//! Offering-Table request, plus the shared normalisation environment and
//! the [`RankingMethod`] trait all four access paths implement.

use crate::offering::OfferingTable;
use crate::score::Weights;
use crate::vehicle::Vehicle;
use chargers::ChargerFleet;
use ec_types::{EcError, Interval, SimTime};
use eis::InfoServer;
use eis::SimProviders;
use roadnet::{DetourBackend, DetourCh, RoadGraph};
use serde::{Deserialize, Serialize};
use std::sync::{Arc, OnceLock};
use trajgen::Trip;

/// What the ranking does when a component's data source is exhausted —
/// upstream down, retries spent, breaker open, and no last-known-good
/// value to widen.
///
/// With fallback enabled (the default), the affected component is
/// replaced by its configured fallback interval — maximally uncertain but
/// honest — and the row is tagged [`ec_types::ComponentQuality::Fallback`];
/// the query still returns a ranked table. With fallback disabled, the
/// query surfaces the provider error, restoring the strict pre-degraded
/// behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradedPolicy {
    /// Whether exhausted components fall back instead of erroring.
    pub fallback_enabled: bool,
    /// Fallback sun-fraction interval (domain `[0,1]`).
    pub sun_fallback: Interval,
    /// Fallback wind capacity-factor interval (domain `[0,1]`).
    pub wind_fallback: Interval,
    /// Fallback availability interval (domain `[0,1]`).
    pub availability_fallback: Interval,
    /// Fallback traffic energy-factor interval (`lo ≥ 1.0`).
    pub traffic_fallback: Interval,
}

impl Default for DegradedPolicy {
    fn default() -> Self {
        Self {
            fallback_enabled: true,
            sun_fallback: Interval::new(0.0, 1.0),
            wind_fallback: Interval::new(0.0, 1.0),
            availability_fallback: Interval::new(0.0, 1.0),
            traffic_fallback: Interval::new(1.0, 2.0),
        }
    }
}

impl DegradedPolicy {
    /// The strict policy: any exhausted component fails the query.
    #[must_use]
    pub fn disabled() -> Self {
        Self { fallback_enabled: false, ..Self::default() }
    }

    /// Sun fallback, when enabled.
    #[must_use]
    pub fn sun(&self) -> Option<Interval> {
        self.fallback_enabled.then_some(self.sun_fallback)
    }

    /// Wind fallback, when enabled.
    #[must_use]
    pub fn wind(&self) -> Option<Interval> {
        self.fallback_enabled.then_some(self.wind_fallback)
    }

    /// Availability fallback, when enabled.
    #[must_use]
    pub fn availability(&self) -> Option<Interval> {
        self.fallback_enabled.then_some(self.availability_fallback)
    }

    /// Traffic energy-factor fallback, when enabled.
    #[must_use]
    pub fn traffic(&self) -> Option<Interval> {
        self.fallback_enabled.then_some(self.traffic_fallback)
    }
}

/// Whether the bound-driven lazy filter–refine engine ([`crate::lazy`],
/// DESIGN.md §4g) runs for a query.
///
/// Pruning trades a per-candidate envelope computation for skipped exact
/// availability evaluations — a trade that only pays above a minimum
/// candidate-pool size (the prune benchmarks measured ≤ 1× median latency
/// on small fleets despite 48–89 % skipped evaluations). `Auto`, the
/// default, enables pruning only when the pool clears the calibrated
/// threshold of [`crate::adaptive::PruneCostModel`]; either setting
/// produces bit-identical Offering Tables — only the evaluation count and
/// the latency change.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PruningMode {
    /// Prune only when the candidate pool is large enough that the
    /// envelope overhead is predicted to pay for itself.
    #[default]
    Auto,
    /// Always prune. Refused with [`EcError::PruningUnsound`] when the
    /// information server runs degraded (stale serving, resilience
    /// fallbacks, or a non-model availability feed): the envelopes would
    /// be unsound, and silently bypassing an explicit `On` would
    /// misreport how the table was computed.
    On,
    /// Never prune (the eager path for every query).
    Off,
}

impl PruningMode {
    /// Every mode, the default first.
    pub const ALL: [Self; 3] = [Self::Auto, Self::On, Self::Off];

    /// CLI/JSON label.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Self::Auto => "auto",
            Self::On => "on",
            Self::Off => "off",
        }
    }

    /// Parse a CLI label (case-insensitive).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "auto" => Some(Self::Auto),
            "on" | "true" => Some(Self::On),
            "off" | "false" => Some(Self::Off),
            _ => None,
        }
    }
}

/// User-facing configuration of the EcoCharge framework.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EcoChargeConfig {
    /// Offering-Table size `k`.
    pub k: usize,
    /// Search radius `R`, km ("allows users to receive EV chargers within
    /// their desired geographic radius", §IV-C). Paper default: 50.
    pub radius_km: f64,
    /// Range distance `Q`, km ("users' preferred distance from previous to
    /// current location for getting server updates and calculating new
    /// solutions"). Paper default: 5.
    pub range_km: f64,
    /// Trip segmentation step, km ("segments of p ≈ 3-5 km", §III-A).
    pub segment_km: f64,
    /// Objective weights.
    pub weights: Weights,
    /// Assumed idle charging window, hours (how long the driver will sit
    /// at the charger — scales the kWh shown in the table).
    pub charge_window_h: f64,
    /// Fraction of the fleet (spatially nearest) the Index-Quadtree
    /// baseline examines — its candidate pool is `⌈fraction · |B|⌉`
    /// nearest stations.
    pub quadtree_fraction: f64,
    /// The querying vehicle's energy model, when known. `None` (the
    /// paper's evaluation setting) ranks charger-side supply without
    /// vehicle-side caps or battery-feasibility gating.
    pub vehicle: Option<Vehicle>,
    /// What to do when a component's data source is exhausted.
    pub degraded: DegradedPolicy,
    /// Worker threads for per-candidate component computation. `1` (the
    /// default) takes the exact sequential code path; any value produces
    /// bit-identical Offering Tables (see DESIGN.md, "Parallel execution
    /// model").
    pub threads: usize,
    /// Which engine answers the derouting searches: batched Dijkstra
    /// sweeps, the precomputed Contraction-Hierarchy index, or (the
    /// default) [`DetourBackend::Auto`] — resolved per batched query
    /// point from the calibrated [`roadnet::BackendCostModel`] over the
    /// graph size, the actual candidate-pool fan-out and the sweeps'
    /// early-termination estimate. Every choice produces bit-identical
    /// Offering Tables (see DESIGN.md §4f/§4j).
    #[serde(default)]
    pub detour_backend: DetourBackend,
    /// Bound-driven lazy filter–refine (DESIGN.md §4g): stream candidates
    /// in ascending distance, bound each one's best-case Sustainability
    /// Score with the availability envelope, and run the exact (per-
    /// charger) availability evaluation only for candidates whose
    /// optimistic score can still reach the top-k. Offering Tables are
    /// bit-identical across every [`PruningMode`] — only the evaluation
    /// count changes. `Auto` (the default) additionally bypasses pruning
    /// whenever the information server runs degraded (stale serving or
    /// resilience guards) or its availability feed is not the in-tree
    /// model, where the envelope bounds would be unsound; an explicit
    /// [`PruningMode::On`] against such a server is refused with
    /// [`EcError::PruningUnsound`].
    #[serde(default)]
    pub pruning: PruningMode,
}

impl Default for EcoChargeConfig {
    fn default() -> Self {
        Self {
            k: 5,
            radius_km: 50.0,
            range_km: 5.0,
            segment_km: 4.0,
            weights: Weights::awe(),
            charge_window_h: 1.0,
            quadtree_fraction: 0.03,
            vehicle: None,
            degraded: DegradedPolicy::default(),
            threads: 1,
            detour_backend: DetourBackend::default(),
            pruning: PruningMode::default(),
        }
    }
}

impl EcoChargeConfig {
    /// Validate the configuration.
    ///
    /// # Errors
    /// [`EcError::InvalidConfig`] for non-positive `k`, radius, range or
    /// segment step.
    pub fn validate(&self) -> Result<(), EcError> {
        if self.k == 0 {
            return Err(EcError::InvalidConfig("k must be at least 1".into()));
        }
        if self.radius_km <= 0.0 {
            return Err(EcError::InvalidConfig(format!(
                "radius R must be positive, got {}",
                self.radius_km
            )));
        }
        if self.range_km < 0.0 {
            return Err(EcError::InvalidConfig(format!(
                "range Q must be non-negative, got {}",
                self.range_km
            )));
        }
        if self.segment_km <= 0.0 {
            return Err(EcError::InvalidConfig(format!(
                "segment step must be positive, got {}",
                self.segment_km
            )));
        }
        if self.charge_window_h <= 0.0 {
            return Err(EcError::InvalidConfig(format!(
                "charge window must be positive, got {}",
                self.charge_window_h
            )));
        }
        if self.threads == 0 {
            return Err(EcError::InvalidConfig("threads must be at least 1".into()));
        }
        if let Some(v) = &self.vehicle {
            if !(0.0..=1.0).contains(&v.soc) || v.battery_kwh <= 0.0 {
                return Err(EcError::InvalidConfig(format!(
                    "vehicle model invalid: soc {} capacity {}",
                    v.soc, v.battery_kwh
                )));
            }
        }
        let d = &self.degraded;
        for (name, iv) in [
            ("sun", d.sun_fallback),
            ("wind", d.wind_fallback),
            ("availability", d.availability_fallback),
        ] {
            if iv.lo() < 0.0 || iv.hi() > 1.0 {
                return Err(EcError::InvalidConfig(format!("{name} fallback {iv} outside [0,1]")));
            }
        }
        if d.traffic_fallback.lo() < 1.0 {
            return Err(EcError::InvalidConfig(format!(
                "traffic fallback {} below the free-flow floor 1.0",
                d.traffic_fallback
            )));
        }
        Ok(())
    }
}

/// The normalisation environment (§III-B: `L` and `D` are normalised "by
/// dividing them with the environment's maximum"). Fixed per
/// (fleet, config) so every method — and the oracle — divides by the same
/// constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NormEnv {
    /// Largest deliverable clean power in the fleet, kW.
    pub max_clean_power_kw: f64,
    /// Largest derouting energy considered reasonable, kWh: an
    /// out-and-back at the radius `R` on the thirstiest road class, with
    /// congestion headroom. Deroutings at or beyond this normalise to 1.
    pub max_derouting_kwh: f64,
}

impl NormEnv {
    /// Derive the environment from the fleet and the configured radius.
    #[must_use]
    pub fn derive(fleet: &ChargerFleet, config: &EcoChargeConfig) -> Self {
        let max_kwh_per_km =
            roadnet::RoadClass::ALL.iter().map(|c| c.kwh_per_km()).fold(0.0f64, f64::max);
        Self {
            max_clean_power_kw: fleet.max_clean_power_kw().max(1e-9),
            max_derouting_kwh: (2.0 * config.radius_km * max_kwh_per_km * 1.5).max(1e-9),
        }
    }

    /// Normalise a clean-power value (kW) into `[0,1]`.
    #[must_use]
    pub fn norm_power(&self, kw: f64) -> f64 {
        (kw / self.max_clean_power_kw).clamp(0.0, 1.0)
    }

    /// Normalise a derouting energy (kWh) into `[0,1]`.
    #[must_use]
    pub fn norm_derouting(&self, kwh: f64) -> f64 {
        (kwh / self.max_derouting_kwh).clamp(0.0, 1.0)
    }
}

/// Everything a ranking method may consult to answer one request. The
/// simulators are exposed **only** for the oracle and the Brute-Force
/// baseline (which the paper defines as scoring "the optimal solution");
/// honest methods go through the [`InfoServer`] forecasts.
pub struct QueryCtx<'a> {
    /// The road network `G`.
    pub graph: &'a RoadGraph,
    /// The charger set `B`.
    pub fleet: &'a ChargerFleet,
    /// Forecast access (cached).
    pub server: &'a InfoServer,
    /// Ground-truth simulators (oracle/Brute-Force only).
    pub sims: &'a SimProviders,
    /// Shared normalisation constants.
    pub norm: NormEnv,
    /// The framework configuration.
    pub config: EcoChargeConfig,
    /// Reusable per-worker search scratch for parallel execution.
    pub engines: roadnet::SearchPool,
    /// Lazily built (or adopted) Contraction-Hierarchy detour index,
    /// shared read-only across workers and derived contexts.
    detour_ch: OnceLock<Arc<DetourCh>>,
    /// The concrete engine [`DetourBackend::Auto`] resolved to for this
    /// context's graph/fleet shape (static choices pass through).
    resolved_backend: OnceLock<DetourBackend>,
}

impl<'a> QueryCtx<'a> {
    /// Assemble a context, deriving the normalisation environment.
    #[must_use]
    pub fn new(
        graph: &'a RoadGraph,
        fleet: &'a ChargerFleet,
        server: &'a InfoServer,
        sims: &'a SimProviders,
        config: EcoChargeConfig,
    ) -> Self {
        let norm = NormEnv::derive(fleet, &config);
        Self {
            graph,
            fleet,
            server,
            sims,
            norm,
            config,
            engines: roadnet::SearchPool::new(),
            detour_ch: OnceLock::new(),
            resolved_backend: OnceLock::new(),
        }
    }

    /// A derived context sharing this one's environment (graph, fleet,
    /// server, normalisation, CH index) under a different configuration.
    /// Used by wrappers that re-rank with a widened `k`.
    #[must_use]
    pub fn with_config(&self, config: EcoChargeConfig) -> QueryCtx<'a> {
        let detour_ch = OnceLock::new();
        if let Some(ch) = self.detour_ch.get() {
            let _ = detour_ch.set(Arc::clone(ch));
        }
        QueryCtx {
            graph: self.graph,
            fleet: self.fleet,
            server: self.server,
            sims: self.sims,
            norm: self.norm,
            config,
            engines: roadnet::SearchPool::new(),
            detour_ch,
            resolved_backend: OnceLock::new(),
        }
    }

    /// The concrete detour engine for this context's *coarse* shape:
    /// static configurations pass through, [`DetourBackend::Auto`] is
    /// resolved once per context by the calibrated
    /// [`roadnet::BackendCostModel`] over the graph size and the fleet
    /// fan-out (the candidate pool is at most the fleet). A context that
    /// already holds (or adopted) a CH index treats preprocessing as
    /// sunk; a cold context charges the CH side its amortized build cost.
    /// Never returns [`DetourBackend::Auto`]; the resolution affects
    /// latency only — both engines produce bit-identical Offering Tables.
    ///
    /// Callers that know the actual candidate pool should prefer
    /// [`Self::resolved_backend_for`]: the fleet size is only an upper
    /// bound on the fan-out, and on city graphs with tight radii the
    /// radius-filtered pool can be small enough to flip the economics.
    #[must_use]
    pub fn resolved_backend(&self) -> DetourBackend {
        *self.resolved_backend.get_or_init(|| {
            roadnet::resolve_backend(
                self.config.detour_backend,
                self.graph,
                self.fleet.len(),
                self.detour_ch.get().is_some(),
                1.0,
            )
        })
    }

    /// The concrete detour engine for one batched query point at its
    /// *actual* fan-out — the per-batch refinement of
    /// [`Self::resolved_backend`]. The fan-out is the radius-filtered
    /// candidate pool, so `fanout / fleet` also estimates how early the
    /// batched sweeps terminate
    /// ([`roadnet::BackendCostModel::settle_fraction`]). Re-resolving per
    /// batch is free (a handful of multiplications against the memoized
    /// cost model) and safe: both engines are bit-identical, so solves
    /// within one context may mix engines without any result byte
    /// changing. A cold context that resolves to CH here builds the index
    /// on first use; every later batch sees it as sunk and judges only
    /// the (antitone-in-fan-out) warm-query economics.
    #[must_use]
    pub fn resolved_backend_for(&self, fanout: usize) -> DetourBackend {
        match self.config.detour_backend {
            DetourBackend::Auto => roadnet::resolve_backend(
                DetourBackend::Auto,
                self.graph,
                fanout,
                self.detour_ch.get().is_some(),
                roadnet::BackendCostModel::settle_fraction(fanout, self.fleet.len()),
            ),
            concrete => concrete,
        }
    }

    /// The CH detour index for this context's graph, building it on
    /// first use (once; later calls and derived contexts share it).
    #[must_use]
    pub fn detour_ch(&self) -> &Arc<DetourCh> {
        self.detour_ch.get_or_init(|| Arc::new(DetourCh::build(self.graph, self.config.threads)))
    }

    /// Adopt an externally built CH index (e.g. one prebuilt per
    /// experiment environment) instead of building on first use. A no-op
    /// when this context already holds one.
    pub fn adopt_detour_ch(&self, ch: Arc<DetourCh>) {
        let _ = self.detour_ch.set(ch);
    }

    /// The CH index, if one has been built or adopted already.
    #[must_use]
    pub fn shared_detour_ch(&self) -> Option<Arc<DetourCh>> {
        self.detour_ch.get().cloned()
    }
}

/// One access path over the charger pool: given the vehicle's progress
/// along a scheduled trip, produce an Offering Table.
pub trait RankingMethod {
    /// Method name as used in the evaluation figures.
    fn name(&self) -> &'static str;

    /// Produce the Offering Table for the vehicle at `offset_m` metres
    /// into `trip`, at wall-clock `now`.
    ///
    /// # Errors
    /// [`EcError::NoCandidates`] when no charger lies within the search
    /// radius; provider errors propagate.
    fn offering_table(
        &mut self,
        ctx: &QueryCtx<'_>,
        trip: &Trip,
        offset_m: f64,
        now: SimTime,
    ) -> Result<OfferingTable, EcError>;

    /// Forget any per-trip state (dynamic caches) before a new trip.
    fn reset_trip(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_paper_default() {
        let c = EcoChargeConfig::default();
        assert_eq!(c.radius_km, 50.0);
        assert_eq!(c.range_km, 5.0);
        assert!(c.validate().is_ok());
        assert_eq!(c.weights, Weights::awe());
    }

    #[test]
    fn validate_rejects_bad_values() {
        let base = EcoChargeConfig::default();
        assert!(EcoChargeConfig { k: 0, ..base }.validate().is_err());
        assert!(EcoChargeConfig { radius_km: 0.0, ..base }.validate().is_err());
        assert!(EcoChargeConfig { range_km: -1.0, ..base }.validate().is_err());
        assert!(EcoChargeConfig { segment_km: 0.0, ..base }.validate().is_err());
        assert!(EcoChargeConfig { charge_window_h: 0.0, ..base }.validate().is_err());
        // Q = 0 (always recompute) is legal.
        assert!(EcoChargeConfig { range_km: 0.0, ..base }.validate().is_ok());
        // Zero workers is nonsense; many workers is fine.
        assert!(EcoChargeConfig { threads: 0, ..base }.validate().is_err());
        assert!(EcoChargeConfig { threads: 8, ..base }.validate().is_ok());
    }

    #[test]
    fn validate_checks_fallback_domains() {
        let base = EcoChargeConfig::default();
        assert!(base.degraded.fallback_enabled, "degraded serving is the default");
        let bad_sun =
            DegradedPolicy { sun_fallback: Interval::new(0.0, 1.5), ..DegradedPolicy::default() };
        assert!(EcoChargeConfig { degraded: bad_sun, ..base }.validate().is_err());
        let bad_traffic = DegradedPolicy {
            traffic_fallback: Interval::new(0.5, 2.0),
            ..DegradedPolicy::default()
        };
        assert!(EcoChargeConfig { degraded: bad_traffic, ..base }.validate().is_err());
        // Disabled policy validates and reports no fallbacks.
        let strict = DegradedPolicy::disabled();
        assert!(EcoChargeConfig { degraded: strict, ..base }.validate().is_ok());
        assert_eq!(strict.sun(), None);
        assert_eq!(strict.traffic(), None);
        assert!(DegradedPolicy::default().availability().is_some());
    }

    #[test]
    fn norm_env_clamps() {
        let env = NormEnv { max_clean_power_kw: 50.0, max_derouting_kwh: 30.0 };
        assert_eq!(env.norm_power(25.0), 0.5);
        assert_eq!(env.norm_power(500.0), 1.0);
        assert_eq!(env.norm_power(-1.0), 0.0);
        assert_eq!(env.norm_derouting(15.0), 0.5);
        assert_eq!(env.norm_derouting(100.0), 1.0);
    }

    #[test]
    fn derouting_cap_scales_with_radius() {
        let fleet = ChargerFleet::new(Vec::new());
        let small =
            NormEnv::derive(&fleet, &EcoChargeConfig { radius_km: 25.0, ..Default::default() });
        let large =
            NormEnv::derive(&fleet, &EcoChargeConfig { radius_km: 75.0, ..Default::default() });
        assert!((large.max_derouting_kwh / small.max_derouting_kwh - 3.0).abs() < 1e-9);
    }
}
