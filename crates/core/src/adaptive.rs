//! Cost-model-driven pruning activation (DESIGN.md §4j).
//!
//! The lazy filter–refine engine ([`crate::lazy`]) replaces exact
//! availability evaluations with envelope bounds — but the envelope
//! itself costs time *per candidate*, and a solve pays fixed overhead for
//! the bound ordering and the wave machinery. On small candidate pools
//! the unavoidable evaluation floor (the seed wave plus a follow-up wave)
//! is most of the pool, so there is almost nothing left to skip and the
//! overhead is pure loss: the prune benchmarks measured ≤ 1× median
//! latency on 100-charger fleets despite healthy skip rates.
//!
//! [`PruneCostModel`] captures that break-even point. A solve over a pool
//! of `n` candidates with table size `k` is predicted to *save*
//! `(n − floor(k)) · eval_ns` by skipping evaluations and to *pay*
//! `fixed_ns + n · env_ns` in overhead; [`PruneCostModel::pool_threshold`]
//! is the smallest `n` where the savings win. [`PruningMode::Auto`]
//! consults it with the fleet size (the pool's upper bound, and on the
//! paper's radius settings a close proxy). Like the backend model, the
//! per-candidate constants are refined by a one-shot seeded
//! micro-calibration, clamped into a band around the defaults; the
//! decision affects evaluation counts and latency only — Offering Tables
//! are bit-identical with pruning on or off.

use crate::context::{EcoChargeConfig, PruningMode, QueryCtx};
use crate::lazy::availability_envelope;
use crate::objectives::eval_availability;
use chargers::{synth_fleet, FleetParams};
use ec_types::{ChargerId, SimDuration, SimTime};
use eis::{InfoServer, SimProviders};
use roadnet::{urban_grid, UrbanGridParams};
use std::sync::OnceLock;
use std::time::Instant;

/// Affine latency model of one lazy solve's pruning economics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PruneCostModel {
    /// Per-candidate envelope cost (truth bounds + forecast envelope +
    /// bound bookkeeping), ns.
    pub env_ns_per_cand: f64,
    /// Per-candidate exact availability-evaluation cost (a model-backed
    /// forecast miss on the information server), ns.
    pub eval_ns_per_cand: f64,
    /// Fixed per-solve overhead of the lazy machinery (bound ordering,
    /// wave scheduling), ns.
    pub fixed_ns: f64,
}

impl PruneCostModel {
    /// Conservative defaults, refined within [`Self::CLAMP_FACTOR`] by
    /// the micro-calibration.
    pub const DEFAULT: Self =
        Self { env_ns_per_cand: 250.0, eval_ns_per_cand: 2_500.0, fixed_ns: 150_000.0 };

    /// Measured constants may deviate from [`Self::DEFAULT`] by at most
    /// this factor either way.
    pub const CLAMP_FACTOR: f64 = 16.0;

    /// The evaluations a lazy solve cannot skip: the seed wave
    /// (`max(k, SEED_WAVE_MIN)`) plus one follow-up wave — candidates
    /// evaluated before the threshold can start rejecting bounds.
    #[must_use]
    pub fn evaluation_floor(k: usize) -> f64 {
        (k.max(crate::lazy::SEED_WAVE_MIN) + crate::lazy::WAVE) as f64
    }

    /// The smallest candidate-pool size where pruning is predicted to
    /// pay: skipping `n − floor` evaluations must outweigh the fixed
    /// overhead plus `n` envelope computations. `usize::MAX` when the
    /// envelope costs as much as an evaluation (pruning can never pay).
    #[must_use]
    pub fn pool_threshold(&self, k: usize) -> usize {
        let net = self.eval_ns_per_cand - self.env_ns_per_cand;
        if net <= 0.0 {
            return usize::MAX;
        }
        let n = (self.fixed_ns + Self::evaluation_floor(k) * self.eval_ns_per_cand) / net;
        n.ceil() as usize
    }

    /// The process-wide calibrated model: [`Self::DEFAULT`] refined by a
    /// one-shot seeded micro-benchmark on first call. Calibration moves
    /// the activation threshold only — never table bytes.
    #[must_use]
    pub fn calibrated() -> Self {
        static MODEL: OnceLock<PruneCostModel> = OnceLock::new();
        *MODEL.get_or_init(|| Self::measure().map_or(Self::DEFAULT, Self::clamped))
    }

    /// Clamp every constant into `DEFAULT / CLAMP_FACTOR ..= DEFAULT ×
    /// CLAMP_FACTOR`, discarding non-finite readings.
    #[must_use]
    pub fn clamped(self) -> Self {
        fn band(measured: f64, default: f64) -> f64 {
            if measured.is_finite() {
                measured.clamp(
                    default / PruneCostModel::CLAMP_FACTOR,
                    default * PruneCostModel::CLAMP_FACTOR,
                )
            } else {
                default
            }
        }
        Self {
            env_ns_per_cand: band(self.env_ns_per_cand, Self::DEFAULT.env_ns_per_cand),
            eval_ns_per_cand: band(self.eval_ns_per_cand, Self::DEFAULT.eval_ns_per_cand),
            fixed_ns: band(self.fixed_ns, Self::DEFAULT.fixed_ns),
        }
    }

    /// One seeded micro-benchmark on a throwaway world: time the
    /// per-candidate envelope computation against exact availability
    /// evaluations (cache-missing the server by walking the hourly ETA
    /// buckets, the cost a cold solve actually pays per candidate).
    /// `fixed_ns` has no meaningful standalone measurement, so it is
    /// rescaled by the measured evaluation cost relative to its default —
    /// a platform-speed proxy that keeps the break-even pool size stable
    /// between debug and optimised builds instead of letting a constant
    /// tuned for one of them dominate the other.
    fn measure() -> Option<Self> {
        const SEED: u64 = 0xada8_7e02;
        const CHARGERS: usize = 16;
        const HOURS: u64 = 24;

        let g = urban_grid(&UrbanGridParams {
            cols: 12,
            rows: 10,
            seed: SEED,
            ..UrbanGridParams::default()
        });
        let fleet =
            synth_fleet(&g, &FleetParams { count: CHARGERS, seed: SEED, ..Default::default() });
        if fleet.len() < CHARGERS {
            return None;
        }
        let sims = SimProviders::new(SEED);
        let server = InfoServer::from_sims(sims.clone());
        let ctx = QueryCtx::new(&g, &fleet, &server, &sims, EcoChargeConfig::default());
        let now = SimTime::from_secs(9 * 3_600);

        // Warm-up on *disjoint* keys (a different day): pays one-time
        // costs — the archetype bound table, lazy server structures —
        // outside the timed regions without priming the server cache for
        // the keys the evaluation pass will miss on.
        let mut sink = 0.0f64;
        let warm_now = now + SimDuration::from_secs(3 * 86_400);
        for h in 0..4u64 {
            let eta = warm_now + SimDuration::from_secs(h * 3_600);
            for c in 0..4 {
                sink += availability_envelope(fleet.get(ChargerId(c)), warm_now, eta).hi();
                sink +=
                    eval_availability(&ctx, fleet.get(ChargerId(c)), warm_now, eta).ok()?.0.hi();
            }
        }

        // Envelope side: every (charger, hourly bucket) pair once.
        let t0 = Instant::now();
        for h in 0..HOURS {
            let eta = now + SimDuration::from_secs(h * 3_600);
            for c in 0..CHARGERS {
                sink += availability_envelope(fleet.get(ChargerId(c as u32)), now, eta).hi();
            }
        }
        let env_ns = t0.elapsed().as_nanos() as f64 / (HOURS as usize * CHARGERS) as f64;

        // Evaluation side: the same pairs through the information server
        // — each is a fresh (charger, window, bucket) key, i.e. a miss.
        let t1 = Instant::now();
        for h in 0..HOURS {
            let eta = now + SimDuration::from_secs(h * 3_600);
            for c in 0..CHARGERS {
                let r = eval_availability(&ctx, fleet.get(ChargerId(c as u32)), now, eta).ok()?;
                sink += r.0.hi();
            }
        }
        let eval_ns = t1.elapsed().as_nanos() as f64 / (HOURS as usize * CHARGERS) as f64;
        std::hint::black_box(sink);

        let speed = eval_ns / Self::DEFAULT.eval_ns_per_cand;
        Some(Self {
            env_ns_per_cand: env_ns,
            eval_ns_per_cand: eval_ns,
            fixed_ns: Self::DEFAULT.fixed_ns * speed,
        })
    }
}

impl Default for PruneCostModel {
    fn default() -> Self {
        Self::DEFAULT
    }
}

/// Whether this query context runs the lazy filter–refine engine:
/// `Off` never, `On` always (soundness is enforced separately with
/// [`ec_types::EcError::PruningUnsound`]), `Auto` only when the fleet —
/// the candidate pool's upper bound — clears the calibrated break-even
/// threshold.
#[must_use]
pub fn pruning_pays(ctx: &QueryCtx<'_>) -> bool {
    match ctx.config.pruning {
        PruningMode::Off => false,
        PruningMode::On => true,
        PruningMode::Auto => {
            ctx.fleet.len() >= PruneCostModel::calibrated().pool_threshold(ctx.config.k)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_threshold_separates_small_from_large_fleets() {
        let m = PruneCostModel::DEFAULT;
        let t = m.pool_threshold(5);
        // The prune benchmarks' small tier (100 chargers) measured ≤ 1×:
        // the default model must keep pruning off there, and on for the
        // paper fleets (600–1200) where the skips pay.
        assert!(t > 100, "threshold {t} would enable pruning on the losing tier");
        assert!(t <= 600, "threshold {t} would disable pruning on the paper fleets");
    }

    #[test]
    fn threshold_is_monotone_in_k_and_guards_degenerate_models() {
        let m = PruneCostModel::DEFAULT;
        assert!(m.pool_threshold(5) <= m.pool_threshold(50));
        // An envelope as expensive as the evaluation can never pay.
        let broken = PruneCostModel { env_ns_per_cand: 3_000.0, ..m };
        assert_eq!(broken.pool_threshold(5), usize::MAX);
    }

    #[test]
    fn calibrated_model_is_within_the_clamp_band() {
        let m = PruneCostModel::calibrated();
        let d = PruneCostModel::DEFAULT;
        let f = PruneCostModel::CLAMP_FACTOR;
        assert!(
            m.env_ns_per_cand >= d.env_ns_per_cand / f
                && m.env_ns_per_cand <= d.env_ns_per_cand * f
        );
        assert!(
            m.eval_ns_per_cand >= d.eval_ns_per_cand / f
                && m.eval_ns_per_cand <= d.eval_ns_per_cand * f
        );
        assert_eq!(m, PruneCostModel::calibrated(), "calibration is one-shot");
    }
}
