//! Recommendation-traffic balancing — the paper's future-work item
//! (§VII): "we plan to investigate the balance of the produced traffic to
//! chargers by the suggested Offering Tables, and monitor the congestion
//! to redirect drivers to alternative EV charging stations."
//!
//! When many vehicles ask the same region at the same time, unbalanced
//! Offering Tables funnel everyone to the same top charger, creating the
//! very queue the availability component tried to avoid. [`LoadTracker`]
//! counts outstanding recommendations per charger (server-side, shared by
//! all Mode-2 clients or gossiped between edge clients), and
//! [`BalancedEcoCharge`] discounts a candidate's availability by its
//! expected contention before refinement:
//!
//! ```text
//! A'(b) = A(b) · capacity(b) / (capacity(b) + outstanding(b))
//! ```
//!
//! With no outstanding recommendations the ranking is untouched; each
//! outstanding claim on a single-plug charger halves its effective
//! availability, steering the next vehicle to an alternative.

use crate::algorithm::EcoCharge;
use crate::context::{QueryCtx, RankingMethod};
use crate::offering::OfferingTable;
use ec_types::{ChargerId, EcError, Interval, SimTime};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use trajgen::Trip;

/// Shared, thread-safe count of outstanding recommendations per charger.
#[derive(Debug, Default, Clone)]
pub struct LoadTracker {
    inner: Arc<Mutex<HashMap<ChargerId, u32>>>,
}

impl LoadTracker {
    /// A tracker with no outstanding recommendations.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that a vehicle was steered to `charger`.
    pub fn claim(&self, charger: ChargerId) {
        *self.inner.lock().entry(charger).or_insert(0) += 1;
    }

    /// Record that a vehicle finished (or abandoned) its visit.
    pub fn release(&self, charger: ChargerId) {
        let mut map = self.inner.lock();
        if let Some(n) = map.get_mut(&charger) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                map.remove(&charger);
            }
        }
    }

    /// Outstanding recommendations for `charger`.
    #[must_use]
    pub fn outstanding(&self, charger: ChargerId) -> u32 {
        self.inner.lock().get(&charger).copied().unwrap_or(0)
    }

    /// Total outstanding recommendations.
    #[must_use]
    pub fn total(&self) -> u32 {
        self.inner.lock().values().sum()
    }

    /// The largest per-charger load — the congestion-concentration metric
    /// the balance experiment reports.
    #[must_use]
    pub fn max_load(&self) -> u32 {
        self.inner.lock().values().copied().max().unwrap_or(0)
    }

    /// Forget everything.
    pub fn clear(&self) {
        self.inner.lock().clear();
    }
}

/// How many simultaneous vehicles a charger absorbs before its effective
/// availability halves. DC plazas park several cars; a street AC post
/// serves one.
#[must_use]
pub fn assumed_capacity(kind: chargers::ChargerKind) -> f64 {
    match kind {
        chargers::ChargerKind::Ac11 => 1.0,
        chargers::ChargerKind::Ac22 => 2.0,
        chargers::ChargerKind::Dc50 => 3.0,
        chargers::ChargerKind::Dc150 => 4.0,
    }
}

/// EcoCharge with contention-aware availability discounting.
#[derive(Debug)]
pub struct BalancedEcoCharge {
    inner: EcoCharge,
    loads: LoadTracker,
    /// Automatically claim the top offer of every produced table (the
    /// behaviour of an app that tentatively books the best slot).
    pub auto_claim: bool,
}

impl BalancedEcoCharge {
    /// Wrap EcoCharge with a (possibly shared) load tracker.
    #[must_use]
    pub fn new(loads: LoadTracker) -> Self {
        Self { inner: EcoCharge::new(), loads, auto_claim: false }
    }

    /// The shared load tracker.
    #[must_use]
    pub fn loads(&self) -> &LoadTracker {
        &self.loads
    }

    /// The contention discount for one charger: `cap / (cap + load)`.
    fn discount(&self, ctx: &QueryCtx<'_>, charger: ChargerId) -> f64 {
        let cap = assumed_capacity(ctx.fleet.get(charger).kind);
        let load = f64::from(self.loads.outstanding(charger));
        cap / (cap + load)
    }
}

impl RankingMethod for BalancedEcoCharge {
    fn name(&self) -> &'static str {
        "EcoCharge+LB"
    }

    fn offering_table(
        &mut self,
        ctx: &QueryCtx<'_>,
        trip: &Trip,
        offset_m: f64,
        now: SimTime,
    ) -> Result<OfferingTable, EcError> {
        // Rank with the plain algorithm over a widened table, then
        // re-score availability under contention and cut to k. Asking the
        // inner method for more than k keeps genuine alternatives in view
        // when the top offers are contended.
        let widened =
            ctx.with_config(crate::context::EcoChargeConfig { k: ctx.config.k * 3, ..ctx.config });
        let mut table = self.inner.offering_table(&widened, trip, offset_m, now)?;
        for entry in &mut table.entries {
            let disc = self.discount(ctx, entry.charger);
            entry.a = Interval::new(entry.a.lo() * disc, entry.a.hi() * disc);
            entry.sc = ctx.config.weights.interval_score(entry.l, entry.a, entry.d);
        }
        table.entries.sort_by(|x, y| y.sc.rank_cmp(&x.sc).then(x.charger.cmp(&y.charger)));
        table.entries.truncate(ctx.config.k);
        if self.auto_claim {
            if let Some(best) = table.best() {
                self.loads.claim(best.charger);
            }
        }
        Ok(table)
    }

    fn reset_trip(&mut self) {
        self.inner.reset_trip();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::EcoChargeConfig;
    use chargers::{synth_fleet, FleetParams};
    use eis::{InfoServer, SimProviders};
    use roadnet::{urban_grid, UrbanGridParams};
    use trajgen::{generate_trips, BrinkhoffParams};

    struct Fixture {
        graph: roadnet::RoadGraph,
        fleet: chargers::ChargerFleet,
        server: InfoServer,
        sims: SimProviders,
        trips: Vec<Trip>,
    }

    impl Fixture {
        fn new() -> Self {
            let graph = urban_grid(&UrbanGridParams { cols: 16, rows: 16, ..Default::default() });
            let fleet =
                synth_fleet(&graph, &FleetParams { count: 60, seed: 3, ..Default::default() });
            let sims = SimProviders::new(9);
            let server = InfoServer::from_sims(sims.clone());
            let trips = generate_trips(
                &graph,
                &BrinkhoffParams {
                    trips: 1,
                    min_trip_m: 8_000.0,
                    max_trip_m: 12_000.0,
                    ..Default::default()
                },
            );
            Self { graph, fleet, server, sims, trips }
        }

        fn ctx(&self) -> QueryCtx<'_> {
            QueryCtx::new(
                &self.graph,
                &self.fleet,
                &self.server,
                &self.sims,
                EcoChargeConfig::default(),
            )
        }
    }

    #[test]
    fn tracker_claims_and_releases() {
        let t = LoadTracker::new();
        let b = ChargerId(3);
        assert_eq!(t.outstanding(b), 0);
        t.claim(b);
        t.claim(b);
        assert_eq!(t.outstanding(b), 2);
        assert_eq!(t.total(), 2);
        assert_eq!(t.max_load(), 2);
        t.release(b);
        assert_eq!(t.outstanding(b), 1);
        t.release(b);
        t.release(b); // extra release is a no-op
        assert_eq!(t.outstanding(b), 0);
        assert_eq!(t.total(), 0);
    }

    #[test]
    fn tracker_is_shared_across_clones() {
        let t = LoadTracker::new();
        let t2 = t.clone();
        t.claim(ChargerId(1));
        assert_eq!(t2.outstanding(ChargerId(1)), 1);
    }

    #[test]
    fn unloaded_tracker_matches_plain_ecocharge() {
        let f = Fixture::new();
        let ctx = f.ctx();
        let trip = &f.trips[0];
        let mut plain = EcoCharge::new();
        let plain_ids = plain.offering_table(&ctx, trip, 0.0, trip.depart).unwrap().charger_ids();
        let mut balanced = BalancedEcoCharge::new(LoadTracker::new());
        let bal_ids = balanced.offering_table(&ctx, trip, 0.0, trip.depart).unwrap().charger_ids();
        assert_eq!(plain_ids, bal_ids, "no load, no change");
    }

    #[test]
    fn heavy_load_demotes_the_top_offer() {
        let f = Fixture::new();
        let ctx = f.ctx();
        let trip = &f.trips[0];
        let mut balanced = BalancedEcoCharge::new(LoadTracker::new());
        let first = balanced.offering_table(&ctx, trip, 0.0, trip.depart).unwrap();
        let top = first.best().unwrap().charger;
        // Pile claims on the current winner.
        for _ in 0..12 {
            balanced.loads().claim(top);
        }
        balanced.reset_trip();
        let second = balanced.offering_table(&ctx, trip, 0.0, trip.depart).unwrap();
        assert_ne!(second.best().unwrap().charger, top, "contended charger must be demoted");
    }

    #[test]
    fn auto_claim_accumulates_load() {
        let f = Fixture::new();
        let ctx = f.ctx();
        let trip = &f.trips[0];
        let mut balanced = BalancedEcoCharge::new(LoadTracker::new());
        balanced.auto_claim = true;
        for _ in 0..4 {
            balanced.reset_trip();
            let _ = balanced.offering_table(&ctx, trip, 0.0, trip.depart).unwrap();
        }
        assert_eq!(balanced.loads().total(), 4);
        // With balancing the four claims cannot all pile on one charger
        // unless its lead is overwhelming; allow at most 3 on the max.
        assert!(balanced.loads().max_load() <= 3, "load {:?}", balanced.loads().max_load());
    }

    #[test]
    fn table_still_k_entries_and_sorted() {
        let f = Fixture::new();
        let ctx = f.ctx();
        let trip = &f.trips[0];
        let mut balanced = BalancedEcoCharge::new(LoadTracker::new());
        balanced.loads().claim(ChargerId(0));
        let table = balanced.offering_table(&ctx, trip, 0.0, trip.depart).unwrap();
        assert_eq!(table.len(), ctx.config.k);
        for w in table.entries.windows(2) {
            assert!(w[0].sc.mid() >= w[1].sc.mid());
        }
    }
}
