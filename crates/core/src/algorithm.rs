//! The EcoCharge algorithm (Algorithm 1) with Dynamic Caching.
//!
//! Per query point the algorithm runs the two phases of §III-C:
//!
//! * **Filtering** — pull the candidate pool: on a cache miss, every
//!   charger within radius `R` of the vehicle (a quadtree range query);
//!   on a hit (moved less than `Q` since the last full solve), reuse the
//!   cached candidates and their `L`/`A` forecasts, refreshing only the
//!   derouting component from the new position;
//! * **Refinement** — score each candidate's interval Sustainability
//!   Score, intersect the top-k sets under `SC_min` and `SC_max` (Eq. 6)
//!   and sort into the Offering Table.

use crate::cache::{CachedSolution, DynamicCache};
use crate::context::{QueryCtx, RankingMethod};
use crate::lazy::{lazy_adapt, lazy_cold_solve, LazyAdapted, LazyCold, PruneStats};
use crate::objectives::{compute_components, refresh_derouting, Components};
use crate::offering::OfferingTable;
use crate::score::{prune_dominated, refine_topk};
use ec_types::{ChargerId, EcError, Interval, SimTime};
use roadnet::SearchEngine;
use std::sync::Arc;
use trajgen::Trip;

/// The paper's method: CkNN-EC ranking with Dynamic Caching and
/// (optionally) the bound-driven lazy filter–refine engine of
/// [`crate::lazy`].
#[derive(Debug, Default)]
pub struct EcoCharge {
    engine: SearchEngine,
    cache: DynamicCache,
    stats: PruneStats,
    // Refinement scratch, reused across split points so steady-state
    // queries allocate nothing for scoring.
    sc_buf: Vec<Interval>,
    scored_buf: Vec<(usize, Interval)>,
    pruned_buf: Vec<(usize, Interval)>,
}

/// A solver's complete value-bearing state at one instant: the Dynamic
/// Cache slot plus every counter observable from outside
/// ([`EcoCharge::cache_stats`], [`DynamicCache::empty_probes`],
/// [`EcoCharge::prune_stats`]). Because a serving session's solve
/// sequence is a deterministic function of its trip and configuration,
/// the snapshot taken after solve *n* is itself a pure function of
/// `(trip, config, n)` — which is what lets the tiered Offering-Table
/// cache replay it under any session whose key matches.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SolverSnapshot {
    /// The cached solution, if one was stored.
    pub slot: Option<CachedSolution>,
    /// Dynamic-cache hits so far.
    pub hits: u64,
    /// Dynamic-cache invalidation misses so far.
    pub misses: u64,
    /// Probes of an empty cache so far.
    pub empty_probes: u64,
    /// Cumulative lazy filter–refine counters.
    pub prune: PruneStats,
}

/// How one query resolves against the Dynamic Cache, decided while the
/// cache borrow is live; promotions and stores happen after it ends.
enum Plan {
    /// Cache hit: the refreshed pool, any shadow promotions to apply, and
    /// the query's pruning counters.
    Adapted(Vec<Components>, Vec<(u32, Components)>, PruneStats),
    /// Cache miss (or unusable hit): run a full cold solve.
    Cold,
}

impl EcoCharge {
    /// A fresh instance (empty cache).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Dynamic-cache `(hits, misses)` counters.
    #[must_use]
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.stats()
    }

    /// Cumulative pruning counters (pool sizes, exact availability
    /// evaluations, pruned candidates) since construction.
    #[must_use]
    pub const fn prune_stats(&self) -> PruneStats {
        self.stats
    }

    /// The Dynamic Cache behind this instance — the handle serving
    /// layers read for per-session adaptation accounting (the counters
    /// of [`EcoCharge::cache_stats`] plus whatever [`DynamicCache`]
    /// exposes directly).
    #[must_use]
    pub const fn dynamic_cache(&self) -> &DynamicCache {
        &self.cache
    }

    /// Rebuild a solver from crash-recovery state: a restored Dynamic
    /// Cache and the cumulative pruning counters. The search engine and
    /// scoring buffers are scratch — they influence cost, never values —
    /// so a restored instance answers every future query bit-identically
    /// to the instance it was snapshotted from.
    #[must_use]
    pub fn from_parts(cache: DynamicCache, stats: PruneStats) -> Self {
        Self { cache, stats, ..Self::default() }
    }

    /// Capture this solver's complete value-bearing state — the Dynamic
    /// Cache slot and every counter a journal or serving layer reads
    /// back. Search engine and scoring buffers are scratch (cost, never
    /// values), so restoring a snapshot reproduces the instance exactly
    /// as far as any observer is concerned.
    #[must_use]
    pub fn snapshot(&self) -> SolverSnapshot {
        let (hits, misses) = self.cache.stats();
        SolverSnapshot {
            slot: self.cache.slot().cloned(),
            hits,
            misses,
            empty_probes: self.cache.empty_probes(),
            prune: self.stats,
        }
    }

    /// Overwrite this solver's value-bearing state with `snap` — the
    /// in-place form of [`EcoCharge::from_parts`], used by the
    /// Offering-Table cache to replay a memoised solve: the snapshot was
    /// taken right after the original solve, so restoring it leaves the
    /// solver bit-identical to having run that solve here (counters
    /// included, which keeps journal `CacheImage`s byte-stable).
    pub fn restore_snapshot(&mut self, snap: &SolverSnapshot) {
        self.cache =
            DynamicCache::from_parts(snap.slot.clone(), snap.hits, snap.misses, snap.empty_probes);
        self.stats = snap.prune;
    }

    /// Re-rank entry point for serving layers: exactly
    /// [`RankingMethod::offering_table`], callable without importing the
    /// trait. One call = one solve of Algorithm 1 at `(offset_m, now)`
    /// against this instance's Dynamic Cache.
    ///
    /// # Errors
    /// Propagates provider and configuration failures.
    pub fn rerank(
        &mut self,
        ctx: &QueryCtx<'_>,
        trip: &Trip,
        offset_m: f64,
        now: SimTime,
    ) -> Result<OfferingTable, EcError> {
        self.offering_table(ctx, trip, offset_m, now)
    }

    /// The server-side guard that makes availability envelopes unsound,
    /// if any: stale serving, resilience fallbacks, or a non-model
    /// availability feed could all substitute values outside the
    /// envelope's bounds.
    fn envelope_unsound(ctx: &QueryCtx<'_>) -> Option<&'static str> {
        if ctx.server.serves_stale() {
            Some("stale serving")
        } else if ctx.server.resilience_enabled() {
            Some("resilience guards")
        } else if !ctx.server.availability_model_backed() {
            Some("non-model availability feed")
        } else {
            None
        }
    }

    /// True when this query may take the lazy filter–refine path: the
    /// configured [`crate::context::PruningMode`] wants pruning for this
    /// pool size ([`crate::adaptive::pruning_pays`]) and the availability
    /// envelope is sound — the server serves fresh model-backed forecasts
    /// with no resilience machinery that could substitute stale or
    /// fallback values. (An explicit `On` against an unsound server never
    /// reaches this check: [`Self::offering_table`] refuses it with
    /// [`EcError::PruningUnsound`].)
    fn lazy_ok(ctx: &QueryCtx<'_>) -> bool {
        crate::adaptive::pruning_pays(ctx) && Self::envelope_unsound(ctx).is_none()
    }
}

impl RankingMethod for EcoCharge {
    fn name(&self) -> &'static str {
        "EcoCharge"
    }

    fn offering_table(
        &mut self,
        ctx: &QueryCtx<'_>,
        trip: &Trip,
        offset_m: f64,
        now: SimTime,
    ) -> Result<OfferingTable, EcError> {
        ctx.config.validate()?;
        // Forced pruning against a degraded server is a configuration
        // pathology, not a condition to silently bypass: the caller asked
        // for envelope bounds the server cannot honour.
        if ctx.config.pruning == crate::context::PruningMode::On {
            if let Some(guard) = Self::envelope_unsound(ctx) {
                return Err(EcError::PruningUnsound(guard));
            }
        }
        let pos = trip.position_at_offset(ctx.graph, offset_m);
        let node = trip.route.nearest_node_at(offset_m);
        let rejoin_offset = (offset_m + ctx.config.segment_km * 1_000.0).min(trip.length_m());
        let rejoin = trip.route.nearest_node_at(rejoin_offset);
        let lazy_ok = Self::lazy_ok(ctx);

        let plan = match self.cache.lookup(&pos, now, ctx.config.range_km, ctx.config.radius_km) {
            // Full cached pool: the classic adaptation — reuse candidates
            // and their L/A, refresh D only.
            Some(cached) if cached.shadows.is_empty() => Plan::Adapted(
                refresh_derouting(ctx, &mut self.engine, node, rejoin, now, &cached.components)?,
                Vec::new(),
                PruneStats::default(),
            ),
            // Shadow-bearing pool: adapt lazily, materialising only the
            // shadows whose bound clears the exact members' k-th score.
            Some(cached) if lazy_ok => {
                match lazy_adapt(ctx, &mut self.engine, node, rejoin, now, cached) {
                    LazyAdapted::Done { comps, promotions, stats } => {
                        Plan::Adapted(comps, promotions, stats)
                    }
                    LazyAdapted::Abandon => Plan::Cold,
                }
            }
            // Shadow-bearing pool but pruning now unavailable: an eager
            // refresh over only the exact members would normalise against
            // the wrong pool, so treat the hit as a miss and solve cold.
            Some(_) => Plan::Cold,
            None => Plan::Cold,
        };

        let (comps, adapted): (Arc<[Components]>, bool) = match plan {
            Plan::Adapted(comps, promotions, stats) => {
                self.cache.promote(&promotions);
                self.stats.accumulate(stats);
                (comps.into(), true)
            }
            Plan::Cold => {
                let lazy = if lazy_ok {
                    match lazy_cold_solve(ctx, &mut self.engine, &pos, node, rejoin, now) {
                        LazyCold::Done { comps, shadows, stats } => Some((comps, shadows, stats)),
                        LazyCold::Abandon => None,
                    }
                } else {
                    None
                };
                let (comps, shadows): (Arc<[Components]>, Arc<[_]>) = match lazy {
                    Some((comps, shadows, stats)) => {
                        self.stats.accumulate(stats);
                        (comps.into(), shadows.into())
                    }
                    None => {
                        // Eager filtering phase: radius pull, then exact
                        // components for every candidate.
                        let candidates: Vec<ChargerId> = ctx
                            .fleet
                            .within_radius(&pos, ctx.config.radius_km * 1_000.0)
                            .into_iter()
                            .map(|(id, _)| id)
                            .collect();
                        if candidates.is_empty() {
                            return Err(EcError::NoCandidates);
                        }
                        let comps = compute_components(
                            ctx,
                            &mut self.engine,
                            node,
                            rejoin,
                            now,
                            &candidates,
                        )?;
                        self.stats.accumulate(PruneStats {
                            pool: comps.len() as u64,
                            exact_evals: comps.len() as u64,
                            ..PruneStats::default()
                        });
                        (comps.into(), Vec::new().into())
                    }
                };
                if comps.is_empty() {
                    // Everything in range was unreachable or infeasible
                    // for the vehicle — the filtering phase emptied the
                    // pool.
                    return Err(EcError::NoCandidates);
                }
                self.cache.store(CachedSolution {
                    origin: pos,
                    computed_at: now,
                    components: comps.clone(),
                    shadows,
                    radius_km: ctx.config.radius_km,
                });
                (comps, false)
            }
        };

        if comps.is_empty() {
            return Err(EcError::NoCandidates);
        }
        // Refinement phase (Eq. 4–6), preceded by the filtering phase's
        // dominance pruning: candidates that cannot reach the top-k under
        // any realisation of the estimates are discarded first.
        self.sc_buf.clear();
        self.sc_buf.extend(comps.iter().map(|c| ctx.config.weights.interval_score(c.l, c.a, c.d)));
        self.scored_buf.clear();
        self.scored_buf.extend(self.sc_buf.iter().copied().enumerate());
        let survivors = prune_dominated(&self.scored_buf, ctx.config.k);
        self.pruned_buf.clear();
        self.pruned_buf.extend(survivors.iter().map(|&i| self.scored_buf[i]));
        let ranked = refine_topk(&self.pruned_buf, ctx.config.k);
        Ok(OfferingTable::from_ranked(
            offset_m,
            pos,
            now,
            &comps,
            &self.sc_buf,
            &ranked,
            ctx.config.charge_window_h,
            adapted,
        ))
    }

    fn reset_trip(&mut self) {
        self.cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::EcoChargeConfig;
    use chargers::{synth_fleet, FleetParams};
    use eis::{InfoServer, SimProviders};
    use roadnet::{urban_grid, UrbanGridParams};
    use trajgen::{generate_trips, BrinkhoffParams};

    struct Fixture {
        graph: roadnet::RoadGraph,
        fleet: chargers::ChargerFleet,
        server: InfoServer,
        sims: SimProviders,
        trips: Vec<Trip>,
    }

    impl Fixture {
        fn new() -> Self {
            let graph = urban_grid(&UrbanGridParams::default());
            let fleet =
                synth_fleet(&graph, &FleetParams { count: 80, seed: 3, ..Default::default() });
            let sims = SimProviders::new(9);
            let server = InfoServer::from_sims(sims.clone());
            let trips = generate_trips(
                &graph,
                &BrinkhoffParams {
                    trips: 2,
                    min_trip_m: 15_000.0,
                    max_trip_m: 30_000.0,
                    ..Default::default()
                },
            );
            Self { graph, fleet, server, sims, trips }
        }

        fn ctx_with(&self, config: EcoChargeConfig) -> QueryCtx<'_> {
            QueryCtx::new(&self.graph, &self.fleet, &self.server, &self.sims, config)
        }
    }

    #[test]
    fn produces_k_ranked_offers() {
        let f = Fixture::new();
        let ctx = f.ctx_with(EcoChargeConfig::default());
        let mut m = EcoCharge::new();
        let trip = &f.trips[0];
        let table = m.offering_table(&ctx, trip, 0.0, trip.depart).unwrap();
        assert_eq!(table.len(), 5);
        assert!(!table.adapted, "first table is a full solve");
        // Ranked descending by SC midpoint.
        for w in table.entries.windows(2) {
            assert!(w[0].sc.mid() >= w[1].sc.mid());
        }
    }

    #[test]
    fn second_nearby_query_adapts() {
        let f = Fixture::new();
        let ctx = f.ctx_with(EcoChargeConfig::default());
        let mut m = EcoCharge::new();
        let trip = &f.trips[0];
        let t1 = m.offering_table(&ctx, trip, 0.0, trip.depart).unwrap();
        // 3 km further: inside Q = 5 km.
        let t2 =
            m.offering_table(&ctx, trip, 3_000.0, trip.eta_at_offset(&f.graph, 3_000.0)).unwrap();
        assert!(!t1.adapted && t2.adapted);
        // One hit (the adaptation); the cold first probe is an
        // empty-slot probe, not a miss.
        assert_eq!(m.cache_stats(), (1, 0));
    }

    #[test]
    fn q_zero_never_adapts() {
        let f = Fixture::new();
        let ctx = f.ctx_with(EcoChargeConfig { range_km: 0.0, ..Default::default() });
        let mut m = EcoCharge::new();
        let trip = &f.trips[0];
        for off in [0.0, 2_000.0, 4_000.0] {
            let t = m.offering_table(&ctx, trip, off, trip.eta_at_offset(&f.graph, off)).unwrap();
            assert!(!t.adapted);
        }
        assert_eq!(m.cache_stats().0, 0);
    }

    #[test]
    fn reset_trip_clears_cache() {
        let f = Fixture::new();
        let ctx = f.ctx_with(EcoChargeConfig::default());
        let mut m = EcoCharge::new();
        let trip = &f.trips[0];
        let _ = m.offering_table(&ctx, trip, 0.0, trip.depart).unwrap();
        m.reset_trip();
        let t = m.offering_table(&ctx, trip, 1_000.0, trip.depart).unwrap();
        assert!(!t.adapted, "cache was cleared between trips");
    }

    /// Regression (bugfix satellite): the adaptation window is bounded by
    /// the EC model's forecast-validity horizon, not an arbitrary
    /// constant. A vehicle that barely moves must still get a fresh full
    /// solve — new forecasts included — once its cached components are
    /// staler than the model's accuracy budget allows.
    #[test]
    fn stalled_vehicle_gets_fresh_forecasts_past_validity_horizon() {
        use crate::cache::cache_max_age;
        use ec_types::SimDuration;

        let f = Fixture::new();
        let ctx = f.ctx_with(EcoChargeConfig::default());
        let trip = &f.trips[0];

        // Crawl 100 m in a time just inside the horizon: adaptation is
        // still honest, the cache serves.
        let mut m = EcoCharge::new();
        let _ = m.offering_table(&ctx, trip, 0.0, trip.depart).unwrap();
        let just_inside = trip.depart + cache_max_age() - SimDuration::from_mins(1);
        let t2 = m.offering_table(&ctx, trip, 100.0, just_inside).unwrap();
        assert!(t2.adapted, "inside the validity horizon the cache adapts");

        // Same crawl, but stalled past the horizon (traffic jam): the
        // cached forecasts are over budget — full solve, fresh forecasts.
        let mut m = EcoCharge::new();
        let _ = m.offering_table(&ctx, trip, 0.0, trip.depart).unwrap();
        let past = trip.depart + cache_max_age() + SimDuration::from_mins(1);
        let t3 = m.offering_table(&ctx, trip, 100.0, past).unwrap();
        assert!(!t3.adapted, "past the validity horizon a full solve is owed");
        assert_eq!(t3.generated_at, past);
        assert_eq!(m.cache_stats(), (0, 1), "the stale solution is an invalidation miss");
    }

    #[test]
    fn offers_stay_within_radius() {
        let f = Fixture::new();
        let cfg = EcoChargeConfig { radius_km: 8.0, range_km: 0.0, ..Default::default() };
        let ctx = f.ctx_with(cfg);
        let mut m = EcoCharge::new();
        let trip = &f.trips[1];
        let table = m.offering_table(&ctx, trip, 0.0, trip.depart).unwrap();
        let pos = trip.position_at_offset(&f.graph, 0.0);
        for e in &table.entries {
            let d = pos.fast_dist_m(&f.fleet.get(e.charger).loc);
            assert!(d <= 8_000.0 + 1.0, "offer {} at {d} m exceeds R", e.charger);
        }
    }

    #[test]
    fn tiny_radius_yields_no_candidates() {
        let f = Fixture::new();
        let ctx = f.ctx_with(EcoChargeConfig { radius_km: 0.001, ..Default::default() });
        let mut m = EcoCharge::new();
        let trip = &f.trips[0];
        let r = m.offering_table(&ctx, trip, 0.0, trip.depart);
        assert!(matches!(r, Err(EcError::NoCandidates)));
    }

    #[test]
    fn low_soc_vehicle_only_gets_nearby_offers() {
        let f = Fixture::new();
        // 45 kWh pack at 14 % SoC, 10 % reserve → ~1.8 kWh usable: only
        // chargers a few km off-route remain feasible.
        let vehicle = crate::vehicle::Vehicle::city_ev(ec_types::VehicleId(0), 0.14);
        let ctx = f.ctx_with(EcoChargeConfig { vehicle: Some(vehicle), ..Default::default() });
        let mut m = EcoCharge::new();
        let trip = &f.trips[0];
        let pos = trip.position_at_offset(&f.graph, 0.0);
        match m.offering_table(&ctx, trip, 0.0, trip.depart) {
            Ok(table) => {
                assert!(!table.is_empty());
                // 1.8 usable kWh at worst-case 0.21 kWh/km covers an
                // out-and-back of ≤ ~4.3 km each way; allow curvature
                // slack and assert offers are well inside the city, far
                // tighter than the 50 km radius.
                for e in &table.entries {
                    let d = pos.fast_dist_m(&f.fleet.get(e.charger).loc);
                    assert!(d < 8_000.0, "{} offered at {d} m on ~1.8 kWh usable", e.charger);
                }
            }
            Err(EcError::NoCandidates) => {} // nothing affordable at all — legal
            Err(e) => panic!("unexpected error: {e}"),
        }
        // At the reserve floor nothing is affordable.
        let stranded = crate::vehicle::Vehicle::city_ev(ec_types::VehicleId(0), 0.1);
        let ctx2 = f.ctx_with(EcoChargeConfig { vehicle: Some(stranded), ..Default::default() });
        let mut m2 = EcoCharge::new();
        assert!(matches!(
            m2.offering_table(&ctx2, trip, 0.0, trip.depart),
            Err(EcError::NoCandidates)
        ));
    }

    #[test]
    fn ac_limited_vehicle_caps_clean_energy_estimates() {
        let f = Fixture::new();
        let vehicle = crate::vehicle::Vehicle::city_ev(ec_types::VehicleId(0), 0.8); // 11 kW AC
        let ctx = f.ctx_with(EcoChargeConfig { vehicle: Some(vehicle), ..Default::default() });
        let mut m = EcoCharge::new();
        let trip = &f.trips[0];
        let table = m.offering_table(&ctx, trip, 0.0, trip.depart).unwrap();
        for e in &table.entries {
            let kind = f.fleet.get(e.charger).kind;
            let cap = vehicle.accept_rate(kind).value() * ctx.config.charge_window_h;
            assert!(
                e.est_clean_kwh.value() <= cap + 1e-9,
                "{}: {} kWh exceeds the vehicle cap {}",
                e.charger,
                e.est_clean_kwh.value(),
                cap
            );
        }
    }

    #[test]
    fn parallel_ecocharge_bit_identical_to_sequential() {
        let f = Fixture::new();
        let trip = &f.trips[0];
        let run = |threads: usize| {
            let ctx = f.ctx_with(EcoChargeConfig { threads, ..Default::default() });
            let mut m = EcoCharge::new();
            // Full solve at 0 m, then an adapted solve 3 km later —
            // covers both the compute_components and refresh_derouting
            // paths under parallel execution.
            let t1 = m.offering_table(&ctx, trip, 0.0, trip.depart).unwrap();
            let t2 = m
                .offering_table(&ctx, trip, 3_000.0, trip.eta_at_offset(&f.graph, 3_000.0))
                .unwrap();
            (t1, t2)
        };
        let (seq1, seq2) = run(1);
        for threads in [2, 4] {
            let (par1, par2) = run(threads);
            assert_eq!(par1, seq1, "full solve, threads={threads}");
            assert_eq!(par2, seq2, "adapted solve, threads={threads}");
            assert!(par2.adapted);
        }
    }

    #[test]
    fn invalid_config_is_rejected() {
        let f = Fixture::new();
        let ctx = f.ctx_with(EcoChargeConfig { k: 0, ..Default::default() });
        let mut m = EcoCharge::new();
        let trip = &f.trips[0];
        assert!(matches!(
            m.offering_table(&ctx, trip, 0.0, trip.depart),
            Err(EcError::InvalidConfig(_))
        ));
    }
}
