//! # `ecocharge-core` — the paper's contribution
//!
//! The *Continuous k-Nearest-Neighbor query with Estimated Components
//! (CkNN-EC)* and the EcoCharge renewable-hoarding algorithm built on it:
//!
//! * [`score`] — the Sustainability Score: weights, Eq. 4–6 interval
//!   scoring, and the min/max result-set intersection;
//! * [`context`] — the query context (network, fleet, information server)
//!   and the shared normalisation environment;
//! * [`objectives`] — computing the `L`, `A`, `D` estimated components for
//!   a candidate set (Algorithm 1, lines 4–10);
//! * [`detour`] — the derouting search layer those components ride on,
//!   dispatching between batched Dijkstra sweeps and the
//!   Contraction-Hierarchy index (bit-identical backends, §4f);
//! * [`offering`] — the Offering Table the driver sees;
//! * [`cknn`] — the continuous query: trip segmentation, split list, and
//!   per-segment ranking;
//! * [`cache`] — Dynamic Caching (§IV-C): the `R`/`Q`-gated reuse of a
//!   previous Offering Table;
//! * [`lazy`] — bound-driven lazy filter–refine (§4g): availability
//!   envelopes prune exact evaluations without changing a single table;
//! * [`algorithm`] — [`algorithm::EcoCharge`], Algorithm 1
//!   end to end;
//! * [`baselines`] — Brute-Force, Index-Quadtree and Random (§V-A);
//! * [`oracle`] — the ground-truth Sustainability Score the evaluation
//!   measures every method against;
//! * [`eval`] — the measurement loop producing the paper's `SC %` and
//!   `F_t` series;
//! * [`balance`] — the paper's future-work extension: recommendation-
//!   traffic balancing across chargers;
//! * [`monitor`] — the app-facing continuous loop: feed GPS progress,
//!   receive tables only when the ranking changes.

pub mod adaptive;
pub mod algorithm;
pub mod balance;
pub mod baselines;
pub mod cache;
pub mod cknn;
pub mod context;
pub mod detour;
pub mod eval;
pub mod lazy;
pub mod monitor;
pub mod objectives;
pub mod offering;
pub mod oracle;
pub mod score;
pub mod vehicle;

pub use adaptive::PruneCostModel;
pub use algorithm::{EcoCharge, SolverSnapshot};
pub use balance::{BalancedEcoCharge, LoadTracker};
pub use baselines::{BruteForce, IndexQuadtree, RandomPick};
pub use cache::{cache_max_age, CachedSolution, DynamicCache, ShadowComponent};
pub use cknn::{CknnQuery, SplitPoint};
pub use context::{DegradedPolicy, EcoChargeConfig, NormEnv, PruningMode, QueryCtx, RankingMethod};
pub use detour::{detour_batch, dominant_class, DetourBatch};
pub use eval::{evaluate_method, EvalOutcome};
pub use lazy::PruneStats;
pub use monitor::{MonitorEvent, TripMonitor};
pub use offering::{OfferingEntry, OfferingTable};
pub use oracle::{Oracle, ScoringBasis};
pub use roadnet::DetourBackend;
pub use score::{RawWeights, Weights};
pub use vehicle::Vehicle;
