//! The Offering Table `O` — what the driver sees (§II-A, Fig. 1).
//!
//! "The EcoCharge app displays at all times while m is on the move, an
//! Offering Table O … that is computed either in the cloud or on the
//! edge." A table is the ranked list of sustainable chargers for the
//! vehicle's current position, each entry carrying the interval-valued
//! components that justified its rank.

use crate::objectives::Components;
use ec_types::{ChargerId, GeoPoint, Interval, KilowattHours, Provenance, SimTime};

/// One ranked charger in an Offering Table.
#[derive(Debug, Clone, PartialEq)]
pub struct OfferingEntry {
    /// The offered charger.
    pub charger: ChargerId,
    /// Its Sustainability Score interval.
    pub sc: Interval,
    /// Normalised sustainable charging level interval.
    pub l: Interval,
    /// Availability interval.
    pub a: Interval,
    /// Normalised derouting cost interval.
    pub d: Interval,
    /// Estimated arrival time.
    pub eta: SimTime,
    /// Estimated clean energy gained over the configured idle window
    /// (midpoint estimate) — the headline number in the app UI.
    pub est_clean_kwh: KilowattHours,
    /// Per-component data provenance: whether each interval came from a
    /// fresh feed, a stale-and-widened cache entry, or a configured
    /// fallback — the honesty tag of a degraded-mode row.
    pub provenance: Provenance,
}

impl OfferingEntry {
    /// True when any component of this row came from a degraded source
    /// (stale or fallback). An observation-corrected component does not
    /// count — the correction carries *more* information than the pure
    /// model value, so it must not trip the honesty banner.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.provenance.l.is_degraded()
            || self.provenance.a.is_degraded()
            || self.provenance.d.is_degraded()
    }
}

/// A ranked Offering Table for one query point.
#[derive(Debug, Clone, PartialEq)]
pub struct OfferingTable {
    /// Where along the trip this table was requested, metres.
    pub at_offset_m: f64,
    /// The vehicle position it was computed for.
    pub origin: GeoPoint,
    /// When it was generated.
    pub generated_at: SimTime,
    /// Ranked entries, best first.
    pub entries: Vec<OfferingEntry>,
    /// `true` when Dynamic Caching *adapted* a previous table instead of
    /// recomputing from scratch.
    pub adapted: bool,
}

impl OfferingTable {
    /// Assemble a table from scored components in rank order.
    ///
    /// `ranked` lists indices into `comps`, best first; `sc` holds the
    /// score interval per component (parallel to `comps`).
    #[must_use]
    #[allow(clippy::too_many_arguments)] // one call site per method; a builder would obscure the data flow
    pub fn from_ranked(
        at_offset_m: f64,
        origin: GeoPoint,
        generated_at: SimTime,
        comps: &[Components],
        sc: &[Interval],
        ranked: &[usize],
        charge_window_h: f64,
        adapted: bool,
    ) -> Self {
        debug_assert_eq!(comps.len(), sc.len());
        let entries = ranked
            .iter()
            .map(|&i| {
                let c = &comps[i];
                OfferingEntry {
                    charger: c.charger,
                    sc: sc[i],
                    l: c.l,
                    a: c.a,
                    d: c.d,
                    eta: c.eta,
                    est_clean_kwh: KilowattHours((c.clean_kw.mid() * charge_window_h).max(0.0)),
                    provenance: c.quality,
                }
            })
            .collect();
        Self { at_offset_m, origin, generated_at, entries, adapted }
    }

    /// The top-ranked charger, if any.
    #[must_use]
    pub fn best(&self) -> Option<&OfferingEntry> {
        self.entries.first()
    }

    /// The offered charger ids in rank order.
    #[must_use]
    pub fn charger_ids(&self) -> Vec<ChargerId> {
        self.entries.iter().map(|e| e.charger).collect()
    }

    /// True when any row carries a degraded (stale or fallback)
    /// component — the table-level "served under degraded data" banner.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.entries.iter().any(OfferingEntry::is_degraded)
    }

    /// Number of offers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the table carries no offers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Render the table as aligned text (the CLI/analog of the app's map
    /// list view).
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "Offering Table @ {:.1} km ({}){}{}",
            self.at_offset_m / 1_000.0,
            self.generated_at,
            if self.adapted { " [adapted]" } else { "" },
            if self.is_degraded() { " [degraded data]" } else { "" }
        );
        let _ = writeln!(
            s,
            "{:>4} {:>22} {:>15} {:>15} {:>15} {:>10} {:>12}",
            "rank", "charger", "SC", "L", "A~avail", "clean kWh", "data"
        );
        for (rank, e) in self.entries.iter().enumerate() {
            let _ = writeln!(
                s,
                "{:>4} {:>22} {:>15} {:>15} {:>15} {:>10.2} {:>12}",
                rank + 1,
                e.charger.to_string(),
                e.sc.to_string(),
                e.l.to_string(),
                e.a.to_string(),
                e.est_clean_kwh.value(),
                e.provenance.worst().to_string(),
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_types::DayOfWeek;

    fn comp(id: u32, l: f64) -> Components {
        Components {
            charger: ChargerId(id),
            l: Interval::point(l),
            clean_kw: Interval::point(l * 40.0),
            a: Interval::point(0.5),
            d: Interval::point(0.2),
            eta: SimTime::at(0, DayOfWeek::Tue, 11, 0),
            detour_kwh: Interval::point(1.0),
            quality: Provenance::FRESH,
        }
    }

    #[test]
    fn from_ranked_orders_entries() {
        let comps = vec![comp(0, 0.2), comp(1, 0.9), comp(2, 0.5)];
        let sc = vec![Interval::point(0.4), Interval::point(0.8), Interval::point(0.6)];
        let t = OfferingTable::from_ranked(
            2_000.0,
            GeoPoint::new(8.0, 53.0),
            SimTime::at(0, DayOfWeek::Tue, 10, 0),
            &comps,
            &sc,
            &[1, 2, 0],
            1.0,
            false,
        );
        assert_eq!(t.charger_ids(), vec![ChargerId(1), ChargerId(2), ChargerId(0)]);
        assert_eq!(t.best().unwrap().charger, ChargerId(1));
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn clean_kwh_estimate_scales_with_l() {
        let comps = vec![comp(0, 0.5)];
        let sc = vec![Interval::point(0.5)];
        let t = OfferingTable::from_ranked(
            0.0,
            GeoPoint::new(8.0, 53.0),
            SimTime::at(0, DayOfWeek::Tue, 10, 0),
            &comps,
            &sc,
            &[0],
            2.0,
            true,
        );
        // clean power 0.5 × 40 kW over 2 h = 40 kWh.
        assert!((t.entries[0].est_clean_kwh.value() - 40.0).abs() < 1e-9);
        assert!(t.adapted);
    }

    #[test]
    fn empty_table() {
        let t = OfferingTable::from_ranked(
            0.0,
            GeoPoint::new(8.0, 53.0),
            SimTime::at(0, DayOfWeek::Tue, 10, 0),
            &[],
            &[],
            &[],
            1.0,
            false,
        );
        assert!(t.is_empty());
        assert!(t.best().is_none());
    }

    #[test]
    fn render_contains_ranks_and_ids() {
        let comps = vec![comp(7, 0.9)];
        let sc = vec![Interval::point(0.7)];
        let t = OfferingTable::from_ranked(
            5_000.0,
            GeoPoint::new(8.0, 53.0),
            SimTime::at(0, DayOfWeek::Tue, 10, 0),
            &comps,
            &sc,
            &[0],
            1.0,
            true,
        );
        let s = t.render();
        assert!(s.contains("b7"));
        assert!(s.contains("[adapted]"));
        assert!(s.contains("5.0 km"));
        assert!(s.contains("fresh"));
        assert!(!s.contains("[degraded data]"));
    }

    #[test]
    fn degraded_rows_are_flagged_in_render() {
        use ec_types::ComponentQuality;
        let mut c = comp(3, 0.4);
        c.quality.a = ComponentQuality::Fallback;
        let sc = vec![Interval::point(0.5)];
        let t = OfferingTable::from_ranked(
            0.0,
            GeoPoint::new(8.0, 53.0),
            SimTime::at(0, DayOfWeek::Tue, 10, 0),
            &[c],
            &sc,
            &[0],
            1.0,
            false,
        );
        assert!(t.is_degraded());
        assert!(t.entries[0].is_degraded());
        let s = t.render();
        assert!(s.contains("[degraded data]"));
        assert!(s.contains("fallback"));
    }
}
