//! The measurement loop behind every evaluation figure.
//!
//! For each scheduled trip, walk the split list; at every split point, time
//! the method's Offering-Table call (`F_t`) and referee the returned set
//! against the oracle optimum (`SC` as a percentage of the Brute-Force
//! solution, §V-A). Means and standard deviations aggregate over all
//! query points of all trips.

use crate::cknn::CknnQuery;
use crate::context::{QueryCtx, RankingMethod};
use crate::oracle::Oracle;
use ec_types::EcError;
use std::time::Instant;
use trajgen::Trip;

/// Aggregated measurements for one (method, dataset, config) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalOutcome {
    /// Method name.
    pub method: &'static str,
    /// Mean `SC` as % of the Brute-Force optimum.
    pub mean_sc_pct: f64,
    /// Standard deviation of the `SC` percentage.
    pub std_sc_pct: f64,
    /// Mean CPU time per Offering Table, milliseconds.
    pub mean_ft_ms: f64,
    /// Standard deviation of the per-table CPU time.
    pub std_ft_ms: f64,
    /// Mean attained true objective values `(L̄, Ā, 1−D̄)` of the offered
    /// sets — the Fig. 9 decomposition.
    pub attained: (f64, f64, f64),
    /// Number of Offering Tables measured.
    pub tables: usize,
    /// Query points skipped (no candidates / unreachable).
    pub skipped: usize,
}

fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

/// Run `method` over every split point of every trip, refereed by
/// `oracle`.
///
/// # Errors
/// Propagates trip segmentation failures; per-point
/// [`EcError::NoCandidates`] outcomes are counted as skips, not errors.
pub fn evaluate_method(
    ctx: &QueryCtx<'_>,
    trips: &[Trip],
    method: &mut dyn RankingMethod,
    oracle: &mut Oracle,
) -> Result<EvalOutcome, EcError> {
    let mut sc_pcts = Vec::new();
    let mut fts = Vec::new();
    let mut attained_sum = (0.0, 0.0, 0.0);
    let mut attained_n = 0usize;
    let mut skipped = 0usize;

    for trip in trips {
        let query = CknnQuery::new(ctx, trip)?;
        method.reset_trip();
        for sp in query.split_points() {
            let started = Instant::now();
            let table = method.offering_table(ctx, trip, sp.offset_m, sp.eta);
            let ft_ms = started.elapsed().as_secs_f64() * 1_000.0;
            let table = match table {
                Ok(t) if !t.is_empty() => t,
                Ok(_) | Err(EcError::NoCandidates) => {
                    skipped += 1;
                    continue;
                }
                Err(e) => return Err(e),
            };
            fts.push(ft_ms);

            let (_, best_mean) = oracle.best_k(ctx, sp.node, sp.rejoin_node, sp.eta, ctx.config.k);
            let set = table.charger_ids();
            let Some(mean) = oracle.true_sc_of_set(ctx, &set, sp.node, sp.rejoin_node, sp.eta)
            else {
                skipped += 1;
                continue;
            };
            if best_mean > 1e-12 {
                sc_pcts.push((mean / best_mean * 100.0).min(100.0));
            }
            if let Some((l, a, dc)) =
                oracle.attained_objectives(ctx, &set, sp.node, sp.rejoin_node, sp.eta)
            {
                attained_sum.0 += l;
                attained_sum.1 += a;
                attained_sum.2 += dc;
                attained_n += 1;
            }
        }
    }

    let (mean_sc, std_sc) = mean_std(&sc_pcts);
    let (mean_ft, std_ft) = mean_std(&fts);
    let attained = if attained_n > 0 {
        let n = attained_n as f64;
        (attained_sum.0 / n, attained_sum.1 / n, attained_sum.2 / n)
    } else {
        (0.0, 0.0, 0.0)
    };
    Ok(EvalOutcome {
        method: method.name(),
        mean_sc_pct: mean_sc,
        std_sc_pct: std_sc,
        mean_ft_ms: mean_ft,
        std_ft_ms: std_ft,
        attained,
        tables: fts.len(),
        skipped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::EcoCharge;
    use crate::baselines::{BruteForce, RandomPick};
    use crate::context::EcoChargeConfig;
    use crate::score::Weights;
    use chargers::{synth_fleet, FleetParams};
    use eis::{InfoServer, SimProviders};
    use roadnet::{urban_grid, UrbanGridParams};
    use trajgen::{generate_trips, BrinkhoffParams};

    struct Fixture {
        graph: roadnet::RoadGraph,
        fleet: chargers::ChargerFleet,
        server: InfoServer,
        sims: SimProviders,
        trips: Vec<Trip>,
    }

    impl Fixture {
        fn new() -> Self {
            let graph = urban_grid(&UrbanGridParams { cols: 16, rows: 16, ..Default::default() });
            let fleet =
                synth_fleet(&graph, &FleetParams { count: 50, seed: 3, ..Default::default() });
            let sims = SimProviders::new(9);
            let server = InfoServer::from_sims(sims.clone());
            let trips = generate_trips(
                &graph,
                &BrinkhoffParams {
                    trips: 3,
                    min_trip_m: 8_000.0,
                    max_trip_m: 14_000.0,
                    ..Default::default()
                },
            );
            Self { graph, fleet, server, sims, trips }
        }

        fn ctx(&self) -> QueryCtx<'_> {
            QueryCtx::new(
                &self.graph,
                &self.fleet,
                &self.server,
                &self.sims,
                EcoChargeConfig::default(),
            )
        }
    }

    #[test]
    fn brute_force_scores_one_hundred() {
        let f = Fixture::new();
        let ctx = f.ctx();
        let mut oracle = Oracle::new(Weights::awe());
        let mut bf = BruteForce::new();
        let out = evaluate_method(&ctx, &f.trips, &mut bf, &mut oracle).unwrap();
        assert!(out.tables > 0);
        assert!(
            (out.mean_sc_pct - 100.0).abs() < 1e-6,
            "Brute-Force defines the 100% line, got {}",
            out.mean_sc_pct
        );
        assert!(out.std_sc_pct < 1e-6);
    }

    #[test]
    fn ecocharge_close_to_optimal_and_beats_random() {
        let f = Fixture::new();
        let ctx = f.ctx();
        let mut oracle = Oracle::new(Weights::awe());
        let mut eco = EcoCharge::new();
        let eco_out = evaluate_method(&ctx, &f.trips, &mut eco, &mut oracle).unwrap();
        let mut rnd = RandomPick::new(11);
        let rnd_out = evaluate_method(&ctx, &f.trips, &mut rnd, &mut oracle).unwrap();
        assert!(eco_out.mean_sc_pct > 90.0, "EcoCharge SC% {}", eco_out.mean_sc_pct);
        assert!(
            eco_out.mean_sc_pct > rnd_out.mean_sc_pct + 10.0,
            "EcoCharge {} vs Random {}",
            eco_out.mean_sc_pct,
            rnd_out.mean_sc_pct
        );
    }

    #[test]
    fn ft_is_positive_and_measured_per_table() {
        let f = Fixture::new();
        let ctx = f.ctx();
        let mut oracle = Oracle::new(Weights::awe());
        let mut eco = EcoCharge::new();
        let out = evaluate_method(&ctx, &f.trips, &mut eco, &mut oracle).unwrap();
        assert!(out.mean_ft_ms > 0.0);
        assert!(out.tables >= f.trips.len(), "at least one table per trip");
    }

    #[test]
    fn mean_std_edge_cases() {
        assert_eq!(mean_std(&[]), (0.0, 0.0));
        let (m, s) = mean_std(&[5.0]);
        assert_eq!((m, s), (5.0, 0.0));
        let (m, s) = mean_std(&[1.0, 3.0]);
        assert_eq!(m, 2.0);
        assert_eq!(s, 1.0);
    }
}
