//! The electric vehicle `m`: battery, state of charge, and charging
//! limits.
//!
//! The paper's hoarding premise is a vehicle that charges "even when the
//! battery is not substantially depleted" (§I) — but never one that
//! strands itself reaching a charger, and never one credited with more
//! power than its on-board charger accepts (the worked example drives an
//! "11kW AC charger car", §III-C). [`Vehicle`] carries those constraints;
//! when a vehicle is attached to the [`EcoChargeConfig`], the filtering
//! phase drops candidates whose worst-case detour exceeds the usable
//! battery margin, and the `L` component is capped by the vehicle's
//! acceptance rate, not just the charger's delivery rate.
//!
//! [`EcoChargeConfig`]: crate::context::EcoChargeConfig

use chargers::ChargerKind;
use ec_types::{Kilowatts, VehicleId};
use serde::{Deserialize, Serialize};

/// An EV's energy model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Vehicle {
    /// Vehicle id.
    pub id: VehicleId,
    /// Battery capacity, kWh.
    pub battery_kwh: f64,
    /// Current state of charge, `0..=1`.
    pub soc: f64,
    /// On-board AC charger limit, kW.
    pub max_ac_kw: f64,
    /// DC fast-charge limit, kW.
    pub max_dc_kw: f64,
    /// SoC the planner must never dip below (range anxiety buffer).
    pub reserve_soc: f64,
}

impl Vehicle {
    /// A city EV: 45 kWh pack, 11 kW AC, 100 kW DC — the paper example's
    /// class of car.
    #[must_use]
    pub fn city_ev(id: VehicleId, soc: f64) -> Self {
        Self {
            id,
            battery_kwh: 45.0,
            soc: soc.clamp(0.0, 1.0),
            max_ac_kw: 11.0,
            max_dc_kw: 100.0,
            reserve_soc: 0.1,
        }
    }

    /// A long-range EV: 90 kWh pack, 22 kW AC, 250 kW DC.
    #[must_use]
    pub fn long_range(id: VehicleId, soc: f64) -> Self {
        Self {
            id,
            battery_kwh: 90.0,
            soc: soc.clamp(0.0, 1.0),
            max_ac_kw: 22.0,
            max_dc_kw: 250.0,
            reserve_soc: 0.1,
        }
    }

    /// Usable energy above the reserve, kWh.
    #[must_use]
    pub fn usable_kwh(&self) -> f64 {
        ((self.soc - self.reserve_soc).max(0.0)) * self.battery_kwh
    }

    /// Remaining hoarding room: energy the pack can still absorb, kWh.
    #[must_use]
    pub fn headroom_kwh(&self) -> f64 {
        ((1.0 - self.soc).max(0.0)) * self.battery_kwh
    }

    /// The rate this vehicle actually draws from a charger of `kind` —
    /// the minimum of what the plug delivers and what the car accepts.
    #[must_use]
    pub fn accept_rate(&self, kind: ChargerKind) -> Kilowatts {
        let vehicle_limit = match kind {
            ChargerKind::Ac11 | ChargerKind::Ac22 => self.max_ac_kw,
            ChargerKind::Dc50 | ChargerKind::Dc150 => self.max_dc_kw,
        };
        Kilowatts(kind.rate().value().min(vehicle_limit))
    }

    /// Can the vehicle afford a detour of `detour_kwh` (worst case) and
    /// still keep its reserve? The planner also keeps a small absolute
    /// margin for model error.
    #[must_use]
    pub fn can_afford(&self, detour_kwh: f64) -> bool {
        detour_kwh + 0.5 <= self.usable_kwh()
    }

    /// Apply `soc` drain for `kwh` consumed (clamped at empty).
    #[must_use]
    pub fn after_driving(mut self, kwh: f64) -> Self {
        self.soc = (self.soc - kwh.max(0.0) / self.battery_kwh).max(0.0);
        self
    }

    /// Apply `kwh` gained from charging (clamped at full).
    #[must_use]
    pub fn after_charging(mut self, kwh: f64) -> Self {
        self.soc = (self.soc + kwh.max(0.0) / self.battery_kwh).min(1.0);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn car(soc: f64) -> Vehicle {
        Vehicle::city_ev(VehicleId(0), soc)
    }

    #[test]
    fn usable_respects_reserve() {
        let v = car(0.5);
        assert!((v.usable_kwh() - 0.4 * 45.0).abs() < 1e-9);
        assert_eq!(car(0.05).usable_kwh(), 0.0, "below reserve means nothing usable");
    }

    #[test]
    fn headroom_complements_soc() {
        let v = car(0.7);
        assert!((v.headroom_kwh() - 0.3 * 45.0).abs() < 1e-9);
        assert_eq!(car(1.0).headroom_kwh(), 0.0);
    }

    #[test]
    fn accept_rate_caps_by_connector_family() {
        let v = car(0.5); // 11 kW AC, 100 kW DC
        assert_eq!(v.accept_rate(ChargerKind::Ac22).value(), 11.0);
        assert_eq!(v.accept_rate(ChargerKind::Ac11).value(), 11.0);
        assert_eq!(v.accept_rate(ChargerKind::Dc50).value(), 50.0);
        assert_eq!(v.accept_rate(ChargerKind::Dc150).value(), 100.0);
    }

    #[test]
    fn affordability_gate() {
        let v = car(0.2); // usable = 0.1 * 45 = 4.5 kWh
        assert!(v.can_afford(3.0));
        assert!(!v.can_afford(4.2), "margin must block near-limit detours");
        assert!(!car(0.1).can_afford(0.1));
    }

    #[test]
    fn drive_and_charge_roundtrip() {
        let v = car(0.5).after_driving(9.0); // -0.2 SoC
        assert!((v.soc - 0.3).abs() < 1e-9);
        let v = v.after_charging(22.5); // +0.5 SoC
        assert!((v.soc - 0.8).abs() < 1e-9);
        // Clamps.
        assert_eq!(car(0.1).after_driving(100.0).soc, 0.0);
        assert_eq!(car(0.9).after_charging(100.0).soc, 1.0);
    }

    #[test]
    fn presets_differ() {
        let a = Vehicle::city_ev(VehicleId(1), 0.5);
        let b = Vehicle::long_range(VehicleId(1), 0.5);
        assert!(b.battery_kwh > a.battery_kwh);
        assert!(b.max_ac_kw > a.max_ac_kw);
    }
}
