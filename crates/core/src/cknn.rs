//! The continuous query: trip segmentation and the split list `SL`.
//!
//! A CkNN-EC query "retrieves the k nearest neighbors of every point on a
//! path segment"; "the points within the path segment at which a
//! transition in neighborhood occurs are referred to as split points SL"
//! (§I). [`CknnQuery`] materialises the split list for a scheduled trip —
//! one [`SplitPoint`] per ~`segment_km` of route — and drives any
//! [`RankingMethod`] over it, producing the full `⟨bᵢ, pᵢ⟩` result the
//! paper's Figure 1 illustrates.

use crate::context::{QueryCtx, RankingMethod};
use crate::offering::OfferingTable;
use ec_types::{EcError, GeoPoint, NodeId, SegmentId, SimTime};
use trajgen::Trip;

/// One entry of the split list: the start of a path segment `pᵢ`, with
/// everything a ranking method needs to answer for that segment.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitPoint {
    /// Segment index `pᵢ`.
    pub segment: SegmentId,
    /// Offset of the segment start along the trip, metres.
    pub offset_m: f64,
    /// Vehicle position at the segment start.
    pub position: GeoPoint,
    /// Nearest route node to the segment start (derouting origin).
    pub node: NodeId,
    /// Route node where a detour would rejoin the trip (the segment end —
    /// "going back to the same segment pᵢ or going to the next one",
    /// §III-C; we rejoin ahead, never backtrack).
    pub rejoin_node: NodeId,
    /// Wall-clock time the vehicle reaches the segment start (free-flow).
    pub eta: SimTime,
}

/// The split list of a scheduled trip plus the machinery to run a method
/// over it.
#[derive(Debug)]
pub struct CknnQuery {
    points: Vec<SplitPoint>,
}

impl CknnQuery {
    /// Segment `trip` into the split list (Algorithm 1, line 2 /
    /// §III-A Step 1).
    ///
    /// # Errors
    /// [`EcError::DegenerateTrip`] for a zero-length trip.
    pub fn new(ctx: &QueryCtx<'_>, trip: &Trip) -> Result<Self, EcError> {
        if trip.length_m() <= 0.0 {
            return Err(EcError::DegenerateTrip("zero-length trip".into()));
        }
        let offs = trip.route.segment_offsets(ctx.config.segment_km * 1_000.0);
        // The last offset is the destination — a point, not a segment.
        let points = offs
            .windows(2)
            .enumerate()
            .map(|(i, w)| {
                let start = w[0];
                // One nominal segment step ahead (clamped) — the same
                // formula every ranking method uses internally, so the
                // referee and the methods agree on the rejoin point even
                // on sliver-merged final segments.
                let rejoin_off = (start + ctx.config.segment_km * 1_000.0).min(trip.length_m());
                SplitPoint {
                    segment: SegmentId::from_index(i),
                    offset_m: start,
                    position: trip.position_at_offset(ctx.graph, start),
                    node: trip.route.nearest_node_at(start),
                    rejoin_node: trip.route.nearest_node_at(rejoin_off),
                    eta: trip.eta_at_offset(ctx.graph, start),
                }
            })
            .collect();
        Ok(Self { points })
    }

    /// The split points, trip order.
    #[must_use]
    pub fn split_points(&self) -> &[SplitPoint] {
        &self.points
    }

    /// Number of path segments.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True for the degenerate empty query.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The `⟨bᵢ, pᵢ⟩` sequence of the paper's Figure 1: the single best
    /// charger per path segment (`k = 1`), in trip order. Consecutive
    /// equal chargers mean the neighbourhood did not change between
    /// segments — the split list's "no transition" case.
    ///
    /// # Errors
    /// Propagates the first method failure; segments with no candidates
    /// are skipped.
    pub fn nn_sequence(
        &self,
        ctx: &QueryCtx<'_>,
        trip: &Trip,
        method: &mut dyn RankingMethod,
    ) -> Result<Vec<(SegmentId, ec_types::ChargerId)>, EcError> {
        let one = ctx.with_config(crate::context::EcoChargeConfig { k: 1, ..ctx.config });
        method.reset_trip();
        let mut out = Vec::with_capacity(self.points.len());
        for sp in &self.points {
            match method.offering_table(&one, trip, sp.offset_m, sp.eta) {
                Ok(table) => {
                    if let Some(best) = table.best() {
                        out.push((sp.segment, best.charger));
                    }
                }
                Err(EcError::NoCandidates) => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }

    /// Run `method` over every split point: the full CkNN-EC result
    /// `{⟨O_{p₀}⟩, ⟨O_{p₁}⟩, …}`. The method's per-trip caches are reset
    /// first, then warm across segments — exactly how a vehicle consumes
    /// the query.
    ///
    /// # Errors
    /// Propagates the first method failure.
    pub fn run(
        &self,
        ctx: &QueryCtx<'_>,
        trip: &Trip,
        method: &mut dyn RankingMethod,
    ) -> Result<Vec<(SplitPoint, OfferingTable)>, EcError> {
        method.reset_trip();
        self.points
            .iter()
            .map(|sp| {
                method
                    .offering_table(ctx, trip, sp.offset_m, sp.eta)
                    .map(|table| (sp.clone(), table))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::EcoChargeConfig;
    use chargers::{synth_fleet, FleetParams};
    use eis::{InfoServer, SimProviders};
    use roadnet::{urban_grid, UrbanGridParams};
    use trajgen::{generate_trips, BrinkhoffParams};

    struct Fixture {
        graph: roadnet::RoadGraph,
        fleet: chargers::ChargerFleet,
        server: InfoServer,
        sims: SimProviders,
        trips: Vec<Trip>,
    }

    impl Fixture {
        fn new() -> Self {
            let graph = urban_grid(&UrbanGridParams::default());
            let fleet =
                synth_fleet(&graph, &FleetParams { count: 60, seed: 3, ..Default::default() });
            let sims = SimProviders::new(9);
            let server = InfoServer::from_sims(sims.clone());
            let trips = generate_trips(
                &graph,
                &BrinkhoffParams {
                    trips: 3,
                    min_trip_m: 12_000.0,
                    max_trip_m: 25_000.0,
                    ..Default::default()
                },
            );
            Self { graph, fleet, server, sims, trips }
        }

        fn ctx(&self) -> QueryCtx<'_> {
            QueryCtx::new(
                &self.graph,
                &self.fleet,
                &self.server,
                &self.sims,
                EcoChargeConfig::default(),
            )
        }
    }

    #[test]
    fn split_points_cover_trip_in_order() {
        let f = Fixture::new();
        let ctx = f.ctx();
        let trip = &f.trips[0];
        let q = CknnQuery::new(&ctx, trip).unwrap();
        assert!(!q.is_empty());
        // ~4 km segments on a ≥12 km trip → at least 3 segments.
        assert!(q.len() >= 3, "{} segments", q.len());
        let pts = q.split_points();
        assert_eq!(pts[0].offset_m, 0.0);
        for w in pts.windows(2) {
            assert!(w[1].offset_m > w[0].offset_m);
            assert!(w[1].eta >= w[0].eta);
        }
        for (i, sp) in pts.iter().enumerate() {
            assert_eq!(sp.segment.index(), i);
            assert!(sp.node.index() < f.graph.num_nodes());
            assert!(sp.rejoin_node.index() < f.graph.num_nodes());
        }
    }

    #[test]
    fn rejoin_is_ahead_of_node() {
        let f = Fixture::new();
        let ctx = f.ctx();
        let trip = &f.trips[1];
        let q = CknnQuery::new(&ctx, trip).unwrap();
        for sp in q.split_points() {
            // The rejoin node corresponds to a later (or equal) offset.
            let node_pos = f.graph.point(sp.node);
            let rejoin_pos = f.graph.point(sp.rejoin_node);
            // Same trip: both nodes must lie on the route.
            assert!(trip.route.nodes().contains(&sp.node));
            assert!(trip.route.nodes().contains(&sp.rejoin_node));
            let _ = (node_pos, rejoin_pos);
        }
    }

    #[test]
    fn nn_sequence_gives_one_best_per_segment() {
        let f = Fixture::new();
        let ctx = f.ctx();
        let trip = &f.trips[0];
        let q = CknnQuery::new(&ctx, trip).unwrap();
        let mut method = crate::algorithm::EcoCharge::new();
        let seq = q.nn_sequence(&ctx, trip, &mut method).unwrap();
        assert_eq!(seq.len(), q.len(), "connected city: every segment answers");
        // Segments appear in order.
        for w in seq.windows(2) {
            assert!(w[1].0.index() > w[0].0.index());
        }
        // The 1NN must match the top of the full table at the same point.
        let mut method2 = crate::algorithm::EcoCharge::new();
        let full = q.run(&ctx, trip, &mut method2).unwrap();
        for ((seg, best), (_, table)) in seq.iter().zip(&full) {
            assert_eq!(
                Some(*best),
                table.best().map(|e| e.charger),
                "segment {seg}: k=1 disagrees with top of k=5 table"
            );
        }
    }

    #[test]
    fn segment_length_respects_config() {
        let f = Fixture::new();
        let cfg = EcoChargeConfig { segment_km: 2.0, ..EcoChargeConfig::default() };
        let ctx = QueryCtx::new(&f.graph, &f.fleet, &f.server, &f.sims, cfg);
        let trip = &f.trips[0];
        let fine = CknnQuery::new(&ctx, trip).unwrap().len();
        let coarse_ctx = f.ctx(); // 4 km
        let coarse = CknnQuery::new(&coarse_ctx, trip).unwrap().len();
        assert!(fine > coarse, "2 km segmentation must yield more segments ({fine} vs {coarse})");
    }
}
