//! The detour (derouting) search layer: one entry point that the
//! component computation, the baselines and the fleet simulator all call,
//! dispatching on [`DetourBackend`].
//!
//! * [`DetourBackend::Dijkstra`] — the three batched settle-set sweeps
//!   (forward time, forward energy, reverse energy) on the caller's
//!   [`SearchEngine`], overlapped on pool engines when `threads > 1`;
//! * [`DetourBackend::Ch`] — the same three queries answered by the
//!   shared Contraction-Hierarchy index ([`QueryCtx::detour_ch`]), each
//!   worker using the CH scratch embedded in its pooled engine.
//!
//! Both backends return **bit-identical** results (costs compared by bit
//! pattern in the cross-backend tests): the CH queries unpack their paths
//! to original edges and re-sum costs in the Dijkstra fold order, and
//! both accumulate the per-road-class metre histograms in forward path
//! order. The histograms feed [`dominant_class`], which picks the road
//! class whose congestion profile scales the candidate's `D` component —
//! replacing the old hardcoded `RoadClass::Primary`.

use crate::context::QueryCtx;
use ec_types::NodeId;
use roadnet::{metric_cost, ChCost, CostMetric, DetourBackend, RoadClass, SearchEngine};

/// Batched detour quantities for one `(at_node, rejoin_node, candidates)`
/// query point, slot `i` belonging to `nodes[i]`. `None` slots are
/// unreachable candidates.
#[derive(Debug, Clone, PartialEq)]
pub struct DetourBatch {
    /// Forward free-flow travel time, seconds (`None` when the batch was
    /// requested without the time sweep — the Dynamic-Caching refresh
    /// path keeps its cached ETAs).
    pub secs: Option<Vec<Option<f64>>>,
    /// Forward detour energy `at → candidate`, kWh.
    pub kwh_fwd: Vec<Option<f64>>,
    /// Return energy `candidate → rejoin`, kWh.
    pub kwh_ret: Vec<Option<f64>>,
    /// Dominant road class of each candidate's out-and-back detour
    /// ([`RoadClass::Primary`] when the path is unavailable).
    pub class: Vec<RoadClass>,
}

/// The road class carrying the most metres of the out-and-back detour
/// (`None` when the histogram is empty). Ties keep the earlier
/// [`RoadClass::tag`] index, so the choice is deterministic.
#[must_use]
pub fn dominant_class(hist: &[f64; 4]) -> Option<RoadClass> {
    let mut best = 0usize;
    for i in 1..hist.len() {
        if hist[i] > hist[best] {
            best = i;
        }
    }
    (hist[best] > 0.0).then(|| RoadClass::from_tag(best as u8))
}

fn combine_class(
    fwd: &[Option<(f64, [f64; 4])>],
    ret: &[Option<(f64, [f64; 4])>],
) -> Vec<RoadClass> {
    fwd.iter()
        .zip(ret)
        .map(|(f, r)| match (f, r) {
            (Some((_, hf)), Some((_, hr))) => {
                let h: [f64; 4] = std::array::from_fn(|i| hf[i] + hr[i]);
                dominant_class(&h).unwrap_or(RoadClass::Primary)
            }
            _ => RoadClass::Primary,
        })
        .collect()
}

fn ch_combine_class(fwd: &[Option<ChCost>], ret: &[Option<ChCost>]) -> Vec<RoadClass> {
    fwd.iter()
        .zip(ret)
        .map(|(f, r)| match (f, r) {
            (Some(f), Some(r)) => {
                let h: [f64; 4] = std::array::from_fn(|i| f.class_len_m[i] + r.class_len_m[i]);
                dominant_class(&h).unwrap_or(RoadClass::Primary)
            }
            _ => RoadClass::Primary,
        })
        .collect()
}

fn costs_of(batch: &[Option<ChCost>]) -> Vec<Option<f64>> {
    batch.iter().map(|c| c.as_ref().map(|c| c.cost)).collect()
}

/// Run the detour searches for one query point on the configured backend.
/// `with_time` additionally runs the forward time sweep (the full
/// component computation needs ETAs; the derouting refresh does not).
///
/// Pure function of `(graph, at_node, rejoin_node, nodes)` — overlapping
/// the searches on pool engines under `threads > 1` cannot change any
/// value, and both backends agree bit-for-bit.
#[must_use]
pub fn detour_batch(
    ctx: &QueryCtx<'_>,
    engine: &mut SearchEngine,
    at_node: NodeId,
    rejoin_node: NodeId,
    nodes: &[NodeId],
    with_time: bool,
) -> DetourBatch {
    let threads = ctx.config.threads;
    match ctx.resolved_backend_for(nodes.len()) {
        DetourBackend::Auto => unreachable!("resolved_backend_for never returns Auto"),
        DetourBackend::Dijkstra => {
            let (secs, fwd, ret) = if threads > 1 {
                if with_time {
                    let (secs, fwd, ret) = ec_exec::join3(
                        || {
                            engine.one_to_many(
                                ctx.graph,
                                at_node,
                                nodes,
                                metric_cost(CostMetric::Time),
                            )
                        },
                        || {
                            ctx.engines.checkout().one_to_many_profiled(
                                ctx.graph,
                                at_node,
                                nodes,
                                metric_cost(CostMetric::Energy),
                            )
                        },
                        || {
                            ctx.engines.checkout().many_to_one_profiled(
                                ctx.graph,
                                rejoin_node,
                                nodes,
                                metric_cost(CostMetric::Energy),
                            )
                        },
                    );
                    (Some(secs), fwd, ret)
                } else {
                    let (fwd, ret) = ec_exec::join(
                        || {
                            engine.one_to_many_profiled(
                                ctx.graph,
                                at_node,
                                nodes,
                                metric_cost(CostMetric::Energy),
                            )
                        },
                        || {
                            ctx.engines.checkout().many_to_one_profiled(
                                ctx.graph,
                                rejoin_node,
                                nodes,
                                metric_cost(CostMetric::Energy),
                            )
                        },
                    );
                    (None, fwd, ret)
                }
            } else {
                let secs = with_time.then(|| {
                    engine.one_to_many(ctx.graph, at_node, nodes, metric_cost(CostMetric::Time))
                });
                let fwd = engine.one_to_many_profiled(
                    ctx.graph,
                    at_node,
                    nodes,
                    metric_cost(CostMetric::Energy),
                );
                let ret = engine.many_to_one_profiled(
                    ctx.graph,
                    rejoin_node,
                    nodes,
                    metric_cost(CostMetric::Energy),
                );
                (secs, fwd, ret)
            };
            DetourBatch {
                secs,
                class: combine_class(&fwd, &ret),
                kwh_fwd: fwd.into_iter().map(|c| c.map(|(c, _)| c)).collect(),
                kwh_ret: ret.into_iter().map(|c| c.map(|(c, _)| c)).collect(),
            }
        }
        DetourBackend::Ch => {
            let ch = ctx.detour_ch();
            let (secs, fwd, ret) = if threads > 1 {
                if with_time {
                    let (secs, fwd, ret) = ec_exec::join3(
                        || ch.time.one_to_many(ctx.graph, engine.ch_scratch(), at_node, nodes),
                        || {
                            ch.energy.one_to_many(
                                ctx.graph,
                                ctx.engines.checkout().ch_scratch(),
                                at_node,
                                nodes,
                            )
                        },
                        || {
                            ch.energy.many_to_one(
                                ctx.graph,
                                ctx.engines.checkout().ch_scratch(),
                                rejoin_node,
                                nodes,
                            )
                        },
                    );
                    (Some(secs), fwd, ret)
                } else {
                    let (fwd, ret) = ec_exec::join(
                        || ch.energy.one_to_many(ctx.graph, engine.ch_scratch(), at_node, nodes),
                        || {
                            ch.energy.many_to_one(
                                ctx.graph,
                                ctx.engines.checkout().ch_scratch(),
                                rejoin_node,
                                nodes,
                            )
                        },
                    );
                    (None, fwd, ret)
                }
            } else {
                let scratch = engine.ch_scratch();
                let secs =
                    with_time.then(|| ch.time.one_to_many(ctx.graph, scratch, at_node, nodes));
                let fwd = ch.energy.one_to_many(ctx.graph, engine.ch_scratch(), at_node, nodes);
                let ret = ch.energy.many_to_one(ctx.graph, engine.ch_scratch(), rejoin_node, nodes);
                (secs, fwd, ret)
            };
            DetourBatch {
                secs: secs.map(|s| costs_of(&s)),
                class: ch_combine_class(&fwd, &ret),
                kwh_fwd: costs_of(&fwd),
                kwh_ret: costs_of(&ret),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominant_class_picks_strict_max_and_breaks_ties_low() {
        assert_eq!(dominant_class(&[0.0, 0.0, 0.0, 0.0]), None);
        assert_eq!(dominant_class(&[1.0, 5.0, 2.0, 0.0]), Some(RoadClass::from_tag(1)));
        // Tie: the earlier tag wins.
        assert_eq!(dominant_class(&[3.0, 3.0, 0.0, 0.0]), Some(RoadClass::from_tag(0)));
        assert_eq!(dominant_class(&[0.0, 0.0, 0.0, 7.0]), Some(RoadClass::from_tag(3)));
    }
}
