//! The Sustainability Score `SC` (§III-B, Eq. 4–6).
//!
//! `SC` is a weighted sum of the three normalised estimated components:
//! sustainable charging level `L`, availability `A`, and the *complement*
//! of the derouting cost `D` (a small detour should score high):
//!
//! ```text
//! SC_min = L_min·w1 + A_min·w2 + (1 − D)·w3   (pessimistic end)
//! SC_max = L_max·w1 + A_max·w2 + (1 − D)·w3   (optimistic end)
//! SC(B)  = sort( topk(SC_max) ∩ topk(SC_min) )
//! ```
//!
//! One reading note: the paper's Eq. 4 writes the derouting term of
//! `SC_min` as `(1 − D_min)`. Taken literally that mixes the pessimistic
//! `L`/`A` bounds with the *optimistic* derouting bound. We implement the
//! evident intent — a proper interval lower/upper bound, i.e. `SC_min`
//! uses `(1 − D_max)` — so that `SC_min ≤ SC_max` always holds and the
//! filtering phase's dominance pruning stays sound (documented as the one
//! formula-level deviation in DESIGN.md).

use ec_types::Interval;
use serde::{Deserialize, Serialize};

/// The user-configurable objective weights `(w1, w2, w3)` for `L`, `A`,
/// `D` respectively. Always normalised to sum to 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(try_from = "RawWeights", into = "RawWeights")]
pub struct Weights {
    w1: f64,
    w2: f64,
    w3: f64,
}

/// Wire-format twin of [`Weights`], used as a `serde` validation shim.
///
/// Deserialisation routes through `TryFrom<RawWeights>` →
/// [`Weights::try_new`], so weights read from untrusted input are
/// re-normalised and the constructor invariants (non-negative, not all
/// zero) cannot be bypassed — an unnormalised `Weights` would push `SC`
/// outside `[0,1]` and unsound the dominance pruning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RawWeights {
    /// `L` weight as it appears on the wire.
    pub w1: f64,
    /// `A` weight as it appears on the wire.
    pub w2: f64,
    /// `D` weight as it appears on the wire.
    pub w3: f64,
}

impl TryFrom<RawWeights> for Weights {
    type Error = String;

    fn try_from(raw: RawWeights) -> Result<Self, Self::Error> {
        Self::try_new(raw.w1, raw.w2, raw.w3)
    }
}

impl From<Weights> for RawWeights {
    fn from(w: Weights) -> Self {
        Self { w1: w.w1, w2: w.w2, w3: w.w3 }
    }
}

impl Weights {
    /// *All Weights Equal* — the paper's default (`w1 = w2 = w3 = ⅓`).
    #[must_use]
    pub fn awe() -> Self {
        Self { w1: 1.0 / 3.0, w2: 1.0 / 3.0, w3: 1.0 / 3.0 }
    }

    /// *Only Sustainable Charging* — all weight on `L`.
    #[must_use]
    pub fn osc() -> Self {
        Self { w1: 1.0, w2: 0.0, w3: 0.0 }
    }

    /// *Only Availability* — all weight on `A`.
    #[must_use]
    pub fn oa() -> Self {
        Self { w1: 0.0, w2: 1.0, w3: 0.0 }
    }

    /// *Only Derouting Cost* — all weight on `D`.
    #[must_use]
    pub fn odc() -> Self {
        Self { w1: 0.0, w2: 0.0, w3: 1.0 }
    }

    /// Arbitrary weights, normalised to sum to one.
    ///
    /// # Panics
    /// Panics when any weight is negative or all are zero.
    #[must_use]
    pub fn new(w1: f64, w2: f64, w3: f64) -> Self {
        match Self::try_new(w1, w2, w3) {
            Ok(w) => w,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Weights::new`]: rejects non-finite or negative weights
    /// and the all-zero triple instead of panicking. This is the
    /// validation path `Deserialize` routes through (via [`RawWeights`]).
    pub fn try_new(w1: f64, w2: f64, w3: f64) -> Result<Self, String> {
        if !(w1.is_finite() && w2.is_finite() && w3.is_finite()) {
            return Err(format!("weights must be finite: ({w1}, {w2}, {w3})"));
        }
        if !(w1 >= 0.0 && w2 >= 0.0 && w3 >= 0.0) {
            return Err(format!("weights must be non-negative: ({w1}, {w2}, {w3})"));
        }
        let sum = w1 + w2 + w3;
        if sum <= 0.0 {
            return Err("at least one weight must be positive".to_string());
        }
        Ok(Self { w1: w1 / sum, w2: w2 / sum, w3: w3 / sum })
    }

    /// Weight of the sustainable-charging-level objective.
    #[must_use]
    pub const fn w1(&self) -> f64 {
        self.w1
    }

    /// Weight of the availability objective.
    #[must_use]
    pub const fn w2(&self) -> f64 {
        self.w2
    }

    /// Weight of the derouting objective.
    #[must_use]
    pub const fn w3(&self) -> f64 {
        self.w3
    }

    /// Point score for exact (non-interval) component values, all in
    /// `[0,1]` with `d` the *cost* (not its complement).
    #[must_use]
    pub fn point_score(&self, l: f64, a: f64, d: f64) -> f64 {
        self.w1 * l + self.w2 * a + self.w3 * (1.0 - d)
    }

    /// Interval score: `L·w1 + A·w2 + (1 − D)·w3` with proper interval
    /// arithmetic (the `(1 − D)` complement swaps endpoints, keeping
    /// `lo ≤ hi`).
    #[must_use]
    pub fn interval_score(&self, l: Interval, a: Interval, d: Interval) -> Interval {
        l * self.w1 + a * self.w2 + d.complement() * self.w3
    }
}

impl Default for Weights {
    fn default() -> Self {
        Self::awe()
    }
}

/// Filtering-phase pruning: drop every candidate that is *necessarily
/// dominated* by at least `k` others — its score interval lies entirely
/// below `k` other candidates' intervals, so no realisation of the
/// estimates can put it in the top-k (§III-C: the filtering phase
/// "ensures that only the k most suitable chargers are considered, while
/// pruning all the rest").
///
/// Returns the indices (into `scored`) of the survivors, in input order.
/// Provably output-preserving for [`refine_topk`]: a candidate with `k`
/// necessary dominators ranks below all of them in both the `SC_min` and
/// the `SC_max` order, so it can appear in neither top-k set nor be
/// reached by the top-up before they are.
#[must_use]
pub fn prune_dominated(scored: &[(usize, Interval)], k: usize) -> Vec<usize> {
    if k == 0 || scored.len() <= k {
        return (0..scored.len()).collect();
    }
    // Sort interval lower bounds descending; candidate i is necessarily
    // dominated by k others iff the k-th largest lower bound exceeds
    // hi_i. O(n log n) instead of the naive O(n²) pairwise check.
    let mut los: Vec<f64> = scored.iter().map(|(_, s)| s.lo()).collect();
    los.sort_by(|a, b| b.partial_cmp(a).expect("scores are finite"));
    let kth_lo = los[k - 1];
    (0..scored.len()).filter(|&i| scored[i].1.hi() >= kth_lo).collect()
}

/// Rank candidates by the paper's refinement rule (Eq. 6): intersect the
/// top-`k` under `SC_min` with the top-`k` under `SC_max`, then sort by
/// midpoint (ties by upper bound), best first. When the intersection holds
/// fewer than `k` chargers it is topped up with the best remaining
/// candidates by `SC_max` order — the table the driver sees always offers
/// `min(k, candidates)` choices.
///
/// Input: `(candidate_index, sc_interval)` pairs. Output: candidate
/// indices, best first.
#[must_use]
pub fn refine_topk(scored: &[(usize, Interval)], k: usize) -> Vec<usize> {
    if k == 0 || scored.is_empty() {
        return Vec::new();
    }
    let order_by = |key: fn(&Interval) -> f64| {
        let mut idx: Vec<usize> = (0..scored.len()).collect();
        idx.sort_by(|&x, &y| {
            key(&scored[y].1)
                .partial_cmp(&key(&scored[x].1))
                .expect("scores are finite")
                .then_with(|| scored[x].0.cmp(&scored[y].0))
        });
        idx
    };
    let by_min = order_by(Interval::lo);
    let by_max = order_by(Interval::hi);

    let top_min: std::collections::HashSet<usize> = by_min.iter().take(k).copied().collect();
    let mut picked: Vec<usize> =
        by_max.iter().take(k).copied().filter(|i| top_min.contains(i)).collect();

    // Top-up from the SC_max order (best candidates not yet picked).
    // Membership via a seen-bitset: the `picked.contains(&i)` linear scan
    // made this loop O(k·n) for large candidate pools.
    if picked.len() < k {
        let mut seen = vec![false; scored.len()];
        for &i in &picked {
            seen[i] = true;
        }
        for &i in &by_max {
            if picked.len() >= k.min(scored.len()) {
                break;
            }
            if !seen[i] {
                seen[i] = true;
                picked.push(i);
            }
        }
    }

    // Final presentation order: midpoint rank, best first.
    picked.sort_by(|&x, &y| scored[y].1.rank_cmp(&scored[x].1));
    picked.into_iter().map(|i| scored[i].0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_sum_to_one() {
        for w in [Weights::awe(), Weights::osc(), Weights::oa(), Weights::odc()] {
            assert!((w.w1() + w.w2() + w.w3() - 1.0).abs() < 1e-12);
        }
        assert_eq!(Weights::awe(), Weights::default());
    }

    #[test]
    fn new_normalises() {
        let w = Weights::new(2.0, 1.0, 1.0);
        assert!((w.w1() - 0.5).abs() < 1e-12);
        assert!((w.w2() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_panics() {
        let _ = Weights::new(-1.0, 1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn all_zero_panics() {
        let _ = Weights::new(0.0, 0.0, 0.0);
    }

    #[test]
    fn point_score_matches_formula() {
        let w = Weights::awe();
        let sc = w.point_score(0.9, 0.6, 0.3);
        assert!((sc - (0.9 + 0.6 + 0.7) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_charger_scores_one() {
        let w = Weights::awe();
        assert!((w.point_score(1.0, 1.0, 0.0) - 1.0).abs() < 1e-12);
        assert_eq!(w.point_score(0.0, 0.0, 1.0), 0.0);
    }

    #[test]
    fn interval_score_is_proper_interval() {
        let w = Weights::awe();
        let sc = w.interval_score(
            Interval::new(0.5, 0.8),
            Interval::new(0.2, 0.6),
            Interval::new(0.1, 0.4),
        );
        assert!(sc.lo() <= sc.hi());
        // Lower bound must be the all-pessimistic combination:
        // (0.5 + 0.2 + (1-0.4)) / 3.
        assert!((sc.lo() - (0.5 + 0.2 + 0.6) / 3.0).abs() < 1e-12);
        assert!((sc.hi() - (0.8 + 0.6 + 0.9) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn interval_score_point_inputs_match_point_score() {
        let w = Weights::new(0.5, 0.3, 0.2);
        let sc = w.interval_score(Interval::point(0.7), Interval::point(0.4), Interval::point(0.2));
        assert!(sc.is_point());
        assert!((sc.lo() - w.point_score(0.7, 0.4, 0.2)).abs() < 1e-12);
    }

    #[test]
    fn single_objective_weights_isolate_components() {
        let l = Interval::new(0.1, 0.2);
        let a = Interval::new(0.8, 0.9);
        let d = Interval::new(0.3, 0.5);
        let osc = Weights::osc().interval_score(l, a, d);
        assert_eq!((osc.lo(), osc.hi()), (0.1, 0.2));
        let oa = Weights::oa().interval_score(l, a, d);
        assert_eq!((oa.lo(), oa.hi()), (0.8, 0.9));
        let odc = Weights::odc().interval_score(l, a, d);
        assert!((odc.lo() - 0.5).abs() < 1e-12 && (odc.hi() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn prune_keeps_everything_when_small() {
        let scored = vec![(0, Interval::point(0.1)), (1, Interval::point(0.9))];
        assert_eq!(prune_dominated(&scored, 3), vec![0, 1]);
        assert_eq!(prune_dominated(&scored, 0), vec![0, 1]);
    }

    #[test]
    fn prune_drops_necessarily_dominated() {
        let scored = vec![
            (0, Interval::new(0.8, 0.9)),
            (1, Interval::new(0.7, 0.8)),
            (2, Interval::new(0.6, 0.7)),
            (3, Interval::new(0.0, 0.1)), // below two intervals' lower bounds
            (4, Interval::new(0.0, 0.75)), // wide: overlaps the contenders
        ];
        let kept = prune_dominated(&scored, 2);
        assert!(!kept.contains(&3), "fully dominated candidate must go");
        assert!(kept.contains(&4), "overlapping candidate must survive");
        assert!(kept.contains(&0) && kept.contains(&1));
    }

    #[test]
    fn pruning_never_changes_refinement() {
        // Randomised check (deterministic seed): refine(all) == refine(pruned).
        let mut rng = ec_types::SplitMix64::new(17);
        for _ in 0..200 {
            let n = 3 + (rng.below(30) as usize);
            let k = 1 + (rng.below(6) as usize);
            let scored: Vec<(usize, Interval)> = (0..n)
                .map(|i| {
                    let a = rng.range_f64(0.0, 1.0);
                    let b = (a + rng.range_f64(0.0, 0.3)).min(1.0);
                    (i, Interval::new(a, b))
                })
                .collect();
            let full = refine_topk(&scored, k);
            let survivors = prune_dominated(&scored, k);
            let pruned: Vec<(usize, Interval)> = survivors.iter().map(|&i| scored[i]).collect();
            let fast = refine_topk(&pruned, k);
            assert_eq!(full, fast, "pruning changed the table (n={n}, k={k})");
        }
    }

    #[test]
    fn refine_topk_intersects_and_sorts() {
        // Three clear winners, two clear losers.
        let scored = vec![
            (10, Interval::new(0.80, 0.90)),
            (11, Interval::new(0.70, 0.85)),
            (12, Interval::new(0.75, 0.88)),
            (13, Interval::new(0.10, 0.20)),
            (14, Interval::new(0.05, 0.15)),
        ];
        let top = refine_topk(&scored, 3);
        assert_eq!(top, vec![10, 12, 11]);
    }

    #[test]
    fn refine_topk_tops_up_when_intersection_small() {
        // One candidate great on SC_max but terrible on SC_min, and vice
        // versa: intersection of top-1 sets may be empty; the table still
        // returns k entries.
        let scored = vec![(0, Interval::new(0.0, 1.0)), (1, Interval::new(0.45, 0.55))];
        let top = refine_topk(&scored, 1);
        assert_eq!(top.len(), 1);
    }

    #[test]
    fn refine_topk_k_zero_or_empty() {
        assert!(refine_topk(&[], 3).is_empty());
        assert!(refine_topk(&[(0, Interval::point(0.5))], 0).is_empty());
    }

    #[test]
    fn refine_topk_k_exceeds_candidates() {
        let scored = vec![(7, Interval::point(0.5)), (8, Interval::point(0.9))];
        let top = refine_topk(&scored, 10);
        assert_eq!(top, vec![8, 7]);
    }

    #[test]
    fn try_new_rejects_invalid_weights() {
        assert!(Weights::try_new(-1.0, 1.0, 1.0).unwrap_err().contains("non-negative"));
        assert!(Weights::try_new(0.0, 0.0, 0.0).unwrap_err().contains("positive"));
        assert!(Weights::try_new(f64::NAN, 1.0, 1.0).unwrap_err().contains("finite"));
        assert!(Weights::try_new(f64::INFINITY, 1.0, 1.0).unwrap_err().contains("finite"));
        let w = Weights::try_new(2.0, 1.0, 1.0).unwrap();
        assert_eq!(w, Weights::new(2.0, 1.0, 1.0));
    }

    #[test]
    fn raw_weights_roundtrip_and_normalise() {
        // An unnormalised wire triple must come back normalised — the
        // serde path can no longer smuggle in weights summing != 1.
        let w = Weights::try_from(RawWeights { w1: 3.0, w2: 1.0, w3: 0.0 }).unwrap();
        assert!((w.w1() + w.w2() + w.w3() - 1.0).abs() < 1e-12);
        assert!((w.w1() - 0.75).abs() < 1e-12);
        let raw = RawWeights::from(Weights::awe());
        assert_eq!(Weights::try_from(raw), Ok(Weights::awe()));
        assert!(Weights::try_from(RawWeights { w1: -0.1, w2: 0.5, w3: 0.6 }).is_err());
    }

    /// Reference implementation of the pre-bitset top-up, kept verbatim
    /// for the equivalence check below.
    fn refine_topk_reference(scored: &[(usize, Interval)], k: usize) -> Vec<usize> {
        if k == 0 || scored.is_empty() {
            return Vec::new();
        }
        let order_by = |key: fn(&Interval) -> f64| {
            let mut idx: Vec<usize> = (0..scored.len()).collect();
            idx.sort_by(|&x, &y| {
                key(&scored[y].1)
                    .partial_cmp(&key(&scored[x].1))
                    .expect("scores are finite")
                    .then_with(|| scored[x].0.cmp(&scored[y].0))
            });
            idx
        };
        let by_min = order_by(Interval::lo);
        let by_max = order_by(Interval::hi);
        let top_min: std::collections::HashSet<usize> = by_min.iter().take(k).copied().collect();
        let mut picked: Vec<usize> =
            by_max.iter().take(k).copied().filter(|i| top_min.contains(i)).collect();
        if picked.len() < k {
            for &i in &by_max {
                if picked.len() >= k.min(scored.len()) {
                    break;
                }
                if !picked.contains(&i) {
                    picked.push(i);
                }
            }
        }
        picked.sort_by(|&x, &y| scored[y].1.rank_cmp(&scored[x].1));
        picked.into_iter().map(|i| scored[i].0).collect()
    }

    #[test]
    fn bitset_topup_matches_reference_at_large_n() {
        // Large-n equivalence: the seen-bitset top-up must pick exactly
        // the same table as the O(k·n) contains()-based loop, including
        // on tie-heavy and disjoint-top-set inputs.
        let mut rng = ec_types::SplitMix64::new(99);
        for trial in 0..20 {
            let n = 2_000 + (rng.below(3_000) as usize);
            let k = 1 + (rng.below(64) as usize);
            let scored: Vec<(usize, Interval)> = (0..n)
                .map(|i| {
                    // Quantised endpoints force many exact ties.
                    let a = (rng.below(40) as f64) / 40.0;
                    let b = (a + (rng.below(20) as f64) / 40.0).min(1.0);
                    (i, Interval::new(a, b))
                })
                .collect();
            assert_eq!(
                refine_topk(&scored, k),
                refine_topk_reference(&scored, k),
                "trial {trial}: n={n}, k={k}"
            );
        }
    }

    #[test]
    fn refine_topk_deterministic_on_ties() {
        let scored =
            vec![(3, Interval::point(0.5)), (1, Interval::point(0.5)), (2, Interval::point(0.5))];
        let a = refine_topk(&scored, 2);
        let b = refine_topk(&scored, 2);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
    }
}
