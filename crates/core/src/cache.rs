//! Dynamic Caching (§IV-C).
//!
//! "Before a new Offering Table is generated and provided to the user,
//! EcoCharge examines the previous and current location in order to decide
//! whether it needs to re-generate a new solution or the previously
//! generated one can be applied." The decision is gated by two user
//! parameters: the search radius `R` (the cached candidate pool covers a
//! disc of radius `R` around the *old* position) and the range distance
//! `Q` (how far the vehicle may move before a full recomputation).
//!
//! [`DynamicCache`] holds the last full solution — the candidate
//! components and the table built from them — plus hit/miss accounting.
//! The *adaptation* itself (recomputing only `D` from the new position)
//! lives in [`crate::objectives::refresh_derouting`]; this module decides
//! *when* adaptation is allowed.
//!
//! With bound-driven pruning (DESIGN.md §4g) a cold solve may skip the
//! exact availability evaluation for candidates whose optimistic score
//! cannot reach the top-k. Those skipped pool members are retained here as
//! [`ShadowComponent`]s — everything but `A` already computed exactly —
//! so a later adapted query can materialise any of them on demand
//! ([`DynamicCache::promote`]) without redoing the cold solve.

use crate::objectives::Components;
use ec_types::{GeoPoint, Interval, SimDuration, SimTime};
use std::sync::Arc;

/// A pool member whose exact availability evaluation was pruned away
/// during the cold solve. Carries the candidate's position in the original
/// pool order, the availability envelope its score bound used, and the
/// fully-computed components with a placeholder `A` — so materialisation
/// is exactly one availability forecast away.
#[derive(Debug, Clone, PartialEq)]
pub struct ShadowComponent {
    /// Index into the cold solve's candidate pool (original
    /// `within_radius` order) — where the materialised component slots in.
    pub pool_pos: u32,
    /// The availability envelope the pruning bound used; reused by the
    /// adapted path to re-bound the candidate against the new threshold.
    pub a_env: Interval,
    /// All components computed exactly at cold-solve time, with
    /// `a = Interval::zero()` as placeholder until materialised.
    pub comp: Components,
}

/// A cached full solution.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedSolution {
    /// Vehicle position the candidates were pulled for.
    pub origin: GeoPoint,
    /// When the full computation ran.
    pub computed_at: SimTime,
    /// The exactly-evaluated candidate components (the expensive part to
    /// rebuild), shared with the solver that produced them — stores and
    /// lookups move an `Arc`, never clone the vector.
    pub components: Arc<[Components]>,
    /// Pool members pruned before their exact availability evaluation
    /// (empty when pruning is off or nothing was pruned). Sorted by
    /// `pool_pos`; disjoint from `components`' pool positions.
    pub shadows: Arc<[ShadowComponent]>,
    /// The radius (km) the candidate pull used — a cache built with a
    /// smaller radius cannot serve a larger-radius query.
    pub radius_km: f64,
}

/// The Dynamic Caching policy and storage.
#[derive(Debug, Default)]
pub struct DynamicCache {
    slot: Option<CachedSolution>,
    hits: u64,
    misses: u64,
    empty_probes: u64,
}

/// Forecasts older than this are considered invalid regardless of
/// distance — "a solution will naturally be invalidated after a certain
/// time point" (§IV-C). Derived from the EC model rather than picked by
/// hand: it is the age at which staleness widening would exceed half the
/// base forecast half-width growth budget
/// ([`ec_models::forecast_validity_horizon`]), which works out to 30
/// minutes under the current model constants.
#[must_use]
pub fn cache_max_age() -> SimDuration {
    ec_models::forecast_validity_horizon(ec_models::HALF_WIDTH_GROWTH_PER_H * 0.5)
}

impl DynamicCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Decide whether the cached solution may be *adapted* for a query at
    /// `pos`/`now` under range parameter `range_km` (`Q`) and radius
    /// `radius_km` (`R`). On a hit, returns the cached solution.
    ///
    /// An invalidation miss (moved too far, radius too small, too old)
    /// evicts the dead solution — its component storage would otherwise
    /// be retained and re-checked forever. Probing an *empty* cache is
    /// not a miss: nothing was invalidated, so it is tallied separately
    /// (see [`DynamicCache::empty_probes`]) to keep hit-rate accounting
    /// honest.
    pub fn lookup(
        &mut self,
        pos: &GeoPoint,
        now: SimTime,
        range_km: f64,
        radius_km: f64,
    ) -> Option<&CachedSolution> {
        let Some(c) = self.slot.as_ref() else {
            self.empty_probes += 1;
            return None;
        };
        let moved_m = c.origin.fast_dist_m(pos);
        let ok = moved_m < range_km * 1_000.0
            && c.radius_km >= radius_km
            && now.saturating_since(c.computed_at) < cache_max_age();
        if ok {
            self.hits += 1;
            self.slot.as_ref()
        } else {
            self.misses += 1;
            self.slot = None;
            None
        }
    }

    /// Store a freshly computed solution.
    pub fn store(&mut self, solution: CachedSolution) {
        self.slot = Some(solution);
    }

    /// Move shadows that an adapted query materialised into the exact
    /// component set, merging by pool position so the cached pool
    /// converges (in original candidate order) toward the solution an
    /// unpruned cold solve would have stored. Each entry of
    /// `materialized` is `(pool_pos, components-with-A-filled)`; pool
    /// positions not present in the current shadow set are ignored.
    ///
    /// No-op when the cache is empty or nothing was materialised.
    pub fn promote(&mut self, materialized: &[(u32, Components)]) {
        if materialized.is_empty() {
            return;
        }
        let Some(c) = self.slot.as_mut() else { return };
        let promoted: Vec<(u32, &Components)> = c
            .shadows
            .iter()
            .filter_map(|s| {
                materialized.iter().find(|(p, _)| *p == s.pool_pos).map(|(p, m)| (*p, m))
            })
            .collect();
        if promoted.is_empty() {
            return;
        }
        // Exact components keep their relative order; a promoted shadow's
        // pool position tells us how many exact members precede it (each
        // exact member occupies one earlier-or-later pool slot, so a merge
        // walk over both sorted-by-pool-pos sequences re-interleaves them
        // correctly). Shadows are stored sorted by pool_pos; the exact set
        // is the pool-order complement, so walking shadows alongside the
        // exact vector and splicing each promoted entry at the point where
        // its pool_pos fits reproduces the unpruned pool order.
        let mut merged: Vec<Components> = Vec::with_capacity(c.components.len() + promoted.len());
        let mut remaining: Vec<ShadowComponent> =
            Vec::with_capacity(c.shadows.len() - promoted.len());
        let mut exact = c.components.iter();
        let mut next_exact = exact.next();
        // Count of pool slots emitted so far tracks the merge frontier.
        let mut emitted_pool_pos = 0u32;
        let mut shadow_iter = c.shadows.iter().peekable();
        loop {
            // Emit any shadow whose pool slot is the current frontier.
            if let Some(s) = shadow_iter.peek() {
                if s.pool_pos == emitted_pool_pos {
                    let s = shadow_iter.next().expect("peeked");
                    if let Some((_, m)) = promoted.iter().find(|(p, _)| *p == s.pool_pos) {
                        merged.push((*m).clone());
                    } else {
                        remaining.push(s.clone());
                    }
                    emitted_pool_pos += 1;
                    continue;
                }
            }
            // Otherwise the frontier slot belongs to the exact sequence.
            match next_exact {
                Some(comp) => {
                    merged.push(comp.clone());
                    next_exact = exact.next();
                    emitted_pool_pos += 1;
                }
                None => break,
            }
        }
        // Trailing shadows past the last exact member.
        for s in shadow_iter {
            if let Some((_, m)) = promoted.iter().find(|(p, _)| *p == s.pool_pos) {
                merged.push((*m).clone());
            } else {
                remaining.push(s.clone());
            }
        }
        // Un-promoted shadows keep a pool_pos consistent with the merged
        // exact ordering: positions are absolute pool indices, unchanged
        // by promotion (the pool itself never changes).
        c.components = merged.into();
        c.shadows = remaining.into();
    }

    /// Drop any cached solution (new trip, settings change).
    pub fn clear(&mut self) {
        self.slot = None;
    }

    /// `(hits, misses)` since construction. Misses count only
    /// *invalidations* of a stored solution; see
    /// [`DynamicCache::empty_probes`] for probes of an empty cache.
    #[must_use]
    pub const fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Lookups that found no stored solution at all (cold start, after
    /// `clear`, or right after an invalidation evicted the slot).
    #[must_use]
    pub const fn empty_probes(&self) -> u64 {
        self.empty_probes
    }

    /// True when a solution is stored (regardless of validity).
    #[must_use]
    pub const fn is_populated(&self) -> bool {
        self.slot.is_some()
    }

    /// The stored solution, if any — read by the session journal when it
    /// snapshots a serving session (adapted tables depend on the cached
    /// pool, so crash recovery must restore it bit-exactly).
    #[must_use]
    pub const fn slot(&self) -> Option<&CachedSolution> {
        self.slot.as_ref()
    }

    /// Rebuild a cache from snapshotted parts: the stored solution and
    /// the `(hits, misses, empty_probes)` counters. Inverse of reading
    /// [`DynamicCache::slot`] + [`DynamicCache::stats`] +
    /// [`DynamicCache::empty_probes`].
    #[must_use]
    pub const fn from_parts(
        slot: Option<CachedSolution>,
        hits: u64,
        misses: u64,
        empty_probes: u64,
    ) -> Self {
        Self { slot, hits, misses, empty_probes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_types::{ChargerId, DayOfWeek};

    fn solution(origin: GeoPoint, at: SimTime, radius_km: f64) -> CachedSolution {
        CachedSolution {
            origin,
            computed_at: at,
            components: Vec::new().into(),
            shadows: Vec::new().into(),
            radius_km,
        }
    }

    fn t0() -> SimTime {
        SimTime::at(0, DayOfWeek::Tue, 10, 0)
    }

    fn comp(id: u32, a: f64) -> Components {
        use ec_types::{ComponentQuality, Provenance};
        Components {
            charger: ChargerId(id),
            l: Interval::point(0.5),
            clean_kw: Interval::point(10.0),
            a: Interval::point(a),
            d: Interval::point(0.1),
            eta: t0(),
            detour_kwh: Interval::point(1.0),
            quality: Provenance {
                l: ComponentQuality::Fresh,
                a: ComponentQuality::Fresh,
                d: ComponentQuality::Fresh,
            },
        }
    }

    fn shadow(pool_pos: u32, id: u32) -> ShadowComponent {
        ShadowComponent { pool_pos, a_env: Interval::new(0.0, 1.0), comp: comp(id, 0.0) }
    }

    #[test]
    fn max_age_matches_model_horizon() {
        // The validity horizon under the current EC-model constants must
        // reproduce the paper evaluation's 30-minute invalidation window.
        assert_eq!(cache_max_age(), SimDuration::from_mins(30));
    }

    #[test]
    fn empty_cache_probe_is_not_a_miss() {
        let mut c = DynamicCache::new();
        assert!(c.lookup(&GeoPoint::new(8.0, 53.0), t0(), 5.0, 50.0).is_none());
        // Nothing was invalidated — the probe counts separately.
        assert_eq!(c.stats(), (0, 0));
        assert_eq!(c.empty_probes(), 1);
        assert!(!c.is_populated());
    }

    #[test]
    fn hit_within_q() {
        let mut c = DynamicCache::new();
        let origin = GeoPoint::new(8.0, 53.0);
        c.store(solution(origin, t0(), 50.0));
        let near = origin.offset_m(3_000.0, 0.0);
        assert!(c.lookup(&near, t0() + SimDuration::from_mins(4), 5.0, 50.0).is_some());
        assert_eq!(c.stats(), (1, 0));
    }

    #[test]
    fn miss_beyond_q() {
        let mut c = DynamicCache::new();
        let origin = GeoPoint::new(8.0, 53.0);
        c.store(solution(origin, t0(), 50.0));
        let far = origin.offset_m(6_000.0, 0.0);
        assert!(c.lookup(&far, t0(), 5.0, 50.0).is_none());
    }

    #[test]
    fn q_zero_always_misses() {
        let mut c = DynamicCache::new();
        let origin = GeoPoint::new(8.0, 53.0);
        c.store(solution(origin, t0(), 50.0));
        // Even at the exact origin, Q=0 forces recomputation.
        assert!(c.lookup(&origin, t0(), 0.0, 50.0).is_none());
    }

    #[test]
    fn miss_when_cache_radius_smaller_than_query() {
        let mut c = DynamicCache::new();
        let origin = GeoPoint::new(8.0, 53.0);
        c.store(solution(origin, t0(), 25.0));
        // Probe the servable radius first: the invalidating probe below
        // evicts the slot.
        assert!(c.lookup(&origin, t0(), 5.0, 25.0).is_some());
        assert!(c.lookup(&origin, t0(), 5.0, 50.0).is_none(), "R grew beyond cached pool");
    }

    #[test]
    fn invalidation_miss_evicts_dead_solution() {
        let mut c = DynamicCache::new();
        let origin = GeoPoint::new(8.0, 53.0);
        c.store(solution(origin, t0(), 50.0));
        assert!(c.is_populated());

        // Invalidate by age: the dead solution must not be retained.
        let later = t0() + cache_max_age() + SimDuration::from_mins(1);
        assert!(c.lookup(&origin, later, 5.0, 50.0).is_none());
        assert!(!c.is_populated(), "age-invalidated solution must be evicted");
        assert_eq!(c.stats(), (0, 1));

        // The follow-up probe hits an empty slot, not a second miss.
        assert!(c.lookup(&origin, later, 5.0, 50.0).is_none());
        assert_eq!(c.stats(), (0, 1));
        assert_eq!(c.empty_probes(), 1);

        // Same for a distance invalidation.
        c.store(solution(origin, t0(), 50.0));
        let far = origin.offset_m(6_000.0, 0.0);
        assert!(c.lookup(&far, t0(), 5.0, 50.0).is_none());
        assert!(!c.is_populated(), "range-invalidated solution must be evicted");
    }

    #[test]
    fn miss_after_max_age() {
        let mut c = DynamicCache::new();
        let origin = GeoPoint::new(8.0, 53.0);
        c.store(solution(origin, t0(), 50.0));
        let later = t0() + cache_max_age() + SimDuration::from_mins(1);
        assert!(c.lookup(&origin, later, 5.0, 50.0).is_none());
    }

    #[test]
    fn clear_empties() {
        let mut c = DynamicCache::new();
        c.store(solution(GeoPoint::new(8.0, 53.0), t0(), 50.0));
        assert!(c.is_populated());
        c.clear();
        assert!(!c.is_populated());
    }

    #[test]
    fn promote_merges_in_pool_order() {
        // Pool: 5 candidates. Cold solve evaluated pool slots {0, 2, 4}
        // exactly (charger ids 10, 12, 14) and pruned slots {1, 3}
        // (charger ids 11, 13).
        let mut c = DynamicCache::new();
        let origin = GeoPoint::new(8.0, 53.0);
        c.store(CachedSolution {
            origin,
            computed_at: t0(),
            components: vec![comp(10, 0.5), comp(12, 0.5), comp(14, 0.5)].into(),
            shadows: vec![shadow(1, 11), shadow(3, 13)].into(),
            radius_km: 50.0,
        });

        // Materialise shadow at pool slot 3; slot 1 stays shadowed.
        c.promote(&[(3, comp(13, 0.75))]);
        let cached = c.lookup(&origin, t0(), 5.0, 50.0).expect("still valid");
        let ids: Vec<u32> = cached.components.iter().map(|x| x.charger.0).collect();
        assert_eq!(ids, vec![10, 12, 13, 14], "promoted entry splices at its pool slot");
        assert_eq!(cached.components[2].a, Interval::point(0.75), "materialised A kept");
        assert_eq!(cached.shadows.len(), 1);
        assert_eq!(cached.shadows[0].pool_pos, 1);

        // Materialise the remaining shadow: pool fully converges.
        c.promote(&[(1, comp(11, 0.25))]);
        let cached = c.lookup(&origin, t0(), 5.0, 50.0).expect("still valid");
        let ids: Vec<u32> = cached.components.iter().map(|x| x.charger.0).collect();
        assert_eq!(ids, vec![10, 11, 12, 13, 14]);
        assert!(cached.shadows.is_empty());
    }

    #[test]
    fn promote_ignores_unknown_positions_and_empty_cache() {
        let mut c = DynamicCache::new();
        c.promote(&[(0, comp(1, 0.5))]); // empty cache: no-op
        assert!(!c.is_populated());

        let origin = GeoPoint::new(8.0, 53.0);
        c.store(CachedSolution {
            origin,
            computed_at: t0(),
            components: vec![comp(10, 0.5)].into(),
            shadows: vec![shadow(1, 11)].into(),
            radius_km: 50.0,
        });
        c.promote(&[(7, comp(99, 0.5))]); // not a shadow position: no-op
        let cached = c.lookup(&origin, t0(), 5.0, 50.0).expect("valid");
        assert_eq!(cached.components.len(), 1);
        assert_eq!(cached.shadows.len(), 1);
    }
}
