//! Dynamic Caching (§IV-C).
//!
//! "Before a new Offering Table is generated and provided to the user,
//! EcoCharge examines the previous and current location in order to decide
//! whether it needs to re-generate a new solution or the previously
//! generated one can be applied." The decision is gated by two user
//! parameters: the search radius `R` (the cached candidate pool covers a
//! disc of radius `R` around the *old* position) and the range distance
//! `Q` (how far the vehicle may move before a full recomputation).
//!
//! [`DynamicCache`] holds the last full solution — the candidate
//! components and the table built from them — plus hit/miss accounting.
//! The *adaptation* itself (recomputing only `D` from the new position)
//! lives in [`crate::objectives::refresh_derouting`]; this module decides
//! *when* adaptation is allowed.

use crate::objectives::Components;
use ec_types::{GeoPoint, SimDuration, SimTime};

/// A cached full solution.
#[derive(Debug, Clone)]
pub struct CachedSolution {
    /// Vehicle position the candidates were pulled for.
    pub origin: GeoPoint,
    /// When the full computation ran.
    pub computed_at: SimTime,
    /// The candidate components (the expensive part to rebuild).
    pub components: Vec<Components>,
    /// The radius (km) the candidate pull used — a cache built with a
    /// smaller radius cannot serve a larger-radius query.
    pub radius_km: f64,
}

/// The Dynamic Caching policy and storage.
#[derive(Debug, Default)]
pub struct DynamicCache {
    slot: Option<CachedSolution>,
    hits: u64,
    misses: u64,
    empty_probes: u64,
}

/// Forecasts older than this are considered invalid regardless of
/// distance — "a solution will naturally be invalidated after a certain
/// time point" (§IV-C).
pub const CACHE_MAX_AGE: SimDuration = SimDuration::from_mins(30);

impl DynamicCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Decide whether the cached solution may be *adapted* for a query at
    /// `pos`/`now` under range parameter `range_km` (`Q`) and radius
    /// `radius_km` (`R`). On a hit, returns the cached solution.
    ///
    /// An invalidation miss (moved too far, radius too small, too old)
    /// evicts the dead solution — its `Vec<Components>` would otherwise
    /// be retained and re-checked forever. Probing an *empty* cache is
    /// not a miss: nothing was invalidated, so it is tallied separately
    /// (see [`DynamicCache::empty_probes`]) to keep hit-rate accounting
    /// honest.
    pub fn lookup(
        &mut self,
        pos: &GeoPoint,
        now: SimTime,
        range_km: f64,
        radius_km: f64,
    ) -> Option<&CachedSolution> {
        let Some(c) = self.slot.as_ref() else {
            self.empty_probes += 1;
            return None;
        };
        let moved_m = c.origin.fast_dist_m(pos);
        let ok = moved_m < range_km * 1_000.0
            && c.radius_km >= radius_km
            && now.saturating_since(c.computed_at) < CACHE_MAX_AGE;
        if ok {
            self.hits += 1;
            self.slot.as_ref()
        } else {
            self.misses += 1;
            self.slot = None;
            None
        }
    }

    /// Store a freshly computed solution.
    pub fn store(&mut self, solution: CachedSolution) {
        self.slot = Some(solution);
    }

    /// Drop any cached solution (new trip, settings change).
    pub fn clear(&mut self) {
        self.slot = None;
    }

    /// `(hits, misses)` since construction. Misses count only
    /// *invalidations* of a stored solution; see
    /// [`DynamicCache::empty_probes`] for probes of an empty cache.
    #[must_use]
    pub const fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Lookups that found no stored solution at all (cold start, after
    /// `clear`, or right after an invalidation evicted the slot).
    #[must_use]
    pub const fn empty_probes(&self) -> u64 {
        self.empty_probes
    }

    /// True when a solution is stored (regardless of validity).
    #[must_use]
    pub const fn is_populated(&self) -> bool {
        self.slot.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_types::DayOfWeek;

    fn solution(origin: GeoPoint, at: SimTime, radius_km: f64) -> CachedSolution {
        CachedSolution { origin, computed_at: at, components: Vec::new(), radius_km }
    }

    fn t0() -> SimTime {
        SimTime::at(0, DayOfWeek::Tue, 10, 0)
    }

    #[test]
    fn empty_cache_probe_is_not_a_miss() {
        let mut c = DynamicCache::new();
        assert!(c.lookup(&GeoPoint::new(8.0, 53.0), t0(), 5.0, 50.0).is_none());
        // Nothing was invalidated — the probe counts separately.
        assert_eq!(c.stats(), (0, 0));
        assert_eq!(c.empty_probes(), 1);
        assert!(!c.is_populated());
    }

    #[test]
    fn hit_within_q() {
        let mut c = DynamicCache::new();
        let origin = GeoPoint::new(8.0, 53.0);
        c.store(solution(origin, t0(), 50.0));
        let near = origin.offset_m(3_000.0, 0.0);
        assert!(c.lookup(&near, t0() + SimDuration::from_mins(4), 5.0, 50.0).is_some());
        assert_eq!(c.stats(), (1, 0));
    }

    #[test]
    fn miss_beyond_q() {
        let mut c = DynamicCache::new();
        let origin = GeoPoint::new(8.0, 53.0);
        c.store(solution(origin, t0(), 50.0));
        let far = origin.offset_m(6_000.0, 0.0);
        assert!(c.lookup(&far, t0(), 5.0, 50.0).is_none());
    }

    #[test]
    fn q_zero_always_misses() {
        let mut c = DynamicCache::new();
        let origin = GeoPoint::new(8.0, 53.0);
        c.store(solution(origin, t0(), 50.0));
        // Even at the exact origin, Q=0 forces recomputation.
        assert!(c.lookup(&origin, t0(), 0.0, 50.0).is_none());
    }

    #[test]
    fn miss_when_cache_radius_smaller_than_query() {
        let mut c = DynamicCache::new();
        let origin = GeoPoint::new(8.0, 53.0);
        c.store(solution(origin, t0(), 25.0));
        // Probe the servable radius first: the invalidating probe below
        // evicts the slot.
        assert!(c.lookup(&origin, t0(), 5.0, 25.0).is_some());
        assert!(c.lookup(&origin, t0(), 5.0, 50.0).is_none(), "R grew beyond cached pool");
    }

    #[test]
    fn invalidation_miss_evicts_dead_solution() {
        let mut c = DynamicCache::new();
        let origin = GeoPoint::new(8.0, 53.0);
        c.store(solution(origin, t0(), 50.0));
        assert!(c.is_populated());

        // Invalidate by age: the dead solution must not be retained.
        let later = t0() + CACHE_MAX_AGE + SimDuration::from_mins(1);
        assert!(c.lookup(&origin, later, 5.0, 50.0).is_none());
        assert!(!c.is_populated(), "age-invalidated solution must be evicted");
        assert_eq!(c.stats(), (0, 1));

        // The follow-up probe hits an empty slot, not a second miss.
        assert!(c.lookup(&origin, later, 5.0, 50.0).is_none());
        assert_eq!(c.stats(), (0, 1));
        assert_eq!(c.empty_probes(), 1);

        // Same for a distance invalidation.
        c.store(solution(origin, t0(), 50.0));
        let far = origin.offset_m(6_000.0, 0.0);
        assert!(c.lookup(&far, t0(), 5.0, 50.0).is_none());
        assert!(!c.is_populated(), "range-invalidated solution must be evicted");
    }

    #[test]
    fn miss_after_max_age() {
        let mut c = DynamicCache::new();
        let origin = GeoPoint::new(8.0, 53.0);
        c.store(solution(origin, t0(), 50.0));
        let later = t0() + CACHE_MAX_AGE + SimDuration::from_mins(1);
        assert!(c.lookup(&origin, later, 5.0, 50.0).is_none());
    }

    #[test]
    fn clear_empties() {
        let mut c = DynamicCache::new();
        c.store(solution(GeoPoint::new(8.0, 53.0), t0(), 50.0));
        assert!(c.is_populated());
        c.clear();
        assert!(!c.is_populated());
    }
}
