//! The Sustainability Score referee.
//!
//! The evaluation reports every method's `SC` "as a percentage of the
//! Brute Force solution (with it scoring the optimal solution 100%)"
//! (§V-A). [`Oracle`] is that referee, and it can judge under two
//! information bases:
//!
//! * [`ScoringBasis::Forecast`] — **the paper's protocol** (default): the
//!   best point estimate available at query time, i.e. the forecast
//!   midpoints. The paper's Brute-Force maximises SC over the same data
//!   sources every method consumes — no privileged future knowledge
//!   exists in that evaluation — so under this basis Brute-Force defines
//!   100 % and the other methods lose only through candidate restriction
//!   and cache staleness.
//! * [`ScoringBasis::Actual`] — a **ground-truth extension** this
//!   reproduction adds: the simulators' realised values at arrival
//!   (actual sun, actual busyness, actual congestion). Scoring against it
//!   measures the real-world *regret* of forecast-driven ranking — a
//!   quantity the paper could not measure. See EXPERIMENTS.md.
//!
//! All referee searches are batched (their cost is measurement overhead,
//! never counted into any method's `F_t`) and memoised per query point.

use crate::context::QueryCtx;
use crate::score::Weights;
use ec_types::{ChargerId, NodeId, SimDuration, SimTime};
use eis::provider::congestibility;
use roadnet::{metric_cost, CostMetric, RoadClass, SearchEngine};

/// Which information basis the referee scores on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScoringBasis {
    /// Forecast midpoints at query time — the paper's evaluation protocol.
    Forecast,
    /// Simulator ground truth at arrival — the regret extension.
    Actual,
}

/// Ground-truth component values for one charger at one query point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrueComponents {
    /// Normalised true clean-power level at arrival.
    pub l: f64,
    /// True availability at arrival.
    pub a: f64,
    /// Normalised true derouting cost.
    pub d: f64,
}

/// The evaluation referee.
#[derive(Debug)]
pub struct Oracle {
    engine: SearchEngine,
    weights: Weights,
    basis: ScoringBasis,
    /// Memo of the last query point's full-fleet truth — every caller at
    /// one split point (best-k plus one score per method) shares it.
    memo_key: Option<(NodeId, NodeId, SimTime)>,
    memo: Vec<Option<TrueComponents>>,
}

impl Oracle {
    /// An oracle scoring with `weights` under the paper's protocol
    /// ([`ScoringBasis::Forecast`]). The evaluation uses equal weights
    /// even when the method under test ranks with a different config —
    /// that is what makes the Fig. 9 ablation informative.
    #[must_use]
    pub fn new(weights: Weights) -> Self {
        Self::with_basis(weights, ScoringBasis::Forecast)
    }

    /// An oracle with an explicit information basis.
    #[must_use]
    pub fn with_basis(weights: Weights, basis: ScoringBasis) -> Self {
        Self { engine: SearchEngine::new(), weights, basis, memo_key: None, memo: Vec::new() }
    }

    /// The information basis this referee scores on.
    #[must_use]
    pub const fn basis(&self) -> ScoringBasis {
        self.basis
    }

    /// The oracle's scoring weights.
    #[must_use]
    pub const fn weights(&self) -> &Weights {
        &self.weights
    }

    /// Ground truth for the **whole fleet** at one query point, memoised.
    /// `D` is normalised by the fleet-wide maximum true detour — "the
    /// environment's maximum" — so the referee's scale is fixed per query
    /// point regardless of which method's set it grades.
    fn fleet_truth(
        &mut self,
        ctx: &QueryCtx<'_>,
        at_node: NodeId,
        rejoin_node: NodeId,
        now: SimTime,
    ) -> &[Option<TrueComponents>] {
        let key = (at_node, rejoin_node, now);
        if self.memo_key != Some(key) || self.memo.len() != ctx.fleet.len() {
            let nodes: Vec<NodeId> = ctx.fleet.iter().map(|c| c.node).collect();
            let secs_fwd =
                self.engine.one_to_many(ctx.graph, at_node, &nodes, metric_cost(CostMetric::Time));
            let kwh_fwd = self.engine.one_to_many(
                ctx.graph,
                at_node,
                &nodes,
                metric_cost(CostMetric::Energy),
            );
            let kwh_ret = self.engine.many_to_one(
                ctx.graph,
                rejoin_node,
                &nodes,
                metric_cost(CostMetric::Energy),
            );
            // First pass: raw values (clean kW, availability, detour kWh).
            let mut raw: Vec<Option<(f64, f64, f64)>> = Vec::with_capacity(ctx.fleet.len());
            for (i, charger) in ctx.fleet.iter().enumerate() {
                let (Some(secs), Some(e_fwd), Some(e_ret)) = (secs_fwd[i], kwh_fwd[i], kwh_ret[i])
                else {
                    raw.push(None);
                    continue;
                };
                let eta = now + SimDuration::from_secs_f64(secs);
                let (sun, wind_cf, a, factor) = match self.basis {
                    ScoringBasis::Actual => (
                        ctx.sims.weather.actual_sun_fraction(&charger.loc, eta),
                        if charger.has_wind() {
                            ctx.sims.wind.actual_capacity_factor(&charger.loc, eta)
                        } else {
                            0.0
                        },
                        ctx.sims.availability.actual_availability(
                            charger.entity_seed(),
                            charger.archetype,
                            eta,
                        ),
                        ctx.sims.traffic.energy_factor(congestibility(RoadClass::Primary), eta),
                    ),
                    // The forecast basis reads through the same cached
                    // information service the methods use, so referee and
                    // methods see byte-identical estimates.
                    ScoringBasis::Forecast => (
                        ctx.server
                            .sun_forecast(&charger.loc, now, eta)
                            .expect("simulated providers cannot fail")
                            .value
                            .mid(),
                        if charger.has_wind() {
                            ctx.server
                                .wind_forecast(&charger.loc, now, eta)
                                .expect("simulated providers cannot fail")
                                .value
                                .mid()
                        } else {
                            0.0
                        },
                        ctx.server
                            .availability_forecast(charger, now, eta)
                            .expect("simulated providers cannot fail")
                            .value
                            .mid(),
                        ctx.server
                            .traffic_energy_forecast(RoadClass::Primary, now, eta)
                            .expect("simulated providers cannot fail")
                            .value
                            .mid(),
                    ),
                };
                let rate = match &ctx.config.vehicle {
                    Some(v) => v.accept_rate(charger.kind).value(),
                    None => charger.kind.rate().value(),
                };
                let clean_kw =
                    (sun * charger.panel.value() + wind_cf * charger.wind.value()).min(rate);
                let detour = (e_fwd + e_ret) * factor;
                if ctx.config.vehicle.as_ref().is_some_and(|v| !v.can_afford(detour)) {
                    raw.push(None); // infeasible for this vehicle
                    continue;
                }
                raw.push(Some((clean_kw, a, detour)));
            }
            // Second pass: normalise L and D by the environment maxima
            // (fleet-wide; the detour scale is capped at the R-derived
            // environment maximum, matching the methods' normalisation).
            let max_detour = raw
                .iter()
                .flatten()
                .map(|&(_, _, kwh)| kwh)
                .fold(0.0f64, f64::max)
                .min(ctx.norm.max_derouting_kwh)
                .max(f64::EPSILON);
            let max_clean =
                raw.iter().flatten().map(|&(kw, _, _)| kw).fold(0.0f64, f64::max).max(f64::EPSILON);
            self.memo = raw
                .into_iter()
                .map(|r| {
                    r.map(|(kw, a, kwh)| TrueComponents {
                        l: (kw / max_clean).clamp(0.0, 1.0),
                        a,
                        d: (kwh / max_detour).clamp(0.0, 1.0),
                    })
                })
                .collect();
            self.memo_key = Some(key);
        }
        &self.memo
    }

    /// True components for each listed charger (`None` when unreachable),
    /// for a vehicle at `at_node` rejoining at `rejoin_node` at time
    /// `now`.
    pub fn true_components(
        &mut self,
        ctx: &QueryCtx<'_>,
        at_node: NodeId,
        rejoin_node: NodeId,
        now: SimTime,
        chargers: &[ChargerId],
    ) -> Vec<Option<TrueComponents>> {
        let truth = self.fleet_truth(ctx, at_node, rejoin_node, now);
        chargers.iter().map(|c| truth[c.index()]).collect()
    }

    /// Mean true `SC` of a charger set (skipping unreachable members);
    /// `None` when the set is empty or fully unreachable.
    pub fn true_sc_of_set(
        &mut self,
        ctx: &QueryCtx<'_>,
        set: &[ChargerId],
        at_node: NodeId,
        rejoin_node: NodeId,
        now: SimTime,
    ) -> Option<f64> {
        let comps = self.true_components(ctx, at_node, rejoin_node, now, set);
        let vals: Vec<f64> =
            comps.iter().flatten().map(|c| self.weights.point_score(c.l, c.a, c.d)).collect();
        (!vals.is_empty()).then(|| vals.iter().sum::<f64>() / vals.len() as f64)
    }

    /// Mean attained objective values `(L̄, Ā, 1−D̄)` of a set — the
    /// per-objective decomposition the Fig. 9 ablation reports.
    pub fn attained_objectives(
        &mut self,
        ctx: &QueryCtx<'_>,
        set: &[ChargerId],
        at_node: NodeId,
        rejoin_node: NodeId,
        now: SimTime,
    ) -> Option<(f64, f64, f64)> {
        let comps: Vec<TrueComponents> = self
            .true_components(ctx, at_node, rejoin_node, now, set)
            .into_iter()
            .flatten()
            .collect();
        if comps.is_empty() {
            return None;
        }
        let n = comps.len() as f64;
        Some((
            comps.iter().map(|c| c.l).sum::<f64>() / n,
            comps.iter().map(|c| c.a).sum::<f64>() / n,
            comps.iter().map(|c| 1.0 - c.d).sum::<f64>() / n,
        ))
    }

    /// The optimal `k`-set over the whole fleet (what Brute-Force finds)
    /// and its mean true `SC`. Computed with batched searches — this is
    /// the *referee's* fast path, not the baseline's measured loop.
    pub fn best_k(
        &mut self,
        ctx: &QueryCtx<'_>,
        at_node: NodeId,
        rejoin_node: NodeId,
        now: SimTime,
        k: usize,
    ) -> (Vec<ChargerId>, f64) {
        let all: Vec<ChargerId> = ctx.fleet.iter().map(|c| c.id).collect();
        let comps = self.true_components(ctx, at_node, rejoin_node, now, &all);
        let mut scored: Vec<(ChargerId, f64)> = all
            .iter()
            .zip(&comps)
            .filter_map(|(&cid, c)| c.map(|c| (cid, self.weights.point_score(c.l, c.a, c.d))))
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        scored.truncate(k);
        let mean = if scored.is_empty() {
            0.0
        } else {
            scored.iter().map(|(_, s)| s).sum::<f64>() / scored.len() as f64
        };
        (scored.into_iter().map(|(c, _)| c).collect(), mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::EcoChargeConfig;
    use chargers::{synth_fleet, FleetParams};
    use ec_types::DayOfWeek;
    use eis::{InfoServer, SimProviders};
    use roadnet::{urban_grid, UrbanGridParams};

    struct Fixture {
        graph: roadnet::RoadGraph,
        fleet: chargers::ChargerFleet,
        server: InfoServer,
        sims: SimProviders,
    }

    impl Fixture {
        fn new() -> Self {
            let graph = urban_grid(&UrbanGridParams { cols: 14, rows: 14, ..Default::default() });
            let fleet =
                synth_fleet(&graph, &FleetParams { count: 50, seed: 3, ..Default::default() });
            let sims = SimProviders::new(9);
            let server = InfoServer::from_sims(sims.clone());
            Self { graph, fleet, server, sims }
        }

        fn ctx(&self) -> QueryCtx<'_> {
            QueryCtx::new(
                &self.graph,
                &self.fleet,
                &self.server,
                &self.sims,
                EcoChargeConfig::default(),
            )
        }
    }

    #[test]
    fn best_k_is_an_upper_bound_for_any_set() {
        let f = Fixture::new();
        let ctx = f.ctx();
        let mut oracle = Oracle::new(Weights::awe());
        let now = SimTime::at(0, DayOfWeek::Tue, 11, 0);
        let (best, best_mean) = oracle.best_k(&ctx, NodeId(0), NodeId(3), now, 5);
        assert_eq!(best.len(), 5);
        // Any other 5-set scores at most the optimum.
        let arbitrary: Vec<ChargerId> = f.fleet.iter().map(|c| c.id).take(5).collect();
        let mean = oracle.true_sc_of_set(&ctx, &arbitrary, NodeId(0), NodeId(3), now).unwrap();
        assert!(mean <= best_mean + 1e-12, "{mean} > {best_mean}");
        // And the optimum scores itself exactly.
        let self_mean = oracle.true_sc_of_set(&ctx, &best, NodeId(0), NodeId(3), now).unwrap();
        assert!((self_mean - best_mean).abs() < 1e-12);
    }

    #[test]
    fn true_components_in_unit_ranges() {
        let f = Fixture::new();
        let ctx = f.ctx();
        let mut oracle = Oracle::new(Weights::awe());
        let now = SimTime::at(0, DayOfWeek::Sat, 14, 0);
        let all: Vec<ChargerId> = f.fleet.iter().map(|c| c.id).collect();
        let comps = oracle.true_components(&ctx, NodeId(0), NodeId(5), now, &all);
        let mut seen = 0;
        for c in comps.into_iter().flatten() {
            assert!((0.0..=1.0).contains(&c.l));
            assert!((0.0..=1.0).contains(&c.a));
            assert!((0.0..=1.0).contains(&c.d));
            seen += 1;
        }
        assert_eq!(seen, f.fleet.len(), "connected grid reaches everything");
    }

    #[test]
    fn empty_set_scores_none() {
        let f = Fixture::new();
        let ctx = f.ctx();
        let mut oracle = Oracle::new(Weights::awe());
        let now = SimTime::at(0, DayOfWeek::Tue, 11, 0);
        assert!(oracle.true_sc_of_set(&ctx, &[], NodeId(0), NodeId(1), now).is_none());
        assert!(oracle.attained_objectives(&ctx, &[], NodeId(0), NodeId(1), now).is_none());
    }

    #[test]
    fn attained_objectives_decompose_score() {
        let f = Fixture::new();
        let ctx = f.ctx();
        let mut oracle = Oracle::new(Weights::awe());
        let now = SimTime::at(0, DayOfWeek::Tue, 12, 0);
        let set: Vec<ChargerId> = f.fleet.iter().map(|c| c.id).take(6).collect();
        let (l, a, dc) = oracle.attained_objectives(&ctx, &set, NodeId(0), NodeId(2), now).unwrap();
        let sc = oracle.true_sc_of_set(&ctx, &set, NodeId(0), NodeId(2), now).unwrap();
        assert!((sc - (l + a + dc) / 3.0).abs() < 1e-12, "decomposition must reassemble");
    }

    #[test]
    fn night_oracle_prefers_available_near_chargers() {
        // At night L = 0 for everyone; the optimum is driven by A and D.
        let f = Fixture::new();
        let ctx = f.ctx();
        let mut oracle = Oracle::new(Weights::awe());
        let night = SimTime::at(0, DayOfWeek::Tue, 2, 0);
        let (best, mean) = oracle.best_k(&ctx, NodeId(0), NodeId(1), night, 3);
        assert_eq!(best.len(), 3);
        assert!(mean > 0.0 && mean < 0.7, "night mean SC {mean} must drop below daytime band");
    }
}
