//! The app-facing continuous monitor.
//!
//! "The EcoCharge app displays at all times while m is on the move, an
//! Offering Table O (e.g., every few minutes)" (§II-A), and the client
//! "continuously recomputes the path using a ≈3-5 minutes window"
//! (§IV-A). [`TripMonitor`] is that loop's engine-side half: feed it the
//! vehicle's progress (`advance`), and it answers with
//! [`MonitorEvent`]s — a new table when the ranking *changed*, a
//! heartbeat when the refreshed table still offers the same chargers (the
//! CkNN "no transition between split points" case), and nothing at all
//! between segment boundaries.

use crate::cknn::CknnQuery;
use crate::context::{QueryCtx, RankingMethod};
use crate::offering::OfferingTable;
use ec_types::{ChargerId, EcError, SimTime};
use trajgen::Trip;

/// What one `advance` call observed.
#[derive(Debug, Clone, PartialEq)]
pub enum MonitorEvent {
    /// Still within the current segment — nothing recomputed.
    WithinSegment,
    /// A segment boundary was crossed and the refreshed table ranks the
    /// same chargers in the same order (split-list "no transition").
    Unchanged,
    /// The ranking changed; the new table is attached.
    NewTable(OfferingTable),
    /// No chargers are currently in range.
    NoOffers,
}

/// Drives a [`RankingMethod`] along one trip, segment by segment.
pub struct TripMonitor<M: RankingMethod> {
    method: M,
    /// Segment boundaries (offsets, metres) remaining ahead.
    boundaries: Vec<f64>,
    next_boundary: usize,
    last_ranking: Option<Vec<ChargerId>>,
    tables_emitted: usize,
    heartbeats: usize,
}

impl<M: RankingMethod> TripMonitor<M> {
    /// Start monitoring `trip` with `method` (its per-trip state is
    /// reset).
    ///
    /// # Errors
    /// Propagates trip segmentation failures.
    pub fn start(ctx: &QueryCtx<'_>, trip: &Trip, mut method: M) -> Result<Self, EcError> {
        let query = CknnQuery::new(ctx, trip)?;
        method.reset_trip();
        Ok(Self {
            method,
            boundaries: query.split_points().iter().map(|sp| sp.offset_m).collect(),
            next_boundary: 0,
            last_ranking: None,
            tables_emitted: 0,
            heartbeats: 0,
        })
    }

    /// Report the vehicle at `offset_m` / `now`. Monotone offsets are
    /// expected (a navigation fix stream); regressions are treated as
    /// "within segment".
    ///
    /// # Errors
    /// Propagates provider failures.
    pub fn advance(
        &mut self,
        ctx: &QueryCtx<'_>,
        trip: &Trip,
        offset_m: f64,
        now: SimTime,
    ) -> Result<MonitorEvent, EcError> {
        // Cross at most one boundary per call answer; catch up if several
        // were skipped.
        let due = self.next_boundary < self.boundaries.len()
            && offset_m >= self.boundaries[self.next_boundary];
        if !due {
            return Ok(MonitorEvent::WithinSegment);
        }
        while self.next_boundary < self.boundaries.len()
            && offset_m >= self.boundaries[self.next_boundary]
        {
            self.next_boundary += 1;
        }

        match self.method.offering_table(ctx, trip, offset_m, now) {
            Ok(table) => {
                let ranking = table.charger_ids();
                if self.last_ranking.as_deref() == Some(&ranking[..]) {
                    self.heartbeats += 1;
                    Ok(MonitorEvent::Unchanged)
                } else {
                    self.last_ranking = Some(ranking);
                    self.tables_emitted += 1;
                    Ok(MonitorEvent::NewTable(table))
                }
            }
            Err(EcError::NoCandidates) => {
                self.last_ranking = None;
                Ok(MonitorEvent::NoOffers)
            }
            Err(e) => Err(e),
        }
    }

    /// `(tables_emitted, unchanged_heartbeats)` since start.
    #[must_use]
    pub fn stats(&self) -> (usize, usize) {
        (self.tables_emitted, self.heartbeats)
    }

    /// The most recent ranking shown to the driver.
    #[must_use]
    pub fn current_ranking(&self) -> Option<&[ChargerId]> {
        self.last_ranking.as_deref()
    }

    /// The ranking method driving this monitor (e.g. to read an
    /// [`crate::EcoCharge`]'s Dynamic-Cache counters mid-trip).
    #[must_use]
    pub const fn method(&self) -> &M {
        &self.method
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::EcoCharge;
    use crate::context::EcoChargeConfig;
    use chargers::{synth_fleet, FleetParams};
    use eis::{InfoServer, SimProviders};
    use roadnet::{urban_grid, UrbanGridParams};
    use trajgen::{generate_trips, BrinkhoffParams};

    struct Fixture {
        graph: roadnet::RoadGraph,
        fleet: chargers::ChargerFleet,
        server: InfoServer,
        sims: SimProviders,
        trips: Vec<Trip>,
    }

    impl Fixture {
        fn new() -> Self {
            let graph = urban_grid(&UrbanGridParams::default());
            let fleet =
                synth_fleet(&graph, &FleetParams { count: 120, seed: 3, ..Default::default() });
            let sims = SimProviders::new(9);
            let server = InfoServer::from_sims(sims.clone());
            let trips = generate_trips(
                &graph,
                &BrinkhoffParams {
                    trips: 1,
                    min_trip_m: 18_000.0,
                    max_trip_m: 30_000.0,
                    ..Default::default()
                },
            );
            Self { graph, fleet, server, sims, trips }
        }

        fn ctx(&self) -> QueryCtx<'_> {
            QueryCtx::new(
                &self.graph,
                &self.fleet,
                &self.server,
                &self.sims,
                EcoChargeConfig::default(),
            )
        }
    }

    #[test]
    fn emits_on_first_boundary_then_quiet_within_segment() {
        let f = Fixture::new();
        let ctx = f.ctx();
        let trip = &f.trips[0];
        let mut mon = TripMonitor::start(&ctx, trip, EcoCharge::new()).unwrap();
        // At offset 0 the first boundary (0.0) is due.
        let e0 = mon.advance(&ctx, trip, 0.0, trip.depart).unwrap();
        assert!(matches!(e0, MonitorEvent::NewTable(_)), "{e0:?}");
        // 500 m later: same segment, no recompute.
        let e1 = mon.advance(&ctx, trip, 500.0, trip.eta_at_offset(&f.graph, 500.0)).unwrap();
        assert_eq!(e1, MonitorEvent::WithinSegment);
    }

    #[test]
    fn drives_whole_trip_with_gps_cadence() {
        let f = Fixture::new();
        let ctx = f.ctx();
        let trip = &f.trips[0];
        let mut mon = TripMonitor::start(&ctx, trip, EcoCharge::new()).unwrap();
        let mut events = Vec::new();
        let mut offset = 0.0;
        while offset <= trip.length_m() {
            let now = trip.eta_at_offset(&f.graph, offset);
            events.push(mon.advance(&ctx, trip, offset, now).unwrap());
            offset += 250.0; // a fix every 250 m
        }
        let new_tables = events.iter().filter(|e| matches!(e, MonitorEvent::NewTable(_))).count();
        let quiet = events.iter().filter(|e| matches!(e, MonitorEvent::WithinSegment)).count();
        assert!(new_tables >= 1);
        assert!(quiet > events.len() / 2, "most fixes must be quiet");
        let (emitted, heartbeats) = mon.stats();
        assert_eq!(emitted, new_tables);
        // Every boundary produced either a table or a heartbeat.
        let boundaries = CknnQuery::new(&ctx, trip).unwrap().len();
        assert_eq!(
            emitted
                + heartbeats
                + events.iter().filter(|e| matches!(e, MonitorEvent::NoOffers)).count(),
            boundaries
        );
        assert!(mon.current_ranking().is_some());
    }

    #[test]
    fn split_list_survives_forecast_window_rollover_mid_segment() {
        use ec_types::SimDuration;
        let f = Fixture::new();
        let ctx = f.ctx();
        let trip = &f.trips[0];
        let boundaries: Vec<f64> = CknnQuery::new(&ctx, trip)
            .unwrap()
            .split_points()
            .iter()
            .map(|sp| sp.offset_m)
            .collect();
        assert!(boundaries.len() >= 2, "need a second split point");
        let b1 = boundaries[1];

        let mut mon = TripMonitor::start(&ctx, trip, EcoCharge::new()).unwrap();
        let e0 = mon.advance(&ctx, trip, 0.0, trip.depart).unwrap();
        assert!(matches!(e0, MonitorEvent::NewTable(_)), "{e0:?}");

        // Fixes straddling the next 15-minute forecast-window boundary,
        // both still inside the first segment.
        let rollover = eis::forecast_window(trip.depart) + eis::FORECAST_TTL;
        let before_t = std::cmp::max(trip.depart, rollover - SimDuration::from_secs(30));
        let before = mon.advance(&ctx, trip, b1 * 0.4, before_t).unwrap();
        let after_t = rollover + SimDuration::from_secs(30);
        let after = mon.advance(&ctx, trip, b1 * 0.6, after_t).unwrap();
        assert_ne!(
            eis::forecast_window(before_t),
            eis::forecast_window(after_t),
            "the fixes must straddle a window rollover"
        );
        assert_eq!(before, MonitorEvent::WithinSegment);
        assert_eq!(
            after,
            MonitorEvent::WithinSegment,
            "a rollover mid-segment must not trigger a recompute: the split list alone decides"
        );

        // The next boundary — now in the new window — still answers from
        // the split list, and the solve adapts the pre-rollover pool
        // (moved < Q, well under the 30-min cache horizon).
        let e1 = mon.advance(&ctx, trip, b1, rollover + SimDuration::from_mins(2)).unwrap();
        assert!(!matches!(e1, MonitorEvent::WithinSegment), "{e1:?}");
        assert!(!matches!(e1, MonitorEvent::NoOffers), "{e1:?}");
        let (hits, _) = mon.method().cache_stats();
        assert!(hits >= 1, "the post-rollover boundary solve must adapt the cached pool");
    }

    #[test]
    fn rollover_replay_is_deterministic() {
        // Two identical fixtures drive the identical fix stream across at
        // least one forecast-window rollover: the event streams — tables
        // included — must match byte for byte, i.e. split-list
        // maintenance and cache adaptation cannot depend on anything but
        // the (offset, now) sequence.
        let run = || {
            let f = Fixture::new();
            let ctx = f.ctx();
            let trip = &f.trips[0];
            assert_ne!(
                eis::forecast_window(trip.depart),
                eis::forecast_window(trip.arrival(&f.graph)),
                "the drive must cross a rollover"
            );
            let mut mon = TripMonitor::start(&ctx, trip, EcoCharge::new()).unwrap();
            let mut events = Vec::new();
            let mut offset = 0.0;
            while offset <= trip.length_m() {
                let now = trip.eta_at_offset(&f.graph, offset);
                events.push(mon.advance(&ctx, trip, offset, now).unwrap());
                offset += 250.0;
            }
            (events, mon.stats())
        };
        let (events_a, stats_a) = run();
        let (events_b, stats_b) = run();
        assert_eq!(events_a, events_b);
        assert_eq!(stats_a, stats_b);
        assert!(events_a.iter().any(|e| matches!(e, MonitorEvent::NewTable(_))));
    }

    #[test]
    fn skipped_boundaries_are_coalesced() {
        let f = Fixture::new();
        let ctx = f.ctx();
        let trip = &f.trips[0];
        let mut mon = TripMonitor::start(&ctx, trip, EcoCharge::new()).unwrap();
        // Jump straight to the end: all boundaries crossed at once → one
        // recompute, not one per boundary.
        let end = trip.length_m();
        let e = mon.advance(&ctx, trip, end, trip.arrival(&f.graph)).unwrap();
        assert!(matches!(e, MonitorEvent::NewTable(_)));
        let e2 = mon.advance(&ctx, trip, end, trip.arrival(&f.graph)).unwrap();
        assert_eq!(e2, MonitorEvent::WithinSegment, "no boundaries remain");
    }
}
