//! The evaluation baselines (§V-A).
//!
//! * [`BruteForce`] — "performs an exhaustive search over the entire pool
//!   of chargers to find the ones maximizing the SC": the naive loop,
//!   paying per-charger point-to-point searches (an A* out, an A* back,
//!   and an A* for the ETA) — the `O(n)` access path;
//! * [`IndexQuadtree`] — the same scoring restricted to the spatially
//!   nearest fraction of the fleet, retrieved through the quadtree —
//!   faster, but blind to good-but-farther chargers;
//! * [`RandomPick`] — "generates an Offering Table with random EV chargers
//!   within the configured input radius R, while completely ignoring the
//!   objectives".
//!
//! Brute-Force and Index-Quadtree score with the forecast midpoints —
//! the best point estimates the evaluation's data sources offer (the
//! paper's Brute-Force maximises SC over the same feeds every method
//! consumes; no privileged future knowledge exists). Brute-Force defines
//! the 100 % line of the default [`ScoringBasis::Forecast`] referee,
//! while EcoCharge works from the full forecast intervals like a deployed
//! client would.
//!
//! [`ScoringBasis::Forecast`]: crate::oracle::ScoringBasis

use crate::context::{QueryCtx, RankingMethod};
use crate::offering::{OfferingEntry, OfferingTable};
use crate::oracle::TrueComponents;
use ec_types::{
    ChargerId, EcError, GeoPoint, Interval, KilowattHours, NodeId, Provenance, SimDuration,
    SimTime, SplitMix64,
};
use roadnet::{CostMetric, RoadClass, SearchEngine};
use trajgen::Trip;

/// Exactly-measured raw values for one charger: true clean power (kW),
/// true `A`, raw detour energy (kWh) and ETA.
struct ExactRaw {
    charger: ChargerId,
    clean_kw: f64,
    a: f64,
    detour_kwh: f64,
    eta: SimTime,
}

/// Score one charger exactly, the naive way: three A* searches plus the
/// ground-truth component lookups. Shared by Brute-Force and
/// Index-Quadtree (the latter merely shrinks the loop).
fn exact_score_one(
    ctx: &QueryCtx<'_>,
    engine: &mut SearchEngine,
    at_node: NodeId,
    rejoin_node: NodeId,
    now: SimTime,
    cid: ChargerId,
) -> Option<ExactRaw> {
    let charger = ctx.fleet.get(cid);
    let (secs, _) = engine.astar(ctx.graph, at_node, charger.node, CostMetric::Time)?;
    let (e_fwd, _) = engine.astar(ctx.graph, at_node, charger.node, CostMetric::Energy)?;
    let (e_ret, _) = engine.astar(ctx.graph, charger.node, rejoin_node, CostMetric::Energy)?;
    let eta = now + SimDuration::from_secs_f64(secs);
    let sun = ctx.server.sun_forecast(&charger.loc, now, eta).ok()?.value.mid();
    let wind_cf = if charger.has_wind() {
        ctx.server.wind_forecast(&charger.loc, now, eta).ok()?.value.mid()
    } else {
        0.0
    };
    let rate = match &ctx.config.vehicle {
        Some(v) => v.accept_rate(charger.kind).value(),
        None => charger.kind.rate().value(),
    };
    let clean_kw = (sun * charger.panel.value() + wind_cf * charger.wind.value()).min(rate);
    let a = ctx.server.availability_forecast(charger, now, eta).ok()?.value.mid();
    let factor = ctx.server.traffic_energy_forecast(RoadClass::Primary, now, eta).ok()?.value.mid();
    let detour_kwh = (e_fwd + e_ret) * factor;
    if ctx.config.vehicle.as_ref().is_some_and(|v| !v.can_afford(detour_kwh)) {
        return None;
    }
    Some(ExactRaw { charger: cid, clean_kw, a, detour_kwh, eta })
}

/// Score a candidate list, fanning the per-charger searches out over
/// `ctx.config.threads` workers (one pooled [`SearchEngine`] each).
/// Results land in pre-indexed slots, so the surviving chargers come back
/// in input order — exactly what the sequential `filter_map` produces.
fn exact_score_all(
    ctx: &QueryCtx<'_>,
    engine: &mut SearchEngine,
    at_node: NodeId,
    rejoin_node: NodeId,
    now: SimTime,
    ids: &[ChargerId],
) -> Vec<ExactRaw> {
    let threads = ctx.config.threads;
    if threads <= 1 {
        return ids
            .iter()
            .filter_map(|&cid| exact_score_one(ctx, engine, at_node, rejoin_node, now, cid))
            .collect();
    }
    ec_exec::parallel_map(
        threads,
        ids,
        |_| ctx.engines.checkout(),
        |e, _, &cid| exact_score_one(ctx, e, at_node, rejoin_node, now, cid),
    )
    .into_iter()
    .flatten()
    .collect()
}

/// Normalise `L` and `D` by the pool's environment maxima (§III-B),
/// score, sort, truncate to `k` and build the table.
fn table_from_exact(
    ctx: &QueryCtx<'_>,
    offset_m: f64,
    origin: GeoPoint,
    now: SimTime,
    raw: Vec<ExactRaw>,
) -> OfferingTable {
    let w = &ctx.config.weights;
    let max_detour = raw
        .iter()
        .map(|r| r.detour_kwh)
        .fold(0.0f64, f64::max)
        .min(ctx.norm.max_derouting_kwh)
        .max(f64::EPSILON);
    let max_clean = raw.iter().map(|r| r.clean_kw).fold(0.0f64, f64::max).max(f64::EPSILON);
    let mut scored: Vec<(TrueComponents, &ExactRaw)> = raw
        .iter()
        .map(|r| {
            (
                TrueComponents {
                    l: (r.clean_kw / max_clean).clamp(0.0, 1.0),
                    a: r.a,
                    d: (r.detour_kwh / max_detour).clamp(0.0, 1.0),
                },
                r,
            )
        })
        .collect();
    scored.sort_by(|a, b| {
        w.point_score(b.0.l, b.0.a, b.0.d)
            .partial_cmp(&w.point_score(a.0.l, a.0.a, a.0.d))
            .expect("finite scores")
            .then(a.1.charger.cmp(&b.1.charger))
    });
    scored.truncate(ctx.config.k);
    let entries = scored
        .into_iter()
        .map(|(c, r)| OfferingEntry {
            charger: r.charger,
            sc: Interval::point(w.point_score(c.l, c.a, c.d)),
            l: Interval::point(c.l),
            a: Interval::point(c.a),
            d: Interval::point(c.d),
            eta: r.eta,
            est_clean_kwh: KilowattHours((r.clean_kw * ctx.config.charge_window_h).max(0.0)),
            provenance: Provenance::FRESH,
        })
        .collect();
    OfferingTable { at_offset_m: offset_m, origin, generated_at: now, entries, adapted: false }
}

/// The exhaustive baseline: every charger, naive per-charger searches.
#[derive(Debug, Default)]
pub struct BruteForce {
    engine: SearchEngine,
}

impl BruteForce {
    /// A fresh instance.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl RankingMethod for BruteForce {
    fn name(&self) -> &'static str {
        "Brute-Force"
    }

    fn offering_table(
        &mut self,
        ctx: &QueryCtx<'_>,
        trip: &Trip,
        offset_m: f64,
        now: SimTime,
    ) -> Result<OfferingTable, EcError> {
        let pos = trip.position_at_offset(ctx.graph, offset_m);
        let node = trip.route.nearest_node_at(offset_m);
        let rejoin_offset = (offset_m + ctx.config.segment_km * 1_000.0).min(trip.length_m());
        let rejoin = trip.route.nearest_node_at(rejoin_offset);
        let ids: Vec<ChargerId> = ctx.fleet.iter().map(|c| c.id).collect();
        let raw = exact_score_all(ctx, &mut self.engine, node, rejoin, now, &ids);
        if raw.is_empty() {
            return Err(EcError::NoCandidates);
        }
        Ok(table_from_exact(ctx, offset_m, pos, now, raw))
    }
}

/// The quadtree-indexed baseline: Brute-Force scoring over the spatially
/// nearest `⌈quadtree_fraction · |B|⌉` stations.
#[derive(Debug, Default)]
pub struct IndexQuadtree {
    engine: SearchEngine,
}

impl IndexQuadtree {
    /// A fresh instance.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl RankingMethod for IndexQuadtree {
    fn name(&self) -> &'static str {
        "Index-Quadtree"
    }

    fn offering_table(
        &mut self,
        ctx: &QueryCtx<'_>,
        trip: &Trip,
        offset_m: f64,
        now: SimTime,
    ) -> Result<OfferingTable, EcError> {
        let pos = trip.position_at_offset(ctx.graph, offset_m);
        let node = trip.route.nearest_node_at(offset_m);
        let rejoin_offset = (offset_m + ctx.config.segment_km * 1_000.0).min(trip.length_m());
        let rejoin = trip.route.nearest_node_at(rejoin_offset);
        let pool = ((ctx.fleet.len() as f64 * ctx.config.quadtree_fraction).ceil() as usize)
            .clamp(ctx.config.k.min(ctx.fleet.len()), ctx.fleet.len().max(1));
        let ids: Vec<ChargerId> =
            ctx.fleet.knn(&pos, pool).into_iter().map(|(cid, _)| cid).collect();
        let raw = exact_score_all(ctx, &mut self.engine, node, rejoin, now, &ids);
        if raw.is_empty() {
            return Err(EcError::NoCandidates);
        }
        Ok(table_from_exact(ctx, offset_m, pos, now, raw))
    }
}

/// The objective-blind baseline: `k` random chargers inside radius `R`.
#[derive(Debug)]
pub struct RandomPick {
    rng: SplitMix64,
}

impl RandomPick {
    /// A random picker seeded for reproducibility.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { rng: SplitMix64::new(seed) }
    }
}

impl RankingMethod for RandomPick {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn offering_table(
        &mut self,
        ctx: &QueryCtx<'_>,
        trip: &Trip,
        offset_m: f64,
        now: SimTime,
    ) -> Result<OfferingTable, EcError> {
        let pos = trip.position_at_offset(ctx.graph, offset_m);
        let mut in_radius = ctx.fleet.within_radius(&pos, ctx.config.radius_km * 1_000.0);
        if in_radius.is_empty() {
            return Err(EcError::NoCandidates);
        }
        // Partial Fisher-Yates for k distinct picks.
        let k = ctx.config.k.min(in_radius.len());
        for i in 0..k {
            let j = i + self.rng.below((in_radius.len() - i) as u64) as usize;
            in_radius.swap(i, j);
        }
        let entries = in_radius[..k]
            .iter()
            .map(|&(cid, _)| OfferingEntry {
                charger: cid,
                // The objectives are deliberately not evaluated.
                sc: Interval::zero(),
                l: Interval::zero(),
                a: Interval::zero(),
                d: Interval::zero(),
                eta: now,
                est_clean_kwh: KilowattHours(0.0),
                provenance: Provenance::FRESH,
            })
            .collect();
        Ok(OfferingTable {
            at_offset_m: offset_m,
            origin: pos,
            generated_at: now,
            entries,
            adapted: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::EcoChargeConfig;
    use chargers::{synth_fleet, FleetParams};
    use eis::{InfoServer, SimProviders};
    use roadnet::{urban_grid, UrbanGridParams};
    use trajgen::{generate_trips, BrinkhoffParams};

    struct Fixture {
        graph: roadnet::RoadGraph,
        fleet: chargers::ChargerFleet,
        server: InfoServer,
        sims: SimProviders,
        trips: Vec<Trip>,
    }

    impl Fixture {
        fn new() -> Self {
            let graph = urban_grid(&UrbanGridParams { cols: 16, rows: 16, ..Default::default() });
            let fleet =
                synth_fleet(&graph, &FleetParams { count: 60, seed: 3, ..Default::default() });
            let sims = SimProviders::new(9);
            let server = InfoServer::from_sims(sims.clone());
            let trips = generate_trips(
                &graph,
                &BrinkhoffParams {
                    trips: 2,
                    min_trip_m: 8_000.0,
                    max_trip_m: 14_000.0,
                    ..Default::default()
                },
            );
            Self { graph, fleet, server, sims, trips }
        }

        fn ctx(&self) -> QueryCtx<'_> {
            QueryCtx::new(
                &self.graph,
                &self.fleet,
                &self.server,
                &self.sims,
                EcoChargeConfig::default(),
            )
        }
    }

    #[test]
    fn brute_force_matches_oracle_best_k() {
        let f = Fixture::new();
        let ctx = f.ctx();
        let trip = &f.trips[0];
        let mut bf = BruteForce::new();
        let table = bf.offering_table(&ctx, trip, 0.0, trip.depart).unwrap();
        let mut oracle = crate::oracle::Oracle::new(crate::score::Weights::awe());
        let node = trip.route.nearest_node_at(0.0);
        let rejoin = trip.route.nearest_node_at(4_000.0_f64.min(trip.length_m()));
        let (best, best_mean) = oracle.best_k(&ctx, node, rejoin, trip.depart, ctx.config.k);
        let got: std::collections::HashSet<_> = table.charger_ids().into_iter().collect();
        let want: std::collections::HashSet<_> = best.into_iter().collect();
        assert_eq!(got, want, "Brute-Force must find the oracle optimum");
        let mean =
            oracle.true_sc_of_set(&ctx, &table.charger_ids(), node, rejoin, trip.depart).unwrap();
        assert!((mean - best_mean).abs() < 1e-9, "BF defines the 100% line");
    }

    #[test]
    fn quadtree_is_subset_of_near_pool() {
        let f = Fixture::new();
        let ctx = f.ctx();
        let trip = &f.trips[0];
        let mut qt = IndexQuadtree::new();
        let table = qt.offering_table(&ctx, trip, 0.0, trip.depart).unwrap();
        assert_eq!(table.len(), ctx.config.k);
        let pos = trip.position_at_offset(&f.graph, 0.0);
        let pool = (((f.fleet.len() as f64 * ctx.config.quadtree_fraction).ceil()) as usize)
            .max(ctx.config.k);
        let near: std::collections::HashSet<ChargerId> =
            f.fleet.knn(&pos, pool).into_iter().map(|(c, _)| c).collect();
        for id in table.charger_ids() {
            assert!(near.contains(&id), "{id} outside the quadtree pool");
        }
    }

    #[test]
    fn random_entries_within_radius_and_distinct() {
        let f = Fixture::new();
        let ctx = f.ctx();
        let trip = &f.trips[1];
        let mut r = RandomPick::new(42);
        let table = r.offering_table(&ctx, trip, 0.0, trip.depart).unwrap();
        assert_eq!(table.len(), ctx.config.k);
        let ids = table.charger_ids();
        let uniq: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(uniq.len(), ids.len(), "duplicates in random table");
        let pos = trip.position_at_offset(&f.graph, 0.0);
        for id in &ids {
            assert!(pos.fast_dist_m(&f.fleet.get(*id).loc) <= ctx.config.radius_km * 1_000.0);
        }
    }

    #[test]
    fn random_is_seed_deterministic() {
        let f = Fixture::new();
        let ctx = f.ctx();
        let trip = &f.trips[0];
        let mut a = RandomPick::new(7);
        let mut b = RandomPick::new(7);
        assert_eq!(
            a.offering_table(&ctx, trip, 0.0, trip.depart).unwrap().charger_ids(),
            b.offering_table(&ctx, trip, 0.0, trip.depart).unwrap().charger_ids()
        );
    }

    #[test]
    fn parallel_baselines_bit_identical_to_sequential() {
        let f = Fixture::new();
        let trip = &f.trips[0];
        let seq_ctx = f.ctx();
        let par_ctx = QueryCtx::new(
            &f.graph,
            &f.fleet,
            &f.server,
            &f.sims,
            EcoChargeConfig { threads: 4, ..EcoChargeConfig::default() },
        );
        // Full-table PartialEq — every score, interval, and ETA must be
        // bit-identical, not just the charger ids.
        let seq_bf = BruteForce::new().offering_table(&seq_ctx, trip, 0.0, trip.depart).unwrap();
        let par_bf = BruteForce::new().offering_table(&par_ctx, trip, 0.0, trip.depart).unwrap();
        assert_eq!(par_bf, seq_bf);
        let seq_qt = IndexQuadtree::new().offering_table(&seq_ctx, trip, 0.0, trip.depart).unwrap();
        let par_qt = IndexQuadtree::new().offering_table(&par_ctx, trip, 0.0, trip.depart).unwrap();
        assert_eq!(par_qt, seq_qt);
    }

    #[test]
    fn method_names() {
        assert_eq!(BruteForce::new().name(), "Brute-Force");
        assert_eq!(IndexQuadtree::new().name(), "Index-Quadtree");
        assert_eq!(RandomPick::new(1).name(), "Random");
    }
}
