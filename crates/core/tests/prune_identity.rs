//! The load-bearing property of the lazy filter–refine engine
//! (DESIGN.md §4g) and of the adaptive selection layer (§4j): every
//! Offering Table — cold solves and cache-adapted solves alike — is
//! **bit-identical** across pruning modes (auto/on/off), detour backends
//! (auto/dijkstra/ch) and thread counts. Only the number of exact
//! availability evaluations and the latency may differ.

use chargers::{synth_fleet, FleetParams};
use ecocharge_core::{
    EcoCharge, EcoChargeConfig, OfferingTable, PruningMode, QueryCtx, RankingMethod,
};
use eis::{InfoServer, SimProviders};
use roadnet::{urban_grid, DetourBackend, UrbanGridParams};
use trajgen::{generate_trips, BrinkhoffParams, Trip};

struct Env {
    graph: roadnet::RoadGraph,
    fleet: chargers::ChargerFleet,
    sims: SimProviders,
    trips: Vec<Trip>,
}

impl Env {
    fn new(fleet_seed: u64) -> Self {
        let graph = urban_grid(&UrbanGridParams::default());
        let fleet =
            synth_fleet(&graph, &FleetParams { count: 80, seed: fleet_seed, ..Default::default() });
        let sims = SimProviders::new(9);
        let trips = generate_trips(
            &graph,
            &BrinkhoffParams {
                trips: 2,
                min_trip_m: 15_000.0,
                max_trip_m: 30_000.0,
                ..Default::default()
            },
        );
        Self { graph, fleet, sims, trips }
    }
}

/// One engine lifetime over both trips: a cold solve, an in-range
/// adaptation, a beyond-`Q` re-solve, and a second adaptation over the
/// (possibly shadow-bearing) re-solved cache.
fn tables(
    env: &Env,
    pruning: PruningMode,
    threads: usize,
    backend: DetourBackend,
) -> Vec<OfferingTable> {
    let server = InfoServer::from_sims(env.sims.clone());
    let config =
        EcoChargeConfig { pruning, threads, detour_backend: backend, ..Default::default() };
    let ctx = QueryCtx::new(&env.graph, &env.fleet, &server, &env.sims, config);
    let mut m = EcoCharge::new();
    let mut out = Vec::new();
    for trip in &env.trips {
        m.reset_trip();
        for offset_m in [0.0f64, 3_000.0, 12_000.0, 14_000.0] {
            let offset_m = offset_m.min(trip.length_m());
            let now = trip.eta_at_offset(&env.graph, offset_m);
            out.push(m.offering_table(&ctx, trip, offset_m, now).expect("table"));
        }
    }
    out
}

#[test]
fn tables_bit_identical_across_backends_pruning_modes_and_threads() {
    let env = Env::new(3);
    let baseline = tables(&env, PruningMode::Off, 1, DetourBackend::Dijkstra);
    for backend in [DetourBackend::Auto, DetourBackend::Dijkstra, DetourBackend::Ch] {
        for pruning in PruningMode::ALL {
            for threads in [1, 4, 8] {
                let run = tables(&env, pruning, threads, backend);
                // PartialEq over every f64 field: bit-identical, not
                // "close".
                assert_eq!(
                    run, baseline,
                    "backend={backend:?} pruning={pruning:?} threads={threads}"
                );
            }
        }
    }
}

#[test]
fn pruned_tables_bit_identical_across_fleet_seeds() {
    // A second fleet seed on the corners of the matrix (the full cross
    // product above already covers one seed).
    let env = Env::new(11);
    let baseline = tables(&env, PruningMode::Off, 1, DetourBackend::Dijkstra);
    for backend in [DetourBackend::Auto, DetourBackend::Dijkstra, DetourBackend::Ch] {
        for threads in [1, 4] {
            let pruned = tables(&env, PruningMode::On, threads, backend);
            assert_eq!(pruned, baseline, "backend={backend:?} threads={threads}");
        }
    }
}

#[test]
fn pruning_skips_exact_evaluations() {
    let env = Env::new(3);
    let server = InfoServer::from_sims(env.sims.clone());
    let run = |pruning: PruningMode| {
        let config = EcoChargeConfig { pruning, ..Default::default() };
        let ctx = QueryCtx::new(&env.graph, &env.fleet, &server, &env.sims, config);
        let mut m = EcoCharge::new();
        for trip in &env.trips {
            m.reset_trip();
            for offset_m in [0.0, 3_000.0] {
                let now = trip.eta_at_offset(&env.graph, offset_m);
                m.offering_table(&ctx, trip, offset_m, now).expect("table");
            }
        }
        m.prune_stats()
    };
    let on = run(PruningMode::On);
    let off = run(PruningMode::Off);
    assert_eq!(on.pool, off.pool, "pruning must not change the candidate pool");
    assert_eq!(off.exact_evals, off.pool, "unpruned path evaluates the whole pool");
    assert!(
        on.exact_evals < off.exact_evals,
        "pruned path must skip evaluations: {} vs {}",
        on.exact_evals,
        off.exact_evals
    );
    assert!(on.pruned > 0);
    // Each pool member is materialised at most once per cold solve, so
    // even counting adapted-query materialisations the pruned path never
    // exceeds the eager evaluation count.
    assert!(on.exact_evals <= on.pool, "{} evals for a pool of {}", on.exact_evals, on.pool);
}

#[test]
fn auto_pruning_follows_the_calibrated_threshold() {
    use ecocharge_core::PruneCostModel;
    let env = Env::new(3);
    let server = InfoServer::from_sims(env.sims.clone());
    let config = EcoChargeConfig::default(); // pruning: Auto
    assert_eq!(config.pruning, PruningMode::Auto);
    let ctx = QueryCtx::new(&env.graph, &env.fleet, &server, &env.sims, config);
    let mut m = EcoCharge::new();
    let trip = &env.trips[0];
    m.offering_table(&ctx, trip, 0.0, trip.eta_at_offset(&env.graph, 0.0)).expect("table");
    let stats = m.prune_stats();
    let threshold = PruneCostModel::calibrated().pool_threshold(config.k);
    if env.fleet.len() >= threshold {
        assert_eq!(stats.pool, stats.exact_evals + stats.pruned, "lazy path accounting");
    } else {
        // Below the break-even pool size Auto takes the eager path:
        // every pool member is evaluated exactly, nothing is pruned.
        assert_eq!(stats.pruned, 0, "Auto must not prune below the threshold");
        assert_eq!(stats.exact_evals, stats.pool);
    }
}
