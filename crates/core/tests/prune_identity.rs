//! The load-bearing property of the lazy filter–refine engine
//! (DESIGN.md §4g): with pruning on, every Offering Table — cold solves
//! and cache-adapted solves alike — is **bit-identical** to the unpruned
//! path's, across fleet seeds, thread counts and detour backends. Only
//! the number of exact availability evaluations may differ.

use chargers::{synth_fleet, FleetParams};
use ecocharge_core::{EcoCharge, EcoChargeConfig, OfferingTable, QueryCtx, RankingMethod};
use eis::{InfoServer, SimProviders};
use roadnet::{urban_grid, DetourBackend, UrbanGridParams};
use trajgen::{generate_trips, BrinkhoffParams, Trip};

struct Env {
    graph: roadnet::RoadGraph,
    fleet: chargers::ChargerFleet,
    sims: SimProviders,
    trips: Vec<Trip>,
}

impl Env {
    fn new(fleet_seed: u64) -> Self {
        let graph = urban_grid(&UrbanGridParams::default());
        let fleet =
            synth_fleet(&graph, &FleetParams { count: 80, seed: fleet_seed, ..Default::default() });
        let sims = SimProviders::new(9);
        let trips = generate_trips(
            &graph,
            &BrinkhoffParams {
                trips: 2,
                min_trip_m: 15_000.0,
                max_trip_m: 30_000.0,
                ..Default::default()
            },
        );
        Self { graph, fleet, sims, trips }
    }
}

/// One engine lifetime over both trips: a cold solve, an in-range
/// adaptation, a beyond-`Q` re-solve, and a second adaptation over the
/// (possibly shadow-bearing) re-solved cache.
fn tables(env: &Env, pruning: bool, threads: usize, backend: DetourBackend) -> Vec<OfferingTable> {
    let server = InfoServer::from_sims(env.sims.clone());
    let config =
        EcoChargeConfig { pruning, threads, detour_backend: backend, ..Default::default() };
    let ctx = QueryCtx::new(&env.graph, &env.fleet, &server, &env.sims, config);
    let mut m = EcoCharge::new();
    let mut out = Vec::new();
    for trip in &env.trips {
        m.reset_trip();
        for offset_m in [0.0f64, 3_000.0, 12_000.0, 14_000.0] {
            let offset_m = offset_m.min(trip.length_m());
            let now = trip.eta_at_offset(&env.graph, offset_m);
            out.push(m.offering_table(&ctx, trip, offset_m, now).expect("table"));
        }
    }
    out
}

#[test]
fn pruned_tables_bit_identical_across_seeds_threads_backends() {
    for fleet_seed in [3, 11] {
        let env = Env::new(fleet_seed);
        let baseline = tables(&env, false, 1, DetourBackend::Dijkstra);
        for backend in [DetourBackend::Dijkstra, DetourBackend::Ch] {
            for threads in [1, 2, 4] {
                let pruned = tables(&env, true, threads, backend);
                // PartialEq over every f64 field: bit-identical, not
                // "close".
                assert_eq!(
                    pruned, baseline,
                    "seed={fleet_seed} backend={backend:?} threads={threads}"
                );
            }
        }
    }
}

#[test]
fn pruning_skips_exact_evaluations() {
    let env = Env::new(3);
    let server = InfoServer::from_sims(env.sims.clone());
    let run = |pruning: bool| {
        let config = EcoChargeConfig { pruning, ..Default::default() };
        let ctx = QueryCtx::new(&env.graph, &env.fleet, &server, &env.sims, config);
        let mut m = EcoCharge::new();
        for trip in &env.trips {
            m.reset_trip();
            for offset_m in [0.0, 3_000.0] {
                let now = trip.eta_at_offset(&env.graph, offset_m);
                m.offering_table(&ctx, trip, offset_m, now).expect("table");
            }
        }
        m.prune_stats()
    };
    let on = run(true);
    let off = run(false);
    assert_eq!(on.pool, off.pool, "pruning must not change the candidate pool");
    assert_eq!(off.exact_evals, off.pool, "unpruned path evaluates the whole pool");
    assert!(
        on.exact_evals < off.exact_evals,
        "pruned path must skip evaluations: {} vs {}",
        on.exact_evals,
        off.exact_evals
    );
    assert!(on.pruned > 0);
    // Each pool member is materialised at most once per cold solve, so
    // even counting adapted-query materialisations the pruned path never
    // exceeds the eager evaluation count.
    assert!(on.exact_evals <= on.pool, "{} evals for a pool of {}", on.exact_evals, on.pool);
}
