//! Property tests for the scoring and refinement machinery.

use ec_types::Interval;
use ecocharge_core::score::refine_topk;
use ecocharge_core::Weights;
use proptest::prelude::*;

fn unit_interval() -> impl Strategy<Value = Interval> {
    (0.0..1.0f64, 0.0..1.0f64).prop_map(|(a, b)| Interval::new(a, b))
}

proptest! {
    /// The refined top-k is a subset of the candidates, has the right
    /// size, and contains no duplicates.
    #[test]
    fn refine_topk_structure(
        scores in prop::collection::vec(unit_interval(), 0..40),
        k in 0usize..12,
    ) {
        let scored: Vec<(usize, Interval)> =
            scores.iter().copied().enumerate().map(|(i, s)| (i + 100, s)).collect();
        let top = refine_topk(&scored, k);
        prop_assert_eq!(top.len(), k.min(scored.len()));
        let ids: std::collections::HashSet<_> = top.iter().collect();
        prop_assert_eq!(ids.len(), top.len(), "duplicates in top-k");
        for id in &top {
            prop_assert!(scored.iter().any(|(i, _)| i == id), "phantom candidate {id}");
        }
    }

    /// Refinement output is sorted by midpoint, best first.
    #[test]
    fn refine_topk_sorted_by_midpoint(
        scores in prop::collection::vec(unit_interval(), 1..30),
        k in 1usize..10,
    ) {
        let scored: Vec<(usize, Interval)> = scores.iter().copied().enumerate().collect();
        let top = refine_topk(&scored, k);
        for w in top.windows(2) {
            let a = scored[w[0]].1.mid();
            let b = scored[w[1]].1.mid();
            prop_assert!(a >= b - 1e-12, "order violated: {a} before {b}");
        }
    }

    /// A candidate that necessarily dominates everything must be ranked
    /// first.
    #[test]
    fn dominant_candidate_wins(
        scores in prop::collection::vec(
            (0.0..0.4f64, 0.0..0.4f64).prop_map(|(a, b)| Interval::new(a, b)),
            1..20,
        ),
        k in 1usize..6,
    ) {
        let mut scored: Vec<(usize, Interval)> = scores.iter().copied().enumerate().collect();
        scored.push((999, Interval::new(0.8, 0.9)));
        let top = refine_topk(&scored, k);
        prop_assert_eq!(top[0], 999);
    }

    /// Refinement is deterministic.
    #[test]
    fn refine_topk_deterministic(
        scores in prop::collection::vec(unit_interval(), 0..30),
        k in 0usize..8,
    ) {
        let scored: Vec<(usize, Interval)> = scores.iter().copied().enumerate().collect();
        prop_assert_eq!(refine_topk(&scored, k), refine_topk(&scored, k));
    }

    /// The weighted interval score is monotone in each component: better
    /// L, better A, or smaller D can only improve both endpoints.
    #[test]
    fn interval_score_monotone(
        l in unit_interval(), a in unit_interval(), d in unit_interval(),
        bump in 0.0..0.5f64,
        w1 in 0.01..1.0f64, w2 in 0.01..1.0f64, w3 in 0.01..1.0f64,
    ) {
        let w = Weights::new(w1, w2, w3);
        let base = w.interval_score(l, a, d);
        let better_l = w.interval_score(
            Interval::new((l.lo() + bump).min(1.0), (l.hi() + bump).min(1.0)), a, d);
        prop_assert!(better_l.lo() >= base.lo() - 1e-12);
        prop_assert!(better_l.hi() >= base.hi() - 1e-12);
        let better_a = w.interval_score(
            l, Interval::new((a.lo() + bump).min(1.0), (a.hi() + bump).min(1.0)), d);
        prop_assert!(better_a.lo() >= base.lo() - 1e-12);
        let smaller_d = w.interval_score(
            l, a, Interval::new((d.lo() - bump).max(0.0), (d.hi() - bump).max(0.0)));
        prop_assert!(smaller_d.lo() >= base.lo() - 1e-12);
        prop_assert!(smaller_d.hi() >= base.hi() - 1e-12);
    }

    /// Point scores live in [0,1] for unit-range components, whatever the
    /// (normalised) weights.
    #[test]
    fn point_score_bounded(
        l in 0.0..1.0f64, a in 0.0..1.0f64, d in 0.0..1.0f64,
        w1 in 0.0..1.0f64, w2 in 0.0..1.0f64, w3 in 0.01..1.0f64,
    ) {
        let w = Weights::new(w1, w2, w3);
        let s = w.point_score(l, a, d);
        prop_assert!((0.0..=1.0).contains(&s), "score {s}");
    }

    /// Interval scores with point inputs collapse to the point score.
    #[test]
    fn interval_score_generalises_point_score(
        l in 0.0..1.0f64, a in 0.0..1.0f64, d in 0.0..1.0f64,
    ) {
        let w = Weights::awe();
        let i = w.interval_score(Interval::point(l), Interval::point(a), Interval::point(d));
        prop_assert!(i.is_point());
        prop_assert!((i.lo() - w.point_score(l, a, d)).abs() < 1e-12);
    }
}
