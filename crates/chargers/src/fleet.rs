//! A spatially-indexed set of charging stations.

use crate::charger::Charger;
use ec_types::{ChargerId, EcError, GeoPoint};
use spatial_index::QuadTree;

/// The charger dataset `B`, indexed by a quadtree for the radius and kNN
/// lookups every access path (Brute-Force aside) relies on.
#[derive(Debug)]
pub struct ChargerFleet {
    chargers: Vec<Charger>,
    tree: QuadTree<ChargerId>,
}

impl ChargerFleet {
    /// Build a fleet, reassigning dense ids in input order.
    #[must_use]
    pub fn new(mut chargers: Vec<Charger>) -> Self {
        for (i, c) in chargers.iter_mut().enumerate() {
            c.id = ChargerId::from_index(i);
        }
        let tree = QuadTree::bulk(chargers.iter().map(|c| (c.loc, c.id)).collect());
        Self { chargers, tree }
    }

    /// Number of stations `|B|`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.chargers.len()
    }

    /// True when the fleet has no stations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.chargers.is_empty()
    }

    /// Station by id.
    ///
    /// # Panics
    /// Panics on an out-of-range id.
    #[must_use]
    pub fn get(&self, id: ChargerId) -> &Charger {
        &self.chargers[id.index()]
    }

    /// Checked station lookup.
    pub fn try_get(&self, id: ChargerId) -> Result<&Charger, EcError> {
        self.chargers.get(id.index()).ok_or(EcError::UnknownCharger(id.0))
    }

    /// All stations, id order.
    #[must_use]
    pub fn all(&self) -> &[Charger] {
        &self.chargers
    }

    /// Iterate over all stations.
    pub fn iter(&self) -> impl Iterator<Item = &Charger> {
        self.chargers.iter()
    }

    /// Stations within `radius_m` of `p`, nearest first — the filtering
    /// phase's radius-`R` candidate pull.
    #[must_use]
    pub fn within_radius(&self, p: &GeoPoint, radius_m: f64) -> Vec<(ChargerId, f64)> {
        self.tree.range(p, radius_m).into_iter().map(|h| (*h.item, h.dist_m)).collect()
    }

    /// The `k` stations nearest to `p`.
    #[must_use]
    pub fn knn(&self, p: &GeoPoint, k: usize) -> Vec<(ChargerId, f64)> {
        self.tree.knn(p, k).into_iter().map(|h| (*h.item, h.dist_m)).collect()
    }

    /// Stream stations in ascending distance from `p`, lazily — the
    /// ordered candidate source of the bound-driven filtering phase.
    /// Yields exactly the sequence [`ChargerFleet::within_radius`] would
    /// return (same distances, same tie order) with the radius acting as
    /// a cap, so a consumer may stop at any distance cutoff and still
    /// hold a true prefix of the radius pull.
    pub fn nearest_iter<'a>(&'a self, p: &GeoPoint) -> impl Iterator<Item = (ChargerId, f64)> + 'a {
        self.tree.knn_iter(p).map(|h| (*h.item, h.dist_m))
    }

    /// The largest panel rating in the fleet, kW — the normalisation
    /// divisor for `L` ("dividing them with the environment's maximum
    /// charging level value", §III-B). Zero for an empty fleet.
    #[must_use]
    pub fn max_panel_kw(&self) -> f64 {
        self.chargers.iter().map(|c| c.panel.value()).fold(0.0, f64::max)
    }

    /// The largest deliverable clean-power level in the fleet, kW
    /// (`min(rate, panel + wind)` per station, maximised over stations).
    #[must_use]
    pub fn max_clean_power_kw(&self) -> f64 {
        self.chargers
            .iter()
            .map(|c| c.kind.rate().value().min(c.panel.value() + c.wind.value()))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::charger::ChargerKind;
    use ec_models::SiteArchetype;
    use ec_types::{Kilowatts, NodeId};

    fn fleet() -> ChargerFleet {
        let origin = GeoPoint::new(8.0, 53.0);
        let chargers = (0..10u32)
            .map(|i| Charger {
                id: ChargerId(999), // overwritten by the fleet
                loc: origin.offset_m(f64::from(i) * 2_000.0, 500.0),
                node: NodeId(i),
                kind: ChargerKind::ALL[(i % 4) as usize],
                panel: Kilowatts(10.0 + f64::from(i) * 5.0),
                wind: Kilowatts(0.0),
                archetype: SiteArchetype::ALL[(i % 5) as usize],
            })
            .collect();
        ChargerFleet::new(chargers)
    }

    #[test]
    fn ids_are_densified() {
        let f = fleet();
        for (i, c) in f.iter().enumerate() {
            assert_eq!(c.id.index(), i);
        }
        assert_eq!(f.get(ChargerId(4)).id, ChargerId(4));
    }

    #[test]
    fn try_get_bounds() {
        let f = fleet();
        assert!(f.try_get(ChargerId(9)).is_ok());
        assert!(matches!(f.try_get(ChargerId(10)), Err(EcError::UnknownCharger(10))));
    }

    #[test]
    fn within_radius_sorted_and_filtered() {
        let f = fleet();
        let q = GeoPoint::new(8.0, 53.0);
        let hits = f.within_radius(&q, 4_500.0);
        assert_eq!(hits.len(), 3); // at ~0.5, ~2.06, ~4.03 km
        assert!(hits.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn knn_returns_k() {
        let f = fleet();
        let q = GeoPoint::new(8.0, 53.0);
        let hits = f.knn(&q, 4);
        assert_eq!(hits.len(), 4);
        assert_eq!(hits[0].0, ChargerId(0));
    }

    #[test]
    fn nearest_iter_prefixes_match_within_radius() {
        let f = fleet();
        let q = GeoPoint::new(8.0, 53.0).offset_m(7_300.0, -200.0);
        for radius_m in [0.0, 2_500.0, 9_000.0, 50_000.0] {
            let want = f.within_radius(&q, radius_m);
            let got: Vec<(ChargerId, f64)> =
                f.nearest_iter(&q).take_while(|&(_, d)| d <= radius_m).collect();
            assert_eq!(got, want, "radius {radius_m}");
        }
        // Full drain covers the whole fleet in ascending order.
        let all: Vec<(ChargerId, f64)> = f.nearest_iter(&q).collect();
        assert_eq!(all.len(), f.len());
        assert!(all.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn max_values() {
        let f = fleet();
        assert_eq!(f.max_panel_kw(), 55.0);
        // Station 9: Ac22 rate=22, panel=55 → 22; station 7: Dc150, panel 45 → 45.
        assert_eq!(f.max_clean_power_kw(), 45.0);
    }

    #[test]
    fn empty_fleet() {
        let f = ChargerFleet::new(Vec::new());
        assert!(f.is_empty());
        assert_eq!(f.max_panel_kw(), 0.0);
        assert!(f.knn(&GeoPoint::new(0.0, 0.0), 3).is_empty());
    }
}
