//! # `chargers` — the EV charger dataset `B`
//!
//! The paper draws its charger set from PlugShare plus CDGS production
//! records: "more than 1,000 chargers along with various information about
//! their charging rates, timestamps, and solar generation in a 15-minute
//! time-interval" (§V-A). This crate models a charging station
//! ([`Charger`]) with its AC/DC rate, attached solar capacity and site
//! archetype; groups stations into a spatially-indexed [`ChargerFleet`];
//! and synthesises PlugShare-scale fleets on any road network
//! ([`synth_fleet`]).

pub mod charger;
pub mod fleet;
pub mod synth;

pub use charger::{Charger, ChargerKind};
pub use fleet::ChargerFleet;
pub use synth::{synth_fleet, FleetParams};
