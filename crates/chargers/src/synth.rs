//! PlugShare-style fleet synthesis.
//!
//! Places charging stations on a road network with realistic siting:
//! stations sit at network nodes; nodes on motorways host
//! [`SiteArchetype::Highway`] plazas, well-connected nodes near the region
//! centre host downtown garages, and the rest split between malls,
//! workplaces and suburban street chargers. Rates follow the public-
//! charging mix (AC-heavy with a DC fast-charge minority); attached solar
//! capacity scales with the charger rate.

use crate::charger::{Charger, ChargerKind};
use crate::fleet::ChargerFleet;
use ec_models::SiteArchetype;
use ec_types::{ChargerId, Kilowatts, NodeId, SplitMix64};
use roadnet::{RoadClass, RoadGraph};

/// Parameters for [`synth_fleet`].
#[derive(Debug, Clone)]
pub struct FleetParams {
    /// Number of stations to place.
    pub count: usize,
    /// Master seed.
    pub seed: u64,
    /// Fraction of stations backed by net-metered wind instead of local
    /// solar (the paper's §II-A remote-farm case). Zero — the default and
    /// the evaluation setting — keeps the fleet purely solar.
    pub wind_fraction: f64,
}

impl Default for FleetParams {
    fn default() -> Self {
        Self { count: 1_000, seed: 1, wind_fraction: 0.0 }
    }
}

/// Synthesise a charger fleet on `graph`. Deterministic in
/// `params.seed`; stations never share a node.
///
/// # Panics
/// Panics when `count` is zero or exceeds the number of graph nodes.
#[must_use]
pub fn synth_fleet(graph: &RoadGraph, params: &FleetParams) -> ChargerFleet {
    assert!(params.count > 0, "fleet must have at least one charger");
    assert!(
        params.count <= graph.num_nodes(),
        "cannot place {} chargers on {} nodes",
        params.count,
        graph.num_nodes()
    );
    let mut rng = SplitMix64::new(ec_types::rng::subseed(params.seed, 2));
    let center = graph.bounds().center();
    let half_diag = graph.bounds().min.fast_dist_m(&graph.bounds().max).max(1.0) / 2.0;

    // Sample distinct nodes.
    let mut taken = std::collections::HashSet::with_capacity(params.count);
    let mut nodes = Vec::with_capacity(params.count);
    while nodes.len() < params.count {
        let v = NodeId(u32::try_from(rng.below(graph.num_nodes() as u64)).expect("fits u32"));
        if taken.insert(v) {
            nodes.push(v);
        }
    }

    let chargers = nodes
        .into_iter()
        .map(|node| {
            let loc = graph.point(node);
            let on_motorway =
                graph.out_edges(node).any(|(e, _)| graph.edge_class(e) == RoadClass::Motorway);
            let centrality = 1.0 - (loc.fast_dist_m(&center) / half_diag).min(1.0);
            let archetype = if on_motorway {
                SiteArchetype::Highway
            } else if centrality > 0.7 && rng.next_f64() < 0.6 {
                SiteArchetype::Downtown
            } else {
                match rng.below(3) {
                    0 => SiteArchetype::Mall,
                    1 => SiteArchetype::Workplace,
                    _ => SiteArchetype::Suburban,
                }
            };
            // Public-charging rate mix: highway sites skew DC.
            let kind = if archetype == SiteArchetype::Highway {
                if rng.next_f64() < 0.6 {
                    ChargerKind::Dc150
                } else {
                    ChargerKind::Dc50
                }
            } else {
                let r = rng.next_f64();
                if r < 0.45 {
                    ChargerKind::Ac11
                } else if r < 0.8 {
                    ChargerKind::Ac22
                } else if r < 0.95 {
                    ChargerKind::Dc50
                } else {
                    ChargerKind::Dc150
                }
            };
            // Carport / roof solar sized 0.8–2.5× the charger rate; a
            // wind-backed station swaps its solar for net-metered wind
            // capacity at the same scale.
            let capacity = Kilowatts(kind.rate().value() * rng.range_f64(0.8, 2.5));
            let (panel, wind) = if rng.next_f64() < params.wind_fraction {
                (Kilowatts(0.0), capacity)
            } else {
                (capacity, Kilowatts(0.0))
            };
            Charger { id: ChargerId(0), loc, node, kind, panel, wind, archetype }
        })
        .collect();
    ChargerFleet::new(chargers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::{metro_regions, urban_grid, MetroRegionsParams, UrbanGridParams};

    fn grid() -> RoadGraph {
        urban_grid(&UrbanGridParams::default())
    }

    #[test]
    fn places_requested_count() {
        let g = grid();
        let f = synth_fleet(&g, &FleetParams { count: 300, seed: 7, ..Default::default() });
        assert_eq!(f.len(), 300);
    }

    #[test]
    fn nodes_are_distinct_and_valid() {
        let g = grid();
        let f = synth_fleet(&g, &FleetParams { count: 200, seed: 7, ..Default::default() });
        let mut seen = std::collections::HashSet::new();
        for c in f.iter() {
            assert!(c.node.index() < g.num_nodes());
            assert!(seen.insert(c.node), "duplicate node {:?}", c.node);
            assert_eq!(c.loc, g.point(c.node));
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let g = grid();
        let a = synth_fleet(&g, &FleetParams { count: 100, seed: 3, ..Default::default() });
        let b = synth_fleet(&g, &FleetParams { count: 100, seed: 3, ..Default::default() });
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x, y);
        }
        let c = synth_fleet(&g, &FleetParams { count: 100, seed: 4, ..Default::default() });
        assert!(a.iter().zip(c.iter()).any(|(x, y)| x != y));
    }

    #[test]
    fn res_capacity_scales_with_rate() {
        let g = grid();
        let f = synth_fleet(&g, &FleetParams { count: 150, seed: 1, ..Default::default() });
        for c in f.iter() {
            let ratio = (c.panel.value() + c.wind.value()) / c.kind.rate().value();
            assert!((0.8..=2.5).contains(&ratio), "RES/rate ratio {ratio}");
        }
    }

    #[test]
    fn wind_fraction_mixes_the_fleet() {
        let g = grid();
        let f = synth_fleet(&g, &FleetParams { count: 300, seed: 1, wind_fraction: 0.3 });
        let windy = f.iter().filter(|c| c.has_wind()).count();
        assert!((50..=130).contains(&windy), "expected ~30% wind stations, got {windy}/300");
        for c in f.iter() {
            // A station is solar- or wind-backed, never both in the synth.
            assert!(c.panel.value() == 0.0 || c.wind.value() == 0.0);
        }
        // Default remains purely solar.
        let solar = synth_fleet(&g, &FleetParams { count: 100, seed: 1, ..Default::default() });
        assert!(solar.iter().all(|c| !c.has_wind()));
    }

    #[test]
    fn motorway_nodes_become_highway_plazas() {
        let g = metro_regions(&MetroRegionsParams { cities: 3, ..MetroRegionsParams::default() });
        let f = synth_fleet(&g, &FleetParams { count: 400, seed: 5, ..Default::default() });
        let highway_count = f.iter().filter(|c| c.archetype == SiteArchetype::Highway).count();
        assert!(highway_count > 0, "metro network must yield highway plazas");
        for c in f.iter().filter(|c| c.archetype == SiteArchetype::Highway) {
            assert!(matches!(c.kind, ChargerKind::Dc50 | ChargerKind::Dc150));
        }
    }

    #[test]
    fn archetype_diversity() {
        let g = grid();
        let f = synth_fleet(&g, &FleetParams { count: 500, seed: 2, ..Default::default() });
        let kinds: std::collections::HashSet<_> = f.iter().map(|c| c.archetype).collect();
        assert!(kinds.len() >= 3, "only {kinds:?}");
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_count_panics() {
        let g = grid();
        let _ = synth_fleet(&g, &FleetParams { count: 0, seed: 1, ..Default::default() });
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn overfull_panics() {
        let g = grid();
        let _ = synth_fleet(
            &g,
            &FleetParams { count: g.num_nodes() + 1, seed: 1, ..Default::default() },
        );
    }
}
