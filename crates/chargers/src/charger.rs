//! A single charging station `b ∈ B`.

use ec_models::{SiteArchetype, WeatherSim};
use ec_types::{ChargerId, GeoPoint, Interval, KilowattHours, Kilowatts, NodeId, SimTime};
use serde::{Deserialize, Serialize};

/// Connector/power class of a charging point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChargerKind {
    /// 11 kW AC wallbox (the example scenario's "11kW AC charger car").
    Ac11,
    /// 22 kW AC.
    Ac22,
    /// 50 kW DC fast charger.
    Dc50,
    /// 150 kW DC high-power charger.
    Dc150,
}

impl ChargerKind {
    /// All kinds, slowest first.
    pub const ALL: [ChargerKind; 4] = [Self::Ac11, Self::Ac22, Self::Dc50, Self::Dc150];

    /// Maximum delivery rate.
    #[must_use]
    pub const fn rate(self) -> Kilowatts {
        match self {
            Self::Ac11 => Kilowatts(11.0),
            Self::Ac22 => Kilowatts(22.0),
            Self::Dc50 => Kilowatts(50.0),
            Self::Dc150 => Kilowatts(150.0),
        }
    }
}

/// One public charging station linked to a renewable source (locally
/// attached panels or net-metered from a nearby farm — §II-A).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Charger {
    /// Dense fleet index.
    pub id: ChargerId,
    /// Geographic position.
    pub loc: GeoPoint,
    /// Nearest road-network node (where derouting searches land).
    pub node: NodeId,
    /// Power class.
    pub kind: ChargerKind,
    /// Nameplate rating of the attached solar capacity.
    pub panel: Kilowatts,
    /// Nameplate rating of net-metered wind capacity (zero for the
    /// common solar-carport station; §II-A allows clean energy
    /// "virtually net-metered... from a remote renewable energy
    /// production farm").
    pub wind: Kilowatts,
    /// What kind of site the charger sits at (drives its busy timetable).
    pub archetype: SiteArchetype,
}

impl Charger {
    /// The stable per-charger seed used by all stochastic models.
    #[must_use]
    pub fn entity_seed(&self) -> u64 {
        // Mix the id so consecutive chargers decorrelate.
        ec_types::rng::mix(0xC4A6_0E55, u64::from(self.id.0))
    }

    /// **Ground truth**: clean power deliverable right now — the panel
    /// output capped by the charger's own rate ("we do not consider energy
    /// imported from the grid, but only solar excess produced", §III-B).
    /// Solar-only; for the wind/mixed stations use
    /// [`clean_power_from_fractions`](Self::clean_power_from_fractions).
    #[must_use]
    pub fn actual_clean_power(&self, weather: &WeatherSim, t: SimTime) -> Kilowatts {
        let produced = self.panel.value() * weather.actual_sun_fraction(&self.loc, t);
        Kilowatts(produced.min(self.kind.rate().value()))
    }

    /// Clean power from already-fetched production fractions: solar
    /// fraction × panel + wind capacity factor × wind rating, capped by
    /// the charger's delivery rate. The pure kernel the scoring pipeline
    /// applies to both forecast endpoints and ground truth.
    #[must_use]
    pub fn clean_power_from_fractions(&self, sun_frac: f64, wind_cf: f64) -> Kilowatts {
        let produced = self.panel.value() * sun_frac.clamp(0.0, 1.0)
            + self.wind.value() * wind_cf.clamp(0.0, 1.0);
        Kilowatts(produced.min(self.kind.rate().value()))
    }

    /// True when any wind capacity is attached.
    #[must_use]
    pub fn has_wind(&self) -> bool {
        self.wind.value() > 0.0
    }

    /// **Ground truth**: clean energy deliverable over a charging window
    /// starting at `eta` and lasting `window_hours` (coarse: assumes the
    /// sun fraction at `eta` holds for the window; for exact integration
    /// use a recorded [`ec_models::ProductionSeries`]).
    #[must_use]
    pub fn actual_clean_energy(
        &self,
        weather: &WeatherSim,
        eta: SimTime,
        window_hours: f64,
    ) -> KilowattHours {
        self.actual_clean_power(weather, eta).over_hours(window_hours.max(0.0))
    }

    /// **Forecast**: the interval of clean power available at `eta`, as
    /// estimated at `now` — the raw material for `L_min`/`L_max`
    /// (Algorithm 1, lines 5–6). Units: kW, in `[0, rate]`.
    #[must_use]
    pub fn forecast_clean_power(
        &self,
        weather: &WeatherSim,
        now: SimTime,
        eta: SimTime,
    ) -> Interval {
        let frac = weather.forecast_sun_fraction(&self.loc, now, eta);
        let rate = self.kind.rate().value();
        Interval::new(
            (frac.lo() * self.panel.value()).min(rate),
            (frac.hi() * self.panel.value()).min(rate),
        )
    }

    /// Record this station's CDGS-style 15-minute production series for
    /// `week` — the dataset shape the paper's §V-A charger data ships in.
    #[must_use]
    pub fn record_production(
        &self,
        weather: &WeatherSim,
        week: u64,
    ) -> ec_models::ProductionSeries {
        ec_models::ProductionSeries::record(weather, &self.loc, self.panel, week)
    }

    /// **Ground truth, exact**: clean energy deliverable over
    /// `[eta, eta + window_hours)` by *integrating* the 15-minute
    /// production series (sun moves during a long idle window; the coarse
    /// [`actual_clean_energy`](Self::actual_clean_energy) freezes it at
    /// arrival). Rate-capped per slot.
    #[must_use]
    pub fn exact_clean_energy(
        &self,
        series: &ec_models::ProductionSeries,
        eta: SimTime,
        window_hours: f64,
    ) -> KilowattHours {
        if window_hours <= 0.0 {
            return KilowattHours(0.0);
        }
        let rate = self.kind.rate().value();
        let end = eta + ec_types::SimDuration::from_secs_f64(window_hours * 3_600.0);
        // Integrate slot by slot so the per-slot rate cap applies.
        let mut total = 0.0;
        let mut at = eta;
        while at < end {
            let slot_end_s = (at.as_secs() / 900 + 1) * 900;
            let until = SimTime::from_secs(slot_end_s.min(end.as_secs()));
            let span_h = (until.as_secs() - at.as_secs()) as f64 / 3_600.0;
            total += series.at(at).value().min(rate) * span_h;
            at = until;
        }
        KilowattHours(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_types::DayOfWeek;

    fn charger(kind: ChargerKind, panel_kw: f64) -> Charger {
        Charger {
            id: ChargerId(3),
            loc: GeoPoint::new(8.2, 53.14),
            node: NodeId(17),
            kind,
            panel: Kilowatts(panel_kw),
            wind: Kilowatts(0.0),
            archetype: SiteArchetype::Downtown,
        }
    }

    #[test]
    fn rates_are_ordered() {
        let rates: Vec<f64> = ChargerKind::ALL.iter().map(|k| k.rate().value()).collect();
        assert!(rates.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn clean_power_capped_by_rate() {
        let w = WeatherSim::new(1);
        let b = charger(ChargerKind::Ac11, 100.0); // huge panel, small charger
        let noon = SimTime::at(0, DayOfWeek::Tue, 13, 0);
        let p = b.actual_clean_power(&w, noon);
        assert!(p.value() <= 11.0 + 1e-9);
    }

    #[test]
    fn clean_power_capped_by_panel_output() {
        let w = WeatherSim::new(1);
        let b = charger(ChargerKind::Dc150, 20.0); // big charger, small panel
        let noon = SimTime::at(0, DayOfWeek::Tue, 13, 0);
        let p = b.actual_clean_power(&w, noon);
        assert!(p.value() <= 20.0);
    }

    #[test]
    fn clean_power_zero_at_night() {
        let w = WeatherSim::new(1);
        let b = charger(ChargerKind::Ac22, 30.0);
        let night = SimTime::at(0, DayOfWeek::Tue, 2, 0);
        assert_eq!(b.actual_clean_power(&w, night).value(), 0.0);
    }

    #[test]
    fn clean_energy_scales_with_window() {
        let w = WeatherSim::new(1);
        let b = charger(ChargerKind::Ac22, 30.0);
        let noon = SimTime::at(0, DayOfWeek::Tue, 13, 0);
        let e1 = b.actual_clean_energy(&w, noon, 1.0);
        let e2 = b.actual_clean_energy(&w, noon, 2.0);
        assert!((e2.value() - 2.0 * e1.value()).abs() < 1e-9);
        // Negative windows clamp to zero.
        assert_eq!(b.actual_clean_energy(&w, noon, -1.0).value(), 0.0);
    }

    #[test]
    fn forecast_power_within_rate_bounds() {
        let w = WeatherSim::new(1);
        let b = charger(ChargerKind::Ac11, 40.0);
        let now = SimTime::at(0, DayOfWeek::Tue, 9, 0);
        let eta = SimTime::at(0, DayOfWeek::Tue, 13, 0);
        let f = b.forecast_clean_power(&w, now, eta);
        assert!(f.lo() >= 0.0);
        assert!(f.hi() <= 11.0 + 1e-9);
    }

    #[test]
    fn exact_energy_integrates_and_caps() {
        let w = WeatherSim::new(1);
        let b = charger(ChargerKind::Ac11, 100.0); // rate cap binds at noon
        let series = b.record_production(&w, 0);
        let noon = SimTime::at(0, DayOfWeek::Tue, 12, 0);
        let e = b.exact_clean_energy(&series, noon, 2.0);
        // With a huge panel, production saturates the 11 kW rate for the
        // sunny midday window: energy ≈ 11 kW × 2 h.
        assert!(e.value() <= 22.0 + 1e-9);
        assert!(e.value() > 15.0, "midday 2h window should be nearly rate-limited: {e}");
        // Zero/negative windows yield zero.
        assert_eq!(b.exact_clean_energy(&series, noon, 0.0).value(), 0.0);
        assert_eq!(b.exact_clean_energy(&series, noon, -1.0).value(), 0.0);
    }

    #[test]
    fn exact_energy_tracks_sunset_where_coarse_does_not() {
        let w = WeatherSim::new(1);
        let b = charger(ChargerKind::Dc50, 40.0);
        let series = b.record_production(&w, 0);
        // Start 1 h before dark: the exact integral sees the sun die, the
        // coarse estimate extrapolates the arrival-time power.
        let mut t = SimTime::at(0, DayOfWeek::Tue, 12, 0);
        while w.actual_sun_fraction(&GeoPoint::new(8.2, 53.14), t) > 0.0 {
            t = t + ec_types::SimDuration::from_mins(15);
        }
        let near_sunset = t - ec_types::SimDuration::from_mins(60);
        let exact = b.exact_clean_energy(&series, near_sunset, 4.0);
        let coarse = b.actual_clean_energy(&w, near_sunset, 4.0);
        assert!(
            exact.value() < coarse.value(),
            "exact {exact} must fall below the frozen-at-arrival estimate {coarse}"
        );
    }

    #[test]
    fn exact_energy_additive() {
        let w = WeatherSim::new(2);
        let b = charger(ChargerKind::Ac22, 30.0);
        let series = b.record_production(&w, 0);
        let t = SimTime::at(0, DayOfWeek::Wed, 10, 0);
        let whole = b.exact_clean_energy(&series, t, 3.0).value();
        let parts = b.exact_clean_energy(&series, t, 1.5).value()
            + b.exact_clean_energy(&series, t + ec_types::SimDuration::from_mins(90), 1.5).value();
        assert!((whole - parts).abs() < 1e-9);
    }

    #[test]
    fn entity_seed_stable_and_distinct() {
        let a = charger(ChargerKind::Ac11, 10.0);
        let mut b = charger(ChargerKind::Ac11, 10.0);
        b.id = ChargerId(4);
        assert_eq!(a.entity_seed(), a.entity_seed());
        assert_ne!(a.entity_seed(), b.entity_seed());
    }
}
