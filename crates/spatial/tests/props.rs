//! Property tests: the indexes must agree with the linear scan for any
//! point cloud, any tuning, any query.

use ec_types::{BoundingBox, GeoPoint, SplitMix64};
use proptest::prelude::*;
use spatial_index::{brute, GridIndex, KdTree, QuadTree, TileGrid};

fn cloud(seed: u64, n: usize, extent_m: f64) -> Vec<(GeoPoint, usize)> {
    let mut rng = SplitMix64::new(seed);
    let origin = GeoPoint::new(8.0, 53.0);
    (0..n)
        .map(|i| (origin.offset_m(rng.range_f64(0.0, extent_m), rng.range_f64(0.0, extent_m)), i))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48 })]

    #[test]
    fn quadtree_knn_equals_brute(
        seed in 0u64..10_000,
        n in 0usize..400,
        k in 0usize..25,
        extent_km in 1.0..200.0f64,
        qx in -0.2..1.2f64, qy in -0.2..1.2f64,
    ) {
        let items = cloud(seed, n, extent_km * 1_000.0);
        let tree = QuadTree::bulk(items.clone());
        let q = GeoPoint::new(8.0, 53.0)
            .offset_m(qx * extent_km * 1_000.0, qy * extent_km * 1_000.0);
        let got: Vec<usize> = tree.knn(&q, k).iter().map(|h| *h.item).collect();
        let want: Vec<usize> = brute::knn_scan(&items, &q, k).iter().map(|h| *h.item).collect();
        prop_assert_eq!(got, want);
    }

    /// The lazy stream must yield every hit in the exact order of the
    /// brute-force scan — prefix-for-prefix, so stopping early at any
    /// point is equivalent to a brute-force top-`m`.
    #[test]
    fn quadtree_knn_iter_streams_in_brute_order(
        seed in 0u64..10_000,
        n in 0usize..400,
        extent_km in 1.0..200.0f64,
        qx in -0.2..1.2f64, qy in -0.2..1.2f64,
    ) {
        let items = cloud(seed, n, extent_km * 1_000.0);
        let tree = QuadTree::bulk(items.clone());
        let q = GeoPoint::new(8.0, 53.0)
            .offset_m(qx * extent_km * 1_000.0, qy * extent_km * 1_000.0);
        let got: Vec<usize> = tree.knn_iter(&q).map(|h| *h.item).collect();
        let want: Vec<usize> = brute::knn_scan(&items, &q, n).iter().map(|h| *h.item).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn quadtree_range_equals_brute(
        seed in 0u64..10_000,
        n in 0usize..300,
        radius_km in 0.0..100.0f64,
        extent_km in 1.0..100.0f64,
    ) {
        let items = cloud(seed, n, extent_km * 1_000.0);
        let tree = QuadTree::bulk(items.clone());
        let q = GeoPoint::new(8.0, 53.0).offset_m(extent_km * 500.0, extent_km * 500.0);
        let got: Vec<usize> = tree.range(&q, radius_km * 1_000.0).iter().map(|h| *h.item).collect();
        let want: Vec<usize> =
            brute::range_scan(&items, &q, radius_km * 1_000.0).iter().map(|h| *h.item).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn grid_knn_equals_brute(
        seed in 0u64..10_000,
        n in 1usize..300,
        k in 1usize..15,
        cell_m in 100.0..20_000.0f64,
        extent_km in 1.0..100.0f64,
        qx in -0.5..1.5f64, qy in -0.5..1.5f64,
    ) {
        let items = cloud(seed, n, extent_km * 1_000.0);
        let grid = GridIndex::build(items.clone(), cell_m);
        let q = GeoPoint::new(8.0, 53.0)
            .offset_m(qx * extent_km * 1_000.0, qy * extent_km * 1_000.0);
        let got: Vec<usize> = grid.knn(&q, k).iter().map(|h| *h.item).collect();
        let want: Vec<usize> = brute::knn_scan(&items, &q, k).iter().map(|h| *h.item).collect();
        prop_assert_eq!(got, want, "cell {} extent {} n {}", cell_m, extent_km, n);
    }

    #[test]
    fn grid_range_equals_brute(
        seed in 0u64..10_000,
        n in 0usize..200,
        radius_km in 0.0..60.0f64,
        cell_m in 200.0..10_000.0f64,
    ) {
        let items = cloud(seed, n, 40_000.0);
        let grid = GridIndex::build(items.clone(), cell_m);
        let q = GeoPoint::new(8.0, 53.0).offset_m(17_000.0, 23_000.0);
        let got: Vec<usize> = grid.range(&q, radius_km * 1_000.0).iter().map(|h| *h.item).collect();
        let want: Vec<usize> =
            brute::range_scan(&items, &q, radius_km * 1_000.0).iter().map(|h| *h.item).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn kdtree_knn_equals_brute(
        seed in 0u64..10_000,
        n in 0usize..400,
        k in 0usize..25,
        extent_km in 1.0..200.0f64,
        qx in -0.2..1.2f64, qy in -0.2..1.2f64,
    ) {
        let items = cloud(seed, n, extent_km * 1_000.0);
        let tree = KdTree::bulk(items.clone());
        let q = GeoPoint::new(8.0, 53.0)
            .offset_m(qx * extent_km * 1_000.0, qy * extent_km * 1_000.0);
        let got: Vec<usize> = tree.knn(&q, k).iter().map(|h| *h.item).collect();
        let want: Vec<usize> = brute::knn_scan(&items, &q, k).iter().map(|h| *h.item).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn kdtree_range_equals_brute(
        seed in 0u64..10_000,
        n in 0usize..300,
        radius_km in 0.0..100.0f64,
        extent_km in 1.0..100.0f64,
    ) {
        let items = cloud(seed, n, extent_km * 1_000.0);
        let tree = KdTree::bulk(items.clone());
        let q = GeoPoint::new(8.0, 53.0).offset_m(extent_km * 500.0, extent_km * 500.0);
        let got: Vec<usize> = tree.range(&q, radius_km * 1_000.0).iter().map(|h| *h.item).collect();
        let want: Vec<usize> =
            brute::range_scan(&items, &q, radius_km * 1_000.0).iter().map(|h| *h.item).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn quadtree_small_buckets_still_correct(
        seed in 0u64..1_000,
        n in 1usize..150,
        bucket in 1usize..6,
        depth in 2usize..10,
    ) {
        let items = cloud(seed, n, 20_000.0);
        let bounds = ec_types::BoundingBox::of_points(items.iter().map(|(p, _)| *p)).unwrap();
        let mut tree = QuadTree::with_params(bounds, bucket, depth);
        for (p, i) in items.clone() {
            tree.insert(p, i);
        }
        let q = GeoPoint::new(8.0, 53.0).offset_m(10_000.0, 10_000.0);
        let got: Vec<usize> = tree.knn(&q, 7).iter().map(|h| *h.item).collect();
        let want: Vec<usize> = brute::knn_scan(&items, &q, 7).iter().map(|h| *h.item).collect();
        prop_assert_eq!(got, want);
    }

    /// Every point maps to exactly one tile: the assigned tile's box
    /// contains the point, and no other tile's *interior* does.
    #[test]
    fn tile_membership_is_unique_and_geometric(
        depth in 0u32..5,
        w in 0.01..3.0f64, h in 0.01..3.0f64,
        fx in -0.3..1.3f64, fy in -0.3..1.3f64,
    ) {
        let bounds = BoundingBox::new(
            GeoPoint::new(8.0, 53.0),
            GeoPoint::new(8.0 + w, 53.0 + h),
        );
        let grid = TileGrid::new(bounds, depth);
        let p = GeoPoint::new(8.0 + fx * w, 53.0 + fy * h);
        let id = grid.tile_of(&p);
        prop_assert!(id < grid.num_tiles());
        let clamped = GeoPoint::new(
            p.lon.clamp(bounds.min.lon, bounds.max.lon),
            p.lat.clamp(bounds.min.lat, bounds.max.lat),
        );
        prop_assert!(grid.tile_box(id).contains(&clamped));
        // Strict-interior membership is exclusive: at most the assigned
        // tile can claim the point away from shared edges.
        for (other, bx) in grid.tiles() {
            let strictly_inside = bx.min.lon < clamped.lon
                && clamped.lon < bx.max.lon
                && bx.min.lat < clamped.lat
                && clamped.lat < bx.max.lat;
            if strictly_inside {
                prop_assert_eq!(other, id);
            }
        }
    }

    /// The tiles cover the bounding box: every tile box nests inside the
    /// bounds, the outer corners are reproduced exactly, each tile's
    /// centre round-trips through membership, and the per-row / per-column
    /// extents chain seamlessly (no gaps, no overlap beyond shared edges).
    #[test]
    fn tiles_cover_the_bounding_box(
        depth in 0u32..5,
        w in 0.01..3.0f64, h in 0.01..3.0f64,
    ) {
        let bounds = BoundingBox::new(
            GeoPoint::new(8.0, 53.0),
            GeoPoint::new(8.0 + w, 53.0 + h),
        );
        let grid = TileGrid::new(bounds, depth);
        let side = grid.side();
        prop_assert_eq!(grid.num_tiles(), side * side);
        for (id, bx) in grid.tiles() {
            prop_assert!(bounds.contains(&bx.min));
            prop_assert!(bounds.contains(&bx.max));
            prop_assert_eq!(grid.tile_of(&bx.center()), id);
            let (ix, iy) = (id % side, id / side);
            // Seamless tiling: each tile starts exactly where its west /
            // south neighbour ends.
            if ix > 0 {
                prop_assert_eq!(bx.min.lon, grid.tile_box(id - 1).max.lon);
            }
            if iy > 0 {
                prop_assert_eq!(bx.min.lat, grid.tile_box(id - side).max.lat);
            }
        }
        prop_assert_eq!(grid.tile_box(0).min, bounds.min);
        prop_assert_eq!(grid.tile_box(grid.num_tiles() - 1).max, bounds.max);
    }
}
