//! Property tests: the indexes must agree with the linear scan for any
//! point cloud, any tuning, any query.

use ec_types::{GeoPoint, SplitMix64};
use proptest::prelude::*;
use spatial_index::{brute, GridIndex, KdTree, QuadTree};

fn cloud(seed: u64, n: usize, extent_m: f64) -> Vec<(GeoPoint, usize)> {
    let mut rng = SplitMix64::new(seed);
    let origin = GeoPoint::new(8.0, 53.0);
    (0..n)
        .map(|i| (origin.offset_m(rng.range_f64(0.0, extent_m), rng.range_f64(0.0, extent_m)), i))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48 })]

    #[test]
    fn quadtree_knn_equals_brute(
        seed in 0u64..10_000,
        n in 0usize..400,
        k in 0usize..25,
        extent_km in 1.0..200.0f64,
        qx in -0.2..1.2f64, qy in -0.2..1.2f64,
    ) {
        let items = cloud(seed, n, extent_km * 1_000.0);
        let tree = QuadTree::bulk(items.clone());
        let q = GeoPoint::new(8.0, 53.0)
            .offset_m(qx * extent_km * 1_000.0, qy * extent_km * 1_000.0);
        let got: Vec<usize> = tree.knn(&q, k).iter().map(|h| *h.item).collect();
        let want: Vec<usize> = brute::knn_scan(&items, &q, k).iter().map(|h| *h.item).collect();
        prop_assert_eq!(got, want);
    }

    /// The lazy stream must yield every hit in the exact order of the
    /// brute-force scan — prefix-for-prefix, so stopping early at any
    /// point is equivalent to a brute-force top-`m`.
    #[test]
    fn quadtree_knn_iter_streams_in_brute_order(
        seed in 0u64..10_000,
        n in 0usize..400,
        extent_km in 1.0..200.0f64,
        qx in -0.2..1.2f64, qy in -0.2..1.2f64,
    ) {
        let items = cloud(seed, n, extent_km * 1_000.0);
        let tree = QuadTree::bulk(items.clone());
        let q = GeoPoint::new(8.0, 53.0)
            .offset_m(qx * extent_km * 1_000.0, qy * extent_km * 1_000.0);
        let got: Vec<usize> = tree.knn_iter(&q).map(|h| *h.item).collect();
        let want: Vec<usize> = brute::knn_scan(&items, &q, n).iter().map(|h| *h.item).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn quadtree_range_equals_brute(
        seed in 0u64..10_000,
        n in 0usize..300,
        radius_km in 0.0..100.0f64,
        extent_km in 1.0..100.0f64,
    ) {
        let items = cloud(seed, n, extent_km * 1_000.0);
        let tree = QuadTree::bulk(items.clone());
        let q = GeoPoint::new(8.0, 53.0).offset_m(extent_km * 500.0, extent_km * 500.0);
        let got: Vec<usize> = tree.range(&q, radius_km * 1_000.0).iter().map(|h| *h.item).collect();
        let want: Vec<usize> =
            brute::range_scan(&items, &q, radius_km * 1_000.0).iter().map(|h| *h.item).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn grid_knn_equals_brute(
        seed in 0u64..10_000,
        n in 1usize..300,
        k in 1usize..15,
        cell_m in 100.0..20_000.0f64,
        extent_km in 1.0..100.0f64,
        qx in -0.5..1.5f64, qy in -0.5..1.5f64,
    ) {
        let items = cloud(seed, n, extent_km * 1_000.0);
        let grid = GridIndex::build(items.clone(), cell_m);
        let q = GeoPoint::new(8.0, 53.0)
            .offset_m(qx * extent_km * 1_000.0, qy * extent_km * 1_000.0);
        let got: Vec<usize> = grid.knn(&q, k).iter().map(|h| *h.item).collect();
        let want: Vec<usize> = brute::knn_scan(&items, &q, k).iter().map(|h| *h.item).collect();
        prop_assert_eq!(got, want, "cell {} extent {} n {}", cell_m, extent_km, n);
    }

    #[test]
    fn grid_range_equals_brute(
        seed in 0u64..10_000,
        n in 0usize..200,
        radius_km in 0.0..60.0f64,
        cell_m in 200.0..10_000.0f64,
    ) {
        let items = cloud(seed, n, 40_000.0);
        let grid = GridIndex::build(items.clone(), cell_m);
        let q = GeoPoint::new(8.0, 53.0).offset_m(17_000.0, 23_000.0);
        let got: Vec<usize> = grid.range(&q, radius_km * 1_000.0).iter().map(|h| *h.item).collect();
        let want: Vec<usize> =
            brute::range_scan(&items, &q, radius_km * 1_000.0).iter().map(|h| *h.item).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn kdtree_knn_equals_brute(
        seed in 0u64..10_000,
        n in 0usize..400,
        k in 0usize..25,
        extent_km in 1.0..200.0f64,
        qx in -0.2..1.2f64, qy in -0.2..1.2f64,
    ) {
        let items = cloud(seed, n, extent_km * 1_000.0);
        let tree = KdTree::bulk(items.clone());
        let q = GeoPoint::new(8.0, 53.0)
            .offset_m(qx * extent_km * 1_000.0, qy * extent_km * 1_000.0);
        let got: Vec<usize> = tree.knn(&q, k).iter().map(|h| *h.item).collect();
        let want: Vec<usize> = brute::knn_scan(&items, &q, k).iter().map(|h| *h.item).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn kdtree_range_equals_brute(
        seed in 0u64..10_000,
        n in 0usize..300,
        radius_km in 0.0..100.0f64,
        extent_km in 1.0..100.0f64,
    ) {
        let items = cloud(seed, n, extent_km * 1_000.0);
        let tree = KdTree::bulk(items.clone());
        let q = GeoPoint::new(8.0, 53.0).offset_m(extent_km * 500.0, extent_km * 500.0);
        let got: Vec<usize> = tree.range(&q, radius_km * 1_000.0).iter().map(|h| *h.item).collect();
        let want: Vec<usize> =
            brute::range_scan(&items, &q, radius_km * 1_000.0).iter().map(|h| *h.item).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn quadtree_small_buckets_still_correct(
        seed in 0u64..1_000,
        n in 1usize..150,
        bucket in 1usize..6,
        depth in 2usize..10,
    ) {
        let items = cloud(seed, n, 20_000.0);
        let bounds = ec_types::BoundingBox::of_points(items.iter().map(|(p, _)| *p)).unwrap();
        let mut tree = QuadTree::with_params(bounds, bucket, depth);
        for (p, i) in items.clone() {
            tree.insert(p, i);
        }
        let q = GeoPoint::new(8.0, 53.0).offset_m(10_000.0, 10_000.0);
        let got: Vec<usize> = tree.knn(&q, 7).iter().map(|h| *h.item).collect();
        let want: Vec<usize> = brute::knn_scan(&items, &q, 7).iter().map(|h| *h.item).collect();
        prop_assert_eq!(got, want);
    }
}
