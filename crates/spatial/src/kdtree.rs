//! A 2-d tree (kd-tree) over geographic points.
//!
//! Complements the quadtree and the grid: median-split construction gives
//! a balanced tree regardless of point distribution (the quadtree's depth
//! follows data density; the grid's cost follows cell occupancy), which
//! makes the kd-tree the most robust choice for heavily skewed charger
//! fleets (everything downtown, nothing in the hills).
//!
//! Distances are metres via the workspace's equirectangular metric.
//! Splitting-plane pruning uses a *conservative* metric conversion (the
//! smallest metres-per-degree over the indexed region, with slack), so
//! pruning can only skip subtrees that provably hold no closer point —
//! the property tests cross-validate against the linear scan.

use crate::{Hit, OrdF64};
use ec_types::{BoundingBox, GeoPoint, EARTH_RADIUS_M};
use std::collections::BinaryHeap;

/// Points per leaf before recursion stops.
const LEAF_SIZE: usize = 12;

/// A balanced 2-d tree over payloads `T`.
#[derive(Debug)]
pub struct KdTree<T> {
    /// Reordered points; tree structure is implicit in the ranges.
    items: Vec<(GeoPoint, T)>,
    /// Conservative metres per degree of longitude over the region.
    lon_m_per_deg: f64,
    /// Metres per degree of latitude (constant).
    lat_m_per_deg: f64,
}

impl<T> KdTree<T> {
    /// Build from a list of positioned payloads (consumed and reordered).
    #[must_use]
    pub fn bulk(mut items: Vec<(GeoPoint, T)>) -> Self {
        let bounds = BoundingBox::of_points(items.iter().map(|(p, _)| *p))
            .unwrap_or_else(|| BoundingBox::new(GeoPoint::new(0.0, 0.0), GeoPoint::new(1.0, 1.0)));
        // Narrowest longitude degrees occur at the largest |lat|; a 0.5 %
        // slack absorbs the pair-mean-latitude wobble of fast_dist_m.
        let worst_lat = bounds.min.lat.abs().max(bounds.max.lat.abs()).min(89.0);
        let lon_m_per_deg =
            EARTH_RADIUS_M * worst_lat.to_radians().cos() * std::f64::consts::PI / 180.0 * 0.995;
        let lat_m_per_deg = EARTH_RADIUS_M * std::f64::consts::PI / 180.0 * 0.995;
        let n = items.len();
        if n > 0 {
            build(&mut items, 0, n, 0);
        }
        Self { items, lon_m_per_deg, lat_m_per_deg }
    }

    /// Number of indexed items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is indexed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Conservative metric distance from `query` to the splitting plane
    /// at `value` on `axis` (0 = lon, 1 = lat) — never an over-estimate.
    fn plane_dist_m(&self, query: &GeoPoint, axis: usize, value: f64) -> f64 {
        if axis == 0 {
            (query.lon - value).abs() * self.lon_m_per_deg
        } else {
            (query.lat - value).abs() * self.lat_m_per_deg
        }
    }

    /// The `k` nearest payloads, sorted by ascending distance.
    #[must_use]
    pub fn knn(&self, query: &GeoPoint, k: usize) -> Vec<Hit<'_, T>> {
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        // Max-heap of the best k found so far.
        let mut best: BinaryHeap<(OrdF64, usize)> = BinaryHeap::new();
        self.knn_rec(query, k, 0, self.items.len(), 0, &mut best);
        let mut hits: Vec<Hit<'_, T>> = best
            .into_sorted_vec()
            .into_iter()
            .map(|(d, i)| Hit { item: &self.items[i].1, pos: self.items[i].0, dist_m: d.get() })
            .collect();
        // into_sorted_vec is ascending already; ties need insertion-order
        // stabilisation to match the brute scan.
        hits.sort_by(|a, b| a.dist_m.partial_cmp(&b.dist_m).expect("finite distances"));
        hits
    }

    fn knn_rec(
        &self,
        query: &GeoPoint,
        k: usize,
        lo: usize,
        hi: usize,
        depth: usize,
        best: &mut BinaryHeap<(OrdF64, usize)>,
    ) {
        if hi - lo <= LEAF_SIZE {
            for i in lo..hi {
                consider(query, &self.items, i, k, best);
            }
            return;
        }
        let mid = (lo + hi) / 2;
        consider(query, &self.items, mid, k, best);
        let axis = depth % 2;
        let split = axis_value(&self.items[mid].0, axis);
        let qv = axis_value(query, axis);
        let (near, far) =
            if qv <= split { ((lo, mid), (mid + 1, hi)) } else { ((mid + 1, hi), (lo, mid)) };
        self.knn_rec(query, k, near.0, near.1, depth + 1, best);
        // Visit the far side only if the plane is closer than the current
        // k-th best (or we still need more candidates).
        let need_more = best.len() < k;
        let kth = best.peek().map_or(f64::INFINITY, |(d, _)| d.get());
        if need_more || self.plane_dist_m(query, axis, split) <= kth {
            self.knn_rec(query, k, far.0, far.1, depth + 1, best);
        }
    }

    /// All payloads within `radius_m` of `query`, sorted by ascending
    /// distance.
    #[must_use]
    pub fn range(&self, query: &GeoPoint, radius_m: f64) -> Vec<Hit<'_, T>> {
        let mut out = Vec::new();
        if !self.is_empty() {
            self.range_rec(query, radius_m, 0, self.items.len(), 0, &mut out);
        }
        out.sort_by(|a, b| a.dist_m.partial_cmp(&b.dist_m).expect("finite distances"));
        out
    }

    fn range_rec<'a>(
        &'a self,
        query: &GeoPoint,
        radius_m: f64,
        lo: usize,
        hi: usize,
        depth: usize,
        out: &mut Vec<Hit<'a, T>>,
    ) {
        if hi - lo <= LEAF_SIZE {
            for i in lo..hi {
                let d = query.fast_dist_m(&self.items[i].0);
                if d <= radius_m {
                    out.push(Hit { item: &self.items[i].1, pos: self.items[i].0, dist_m: d });
                }
            }
            return;
        }
        let mid = (lo + hi) / 2;
        let d = query.fast_dist_m(&self.items[mid].0);
        if d <= radius_m {
            out.push(Hit { item: &self.items[mid].1, pos: self.items[mid].0, dist_m: d });
        }
        let axis = depth % 2;
        let split = axis_value(&self.items[mid].0, axis);
        let plane = self.plane_dist_m(query, axis, split);
        let qv = axis_value(query, axis);
        if qv <= split {
            self.range_rec(query, radius_m, lo, mid, depth + 1, out);
            if plane <= radius_m {
                self.range_rec(query, radius_m, mid + 1, hi, depth + 1, out);
            }
        } else {
            self.range_rec(query, radius_m, mid + 1, hi, depth + 1, out);
            if plane <= radius_m {
                self.range_rec(query, radius_m, lo, mid, depth + 1, out);
            }
        }
    }
}

fn axis_value(p: &GeoPoint, axis: usize) -> f64 {
    if axis == 0 {
        p.lon
    } else {
        p.lat
    }
}

/// Offer item `i` to the running top-k.
fn consider<T>(
    query: &GeoPoint,
    items: &[(GeoPoint, T)],
    i: usize,
    k: usize,
    best: &mut BinaryHeap<(OrdF64, usize)>,
) {
    let d = OrdF64::new(query.fast_dist_m(&items[i].0));
    if best.len() < k {
        best.push((d, i));
    } else if let Some(&(worst, _)) = best.peek() {
        if d < worst {
            best.pop();
            best.push((d, i));
        }
    }
}

/// Median-split build: after the call, `items[(lo+hi)/2]` is the median
/// of the range on the depth's axis and the halves recurse.
fn build<T>(items: &mut [(GeoPoint, T)], lo: usize, hi: usize, depth: usize) {
    if hi - lo <= LEAF_SIZE {
        return;
    }
    let axis = depth % 2;
    let mid = (lo + hi) / 2;
    items[lo..hi].select_nth_unstable_by(mid - lo, |a, b| {
        axis_value(&a.0, axis).partial_cmp(&axis_value(&b.0, axis)).expect("finite coordinates")
    });
    build(items, lo, mid, depth + 1);
    build(items, mid + 1, hi, depth + 1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;
    use ec_types::SplitMix64;

    fn random_items(n: usize, seed: u64) -> Vec<(GeoPoint, u32)> {
        let mut rng = SplitMix64::new(seed);
        let origin = GeoPoint::new(8.0, 53.0);
        (0..n)
            .map(|i| {
                let p = origin.offset_m(rng.range_f64(0.0, 45_000.0), rng.range_f64(0.0, 35_000.0));
                (p, u32::try_from(i).unwrap())
            })
            .collect()
    }

    #[test]
    fn empty_and_singleton() {
        let t: KdTree<u32> = KdTree::bulk(Vec::new());
        assert!(t.is_empty());
        assert!(t.knn(&GeoPoint::new(0.5, 0.5), 3).is_empty());
        let one = KdTree::bulk(vec![(GeoPoint::new(8.0, 53.0), 7u32)]);
        let hits = one.knn(&GeoPoint::new(8.1, 53.1), 5);
        assert_eq!(hits.len(), 1);
        assert_eq!(*hits[0].item, 7);
    }

    #[test]
    fn knn_matches_brute_force() {
        let items = random_items(400, 42);
        let tree = KdTree::bulk(items.clone());
        let mut rng = SplitMix64::new(7);
        for _ in 0..25 {
            let q = GeoPoint::new(8.0, 53.0)
                .offset_m(rng.range_f64(-5_000.0, 50_000.0), rng.range_f64(-5_000.0, 40_000.0));
            let got: Vec<u32> = tree.knn(&q, 9).iter().map(|h| *h.item).collect();
            let want: Vec<u32> = brute::knn_scan(&items, &q, 9).iter().map(|h| *h.item).collect();
            assert_eq!(got, want, "query {q}");
        }
    }

    #[test]
    fn range_matches_brute_force() {
        let items = random_items(300, 9);
        let tree = KdTree::bulk(items.clone());
        let q = GeoPoint::new(8.0, 53.0).offset_m(20_000.0, 15_000.0);
        for radius in [0.0, 1_500.0, 8_000.0, 60_000.0] {
            let got: Vec<u32> = tree.range(&q, radius).iter().map(|h| *h.item).collect();
            let want: Vec<u32> =
                brute::range_scan(&items, &q, radius).iter().map(|h| *h.item).collect();
            assert_eq!(got, want, "radius {radius}");
        }
    }

    #[test]
    fn skewed_cluster_is_handled() {
        // 90 % of points in one tiny block — the distribution that hurts a
        // quadtree's depth. The kd-tree must stay exact.
        let mut rng = SplitMix64::new(5);
        let origin = GeoPoint::new(8.0, 53.0);
        let mut items: Vec<(GeoPoint, u32)> = (0..270u32)
            .map(|i| (origin.offset_m(rng.range_f64(0.0, 300.0), rng.range_f64(0.0, 300.0)), i))
            .collect();
        items.extend((270..300u32).map(|i| {
            (origin.offset_m(rng.range_f64(0.0, 40_000.0), rng.range_f64(0.0, 40_000.0)), i)
        }));
        let tree = KdTree::bulk(items.clone());
        let q = origin.offset_m(150.0, 150.0);
        let got: Vec<u32> = tree.knn(&q, 12).iter().map(|h| *h.item).collect();
        let want: Vec<u32> = brute::knn_scan(&items, &q, 12).iter().map(|h| *h.item).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn k_zero_and_k_exceeding_n() {
        let items = random_items(6, 1);
        let tree = KdTree::bulk(items);
        assert!(tree.knn(&GeoPoint::new(8.0, 53.0), 0).is_empty());
        assert_eq!(tree.knn(&GeoPoint::new(8.0, 53.0), 50).len(), 6);
    }
}
