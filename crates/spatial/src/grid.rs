//! A uniform grid index with ring-expansion search.
//!
//! The related work EcoCharge builds on (Mouratidis et al., Xiong et al.,
//! Yu et al. — §VI-B) indexes moving objects in a main-memory regular grid
//! and answers kNN by iteratively deepening a range search outward from the
//! query cell. [`GridIndex`] is that structure. It also serves as the
//! nearest-node snapper for road networks, where queries are always close
//! to an indexed point and the ring search terminates after one or two
//! rings.

use crate::Hit;
use ec_types::{BoundingBox, GeoPoint};

/// A uniform grid over a bounding box, storing payloads `T` at point
/// positions.
#[derive(Debug)]
pub struct GridIndex<T> {
    items: Vec<(GeoPoint, T)>,
    cells: Vec<Vec<u32>>,
    bounds: BoundingBox,
    cols: usize,
    rows: usize,
    /// Requested cell edge length, metres (used to size range scans).
    cell_m: f64,
    /// Conservative lower bound on the true metric size of one cell step,
    /// metres. Sound for the ring-search termination test even though
    /// longitude cells shrink towards the poles.
    min_cell_m: f64,
}

impl<T> GridIndex<T> {
    /// Build a grid over `items` with cells of roughly `cell_m` metres.
    ///
    /// # Panics
    /// Panics when `cell_m` is not strictly positive.
    #[must_use]
    pub fn build(items: Vec<(GeoPoint, T)>, cell_m: f64) -> Self {
        assert!(cell_m > 0.0, "cell size must be positive, got {cell_m}");
        let bounds = BoundingBox::of_points(items.iter().map(|(p, _)| *p))
            .unwrap_or_else(|| BoundingBox::new(GeoPoint::new(0.0, 0.0), GeoPoint::new(1.0, 1.0)));
        let cols = ((bounds.width_m() / cell_m).ceil() as usize).max(1);
        let rows = ((bounds.height_m() / cell_m).ceil() as usize).max(1);
        // True cell extents: width measured at the latitude where lon
        // degrees are narrowest (largest |lat|), height from the lat span.
        let worst_lat = bounds.min.lat.abs().max(bounds.max.lat.abs()).min(89.0);
        let lon_span_deg = bounds.max.lon - bounds.min.lon;
        let cell_w_m = if lon_span_deg > 0.0 {
            lon_span_deg.to_radians() * worst_lat.to_radians().cos() * ec_types::EARTH_RADIUS_M
                / cols as f64
        } else {
            f64::INFINITY
        };
        let cell_h_m = if bounds.max.lat > bounds.min.lat {
            (bounds.max.lat - bounds.min.lat).to_radians() * ec_types::EARTH_RADIUS_M / rows as f64
        } else {
            f64::INFINITY
        };
        let min_cell_m = cell_w_m.min(cell_h_m).min(cell_m);
        let mut grid = Self {
            items: Vec::new(),
            cells: vec![Vec::new(); cols * rows],
            bounds,
            cols,
            rows,
            cell_m,
            min_cell_m,
        };
        for (pos, item) in items {
            let idx = u32::try_from(grid.items.len()).expect("grid capacity exceeded");
            let cell = grid.cell_of(&pos);
            grid.cells[cell].push(idx);
            grid.items.push((pos, item));
        }
        grid
    }

    /// Number of indexed items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is indexed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Grid dimensions `(cols, rows)`.
    #[must_use]
    pub const fn dims(&self) -> (usize, usize) {
        (self.cols, self.rows)
    }

    /// The cell edge length requested at construction, metres.
    #[must_use]
    pub const fn cell_size_m(&self) -> f64 {
        self.cell_m
    }

    fn col_row(&self, p: &GeoPoint) -> (usize, usize) {
        let fx = if self.bounds.max.lon > self.bounds.min.lon {
            (p.lon - self.bounds.min.lon) / (self.bounds.max.lon - self.bounds.min.lon)
        } else {
            0.0
        };
        let fy = if self.bounds.max.lat > self.bounds.min.lat {
            (p.lat - self.bounds.min.lat) / (self.bounds.max.lat - self.bounds.min.lat)
        } else {
            0.0
        };
        let col = ((fx * self.cols as f64) as isize).clamp(0, self.cols as isize - 1) as usize;
        let row = ((fy * self.rows as f64) as isize).clamp(0, self.rows as isize - 1) as usize;
        (col, row)
    }

    fn cell_of(&self, p: &GeoPoint) -> usize {
        let (col, row) = self.col_row(p);
        row * self.cols + col
    }

    /// The nearest payload to `query`, or `None` on an empty index.
    ///
    /// Ring expansion: examine the query cell, then the square ring of
    /// cells around it, widening until the best candidate found so far is
    /// provably closer than anything an unexamined ring could hold.
    #[must_use]
    pub fn nearest(&self, query: &GeoPoint) -> Option<Hit<'_, T>> {
        self.knn(query, 1).into_iter().next()
    }

    /// The `k` nearest payloads, sorted by ascending distance, via
    /// iteratively deepened ring search.
    #[must_use]
    pub fn knn(&self, query: &GeoPoint, k: usize) -> Vec<Hit<'_, T>> {
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        let (qc, qr) = self.col_row(query);
        let max_ring = self.cols.max(self.rows);
        let mut best: Vec<Hit<'_, T>> = Vec::new();
        for ring in 0..=max_ring {
            let mut examined_any = false;
            self.for_ring_cells(qc, qr, ring, |cell| {
                examined_any = true;
                for &idx in &self.cells[cell] {
                    let (pos, ref item) = self.items[idx as usize];
                    let d = query.fast_dist_m(&pos);
                    // Insertion sort into the running top-k: k is small in
                    // all EcoCharge uses (k ≤ ~20).
                    let at = best.partition_point(|h| h.dist_m <= d);
                    if at < k {
                        best.insert(at, Hit { item, pos, dist_m: d });
                        best.truncate(k);
                    }
                }
            });
            // Termination: any point in ring r+1 is at least r*cell_m away
            // (conservative: ring r cells start at (r-1)*cell_m from the
            // query cell's own cell; subtract one cell for the query's
            // offset within its cell).
            if best.len() == k {
                // Any point in an unexamined ring (> ring) lies at least
                // `ring * min_cell_m` from the query cell; keep one extra
                // cell of slack for the query's offset within its own cell.
                let ring_floor_m = (ring as f64 - 1.0) * self.min_cell_m;
                if best[k - 1].dist_m <= ring_floor_m {
                    break;
                }
            }
            if !examined_any && ring > self.cols + self.rows {
                break;
            }
        }
        best
    }

    /// All payloads within `radius_m` of `query`, sorted by ascending
    /// distance.
    #[must_use]
    pub fn range(&self, query: &GeoPoint, radius_m: f64) -> Vec<Hit<'_, T>> {
        if self.is_empty() {
            return Vec::new();
        }
        let (qc, qr) = self.col_row(query);
        let ring_span = (radius_m / self.min_cell_m).ceil() as usize + 1;
        let mut out = Vec::new();
        for ring in 0..=ring_span.min(self.cols.max(self.rows)) {
            self.for_ring_cells(qc, qr, ring, |cell| {
                for &idx in &self.cells[cell] {
                    let (pos, ref item) = self.items[idx as usize];
                    let d = query.fast_dist_m(&pos);
                    if d <= radius_m {
                        out.push(Hit { item, pos, dist_m: d });
                    }
                }
            });
        }
        out.sort_by(|a, b| a.dist_m.partial_cmp(&b.dist_m).expect("distances are finite"));
        out
    }

    /// Visit every cell of the square ring at Chebyshev distance `ring`
    /// from `(qc, qr)`, clipped to the grid.
    fn for_ring_cells(&self, qc: usize, qr: usize, ring: usize, mut f: impl FnMut(usize)) {
        let (qc, qr, ring) = (qc as isize, qr as isize, ring as isize);
        let in_grid = |c: isize, r: isize| {
            c >= 0 && r >= 0 && (c as usize) < self.cols && (r as usize) < self.rows
        };
        if ring == 0 {
            if in_grid(qc, qr) {
                f(qr as usize * self.cols + qc as usize);
            }
            return;
        }
        for c in (qc - ring)..=(qc + ring) {
            for &r in &[qr - ring, qr + ring] {
                if in_grid(c, r) {
                    f(r as usize * self.cols + c as usize);
                }
            }
        }
        for r in (qr - ring + 1)..=(qr + ring - 1) {
            for &c in &[qc - ring, qc + ring] {
                if in_grid(c, r) {
                    f(r as usize * self.cols + c as usize);
                }
            }
        }
    }

    /// Iterate over all `(position, payload)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &(GeoPoint, T)> {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;
    use ec_types::SplitMix64;

    fn random_items(n: usize, seed: u64) -> Vec<(GeoPoint, u32)> {
        let mut rng = SplitMix64::new(seed);
        let origin = GeoPoint::new(8.0, 53.0);
        (0..n)
            .map(|i| {
                let p = origin.offset_m(rng.range_f64(0.0, 45_000.0), rng.range_f64(0.0, 35_000.0));
                (p, u32::try_from(i).unwrap())
            })
            .collect()
    }

    #[test]
    fn empty_grid() {
        let g: GridIndex<u32> = GridIndex::build(Vec::new(), 1_000.0);
        assert!(g.is_empty());
        assert!(g.nearest(&GeoPoint::new(0.5, 0.5)).is_none());
        assert!(g.range(&GeoPoint::new(0.5, 0.5), 1e6).is_empty());
    }

    #[test]
    fn nearest_matches_brute_force() {
        let items = random_items(400, 21);
        let grid = GridIndex::build(items.clone(), 2_000.0);
        let mut rng = SplitMix64::new(77);
        for _ in 0..25 {
            let q = GeoPoint::new(8.0, 53.0)
                .offset_m(rng.range_f64(-5_000.0, 50_000.0), rng.range_f64(-5_000.0, 40_000.0));
            let got = grid.nearest(&q).unwrap();
            let want = &brute::knn_scan(&items, &q, 1)[0];
            assert_eq!(got.item, want.item, "query {q}");
        }
    }

    #[test]
    fn knn_matches_brute_force() {
        let items = random_items(300, 5);
        let grid = GridIndex::build(items.clone(), 3_000.0);
        let mut rng = SplitMix64::new(13);
        for _ in 0..15 {
            let q = GeoPoint::new(8.0, 53.0)
                .offset_m(rng.range_f64(0.0, 45_000.0), rng.range_f64(0.0, 35_000.0));
            let got: Vec<u32> = grid.knn(&q, 8).iter().map(|h| *h.item).collect();
            let want: Vec<u32> = brute::knn_scan(&items, &q, 8).iter().map(|h| *h.item).collect();
            assert_eq!(got, want, "query {q}");
        }
    }

    #[test]
    fn range_matches_brute_force() {
        let items = random_items(250, 31);
        let grid = GridIndex::build(items.clone(), 1_500.0);
        let q = GeoPoint::new(8.0, 53.0).offset_m(22_000.0, 18_000.0);
        for radius in [500.0, 4_000.0, 12_000.0] {
            let got: Vec<u32> = grid.range(&q, radius).iter().map(|h| *h.item).collect();
            let want: Vec<u32> =
                brute::range_scan(&items, &q, radius).iter().map(|h| *h.item).collect();
            assert_eq!(got, want, "radius {radius}");
        }
    }

    #[test]
    fn single_item_grid() {
        let p = GeoPoint::new(8.0, 53.0);
        let grid = GridIndex::build(vec![(p, 42u32)], 1_000.0);
        assert_eq!(grid.dims(), (1, 1));
        let hit = grid.nearest(&p.offset_m(10_000.0, 0.0)).unwrap();
        assert_eq!(*hit.item, 42);
    }

    #[test]
    fn query_far_outside_bounds_still_finds_nearest() {
        let items = random_items(50, 2);
        let grid = GridIndex::build(items.clone(), 2_000.0);
        let q = GeoPoint::new(9.5, 54.2); // well outside the data box
        let got = grid.nearest(&q).unwrap();
        let want = &brute::knn_scan(&items, &q, 1)[0];
        assert_eq!(got.item, want.item);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cell_size_panics() {
        let _: GridIndex<u32> = GridIndex::build(Vec::new(), 0.0);
    }

    #[test]
    fn k_exceeds_n() {
        let items = random_items(5, 6);
        let grid = GridIndex::build(items, 2_000.0);
        assert_eq!(grid.knn(&GeoPoint::new(8.1, 53.05), 50).len(), 5);
    }
}
