//! Linear-scan reference queries.
//!
//! These are (a) the *Brute-Force* baseline of the paper's evaluation —
//! "performs an exhaustive search over the entire pool of chargers" — and
//! (b) the oracle the property tests compare the quadtree and grid against.

use crate::Hit;
use ec_types::GeoPoint;

/// Exhaustive k-nearest-neighbour scan. Returns up to `k` hits sorted by
/// ascending distance (ties broken by scan order, which is insertion
/// order — the same tie rule the indexes use).
#[must_use]
pub fn knn_scan<'a, T>(items: &'a [(GeoPoint, T)], query: &GeoPoint, k: usize) -> Vec<Hit<'a, T>> {
    if k == 0 {
        return Vec::new();
    }
    let mut hits: Vec<Hit<'a, T>> = items
        .iter()
        .map(|(pos, item)| Hit { item, pos: *pos, dist_m: query.fast_dist_m(pos) })
        .collect();
    // Stable sort keeps insertion order among equidistant items.
    hits.sort_by(|a, b| a.dist_m.partial_cmp(&b.dist_m).expect("distances are finite"));
    hits.truncate(k);
    hits
}

/// Exhaustive radius scan: all items within `radius_m` of `query`,
/// sorted by ascending distance.
#[must_use]
pub fn range_scan<'a, T>(
    items: &'a [(GeoPoint, T)],
    query: &GeoPoint,
    radius_m: f64,
) -> Vec<Hit<'a, T>> {
    let mut hits: Vec<Hit<'a, T>> = items
        .iter()
        .filter_map(|(pos, item)| {
            let d = query.fast_dist_m(pos);
            (d <= radius_m).then_some(Hit { item, pos: *pos, dist_m: d })
        })
        .collect();
    hits.sort_by(|a, b| a.dist_m.partial_cmp(&b.dist_m).expect("distances are finite"));
    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items() -> Vec<(GeoPoint, u32)> {
        let origin = GeoPoint::new(8.2, 53.1);
        (0..10u32).map(|i| (origin.offset_m(f64::from(i) * 1_000.0, 0.0), i)).collect()
    }

    #[test]
    fn knn_returns_k_sorted() {
        let its = items();
        let q = GeoPoint::new(8.2, 53.1);
        let hits = knn_scan(&its, &q, 3);
        assert_eq!(hits.len(), 3);
        assert_eq!(*hits[0].item, 0);
        assert_eq!(*hits[1].item, 1);
        assert_eq!(*hits[2].item, 2);
        assert!(hits[0].dist_m <= hits[1].dist_m && hits[1].dist_m <= hits[2].dist_m);
    }

    #[test]
    fn knn_k_larger_than_n() {
        let its = items();
        let q = GeoPoint::new(8.2, 53.1);
        assert_eq!(knn_scan(&its, &q, 100).len(), 10);
    }

    #[test]
    fn knn_k_zero_is_empty() {
        let its = items();
        assert!(knn_scan(&its, &GeoPoint::new(8.2, 53.1), 0).is_empty());
    }

    #[test]
    fn range_filters_by_radius() {
        let its = items();
        let q = GeoPoint::new(8.2, 53.1);
        let hits = range_scan(&its, &q, 2_500.0);
        assert_eq!(hits.len(), 3); // 0 km, 1 km, 2 km
        assert!(hits.iter().all(|h| h.dist_m <= 2_500.0));
    }

    #[test]
    fn range_empty_when_radius_zero_and_no_colocated() {
        let its = items();
        let q = GeoPoint::new(9.9, 53.9);
        assert!(range_scan(&its, &q, 0.0).is_empty());
    }
}
