//! A point-region (PR) quadtree with bucketed leaves.
//!
//! This is the paper's *Index-Quadtree* baseline: a tree "partitioning a
//! two-dimensional space" that improves charger lookup from `O(n)` to
//! `O(log n)` (§V-A). Leaves hold up to `bucket` points; inserting into a
//! full leaf splits it into four quadrants, up to `max_depth`, after which
//! the leaf simply overflows (this keeps pathological co-located point sets
//! safe).
//!
//! Queries:
//! * [`QuadTree::knn`] — best-first search using a min-heap keyed by the
//!   minimum possible distance of each node's bounding box, the standard
//!   optimal kNN traversal;
//! * [`QuadTree::knn_iter`] — the same traversal as a lazy iterator, for
//!   consumers that stop on a distance or pruning threshold instead of a
//!   fixed `k`;
//! * [`QuadTree::range`] — radius query by box/circle overlap pruning.

use crate::{Hit, OrdF64};
use ec_types::{BoundingBox, GeoPoint};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Default leaf capacity before splitting.
pub const DEFAULT_BUCKET: usize = 16;
/// Default maximum tree depth.
pub const DEFAULT_MAX_DEPTH: usize = 16;

#[derive(Debug)]
enum Node {
    Leaf { entries: Vec<u32> },
    Internal { children: [usize; 4] },
}

/// A PR-quadtree over payloads `T`, keyed by [`GeoPoint`] positions.
///
/// ```
/// use ec_types::GeoPoint;
/// use spatial_index::QuadTree;
///
/// let origin = GeoPoint::new(8.2, 53.1);
/// let tree = QuadTree::bulk(
///     (0..100u32).map(|i| (origin.offset_m(f64::from(i) * 500.0, 0.0), i)).collect(),
/// );
/// let nearest = tree.knn(&origin, 3);
/// assert_eq!(*nearest[0].item, 0);
/// assert!(nearest[2].dist_m <= 1_100.0);
/// assert_eq!(tree.range(&origin, 1_600.0).len(), 4); // 0, 500, 1000, 1500 m
/// ```
#[derive(Debug)]
pub struct QuadTree<T> {
    items: Vec<(GeoPoint, T)>,
    nodes: Vec<Node>,
    boxes: Vec<BoundingBox>,
    bounds: BoundingBox,
    bucket: usize,
    max_depth: usize,
}

impl<T> QuadTree<T> {
    /// An empty tree over the region `bounds` with default tuning.
    #[must_use]
    pub fn new(bounds: BoundingBox) -> Self {
        Self::with_params(bounds, DEFAULT_BUCKET, DEFAULT_MAX_DEPTH)
    }

    /// An empty tree with explicit leaf capacity and depth limit.
    ///
    /// # Panics
    /// Panics when `bucket == 0`.
    #[must_use]
    pub fn with_params(bounds: BoundingBox, bucket: usize, max_depth: usize) -> Self {
        assert!(bucket > 0, "bucket capacity must be positive");
        Self {
            items: Vec::new(),
            nodes: vec![Node::Leaf { entries: Vec::new() }],
            boxes: vec![bounds],
            bounds,
            bucket,
            max_depth,
        }
    }

    /// Build a tree from a list of positioned payloads, sizing the bounds
    /// to the data extent (or an empty tree over a unit box when `items`
    /// is empty).
    #[must_use]
    pub fn bulk(items: Vec<(GeoPoint, T)>) -> Self {
        let bounds = BoundingBox::of_points(items.iter().map(|(p, _)| *p))
            .unwrap_or_else(|| BoundingBox::new(GeoPoint::new(0.0, 0.0), GeoPoint::new(1.0, 1.0)));
        let mut tree = Self::new(bounds);
        for (pos, item) in items {
            tree.insert(pos, item);
        }
        tree
    }

    /// Number of indexed items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no items are indexed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The region this tree covers.
    #[must_use]
    pub const fn bounds(&self) -> BoundingBox {
        self.bounds
    }

    /// Insert a payload at `pos`.
    ///
    /// # Panics
    /// Panics when `pos` lies outside the tree bounds — the region is fixed
    /// at construction (size it from the data with [`QuadTree::bulk`]).
    pub fn insert(&mut self, pos: GeoPoint, item: T) {
        assert!(
            self.bounds.contains(&pos),
            "point {pos} outside quadtree bounds; build with QuadTree::bulk or larger bounds"
        );
        let idx = u32::try_from(self.items.len()).expect("quadtree capacity exceeded");
        self.items.push((pos, item));
        self.insert_into(0, 0, idx);
    }

    fn insert_into(&mut self, node: usize, depth: usize, item_idx: u32) {
        match &mut self.nodes[node] {
            Node::Leaf { entries } => {
                entries.push(item_idx);
                if entries.len() > self.bucket && depth < self.max_depth {
                    self.split(node, depth);
                }
            }
            Node::Internal { children } => {
                let children = *children;
                let pos = self.items[item_idx as usize].0;
                let child = self.pick_quadrant(node, &pos);
                self.insert_into(children[child], depth + 1, item_idx);
            }
        }
    }

    /// Index of the quadrant of `node`'s box that `pos` falls in.
    fn pick_quadrant(&self, node: usize, pos: &GeoPoint) -> usize {
        let c = self.boxes[node].center();
        // Quadrant layout mirrors BoundingBox::quadrants(): [sw, se, nw, ne].
        let east = usize::from(pos.lon >= c.lon);
        let north = usize::from(pos.lat >= c.lat);
        north * 2 + east
    }

    fn split(&mut self, node: usize, depth: usize) {
        let entries =
            match std::mem::replace(&mut self.nodes[node], Node::Internal { children: [0; 4] }) {
                Node::Leaf { entries } => entries,
                Node::Internal { .. } => unreachable!("split called on internal node"),
            };
        let quads = self.boxes[node].quadrants();
        let base = self.nodes.len();
        for q in quads {
            self.nodes.push(Node::Leaf { entries: Vec::new() });
            self.boxes.push(q);
        }
        let children = [base, base + 1, base + 2, base + 3];
        self.nodes[node] = Node::Internal { children };
        for idx in entries {
            let pos = self.items[idx as usize].0;
            let child = self.pick_quadrant(node, &pos);
            self.insert_into(children[child], depth + 1, idx);
        }
    }

    /// The `k` nearest payloads to `query`, sorted by ascending distance.
    ///
    /// Best-first traversal: a min-heap holds both unexpanded tree nodes
    /// (keyed by their box's minimum distance) and individual points; when
    /// a point reaches the heap top it is provably the next nearest.
    #[must_use]
    pub fn knn(&self, query: &GeoPoint, k: usize) -> Vec<Hit<'_, T>> {
        if k == 0 {
            return Vec::new();
        }
        self.knn_iter(query).take(k).collect()
    }

    /// Lazily stream **all** payloads in ascending-distance order — the
    /// same best-first traversal as [`QuadTree::knn`], but pulled one hit
    /// at a time, so a consumer that stops early (a distance cutoff, a
    /// pruning threshold) never pays for ordering the rest of the tree.
    /// Equal distances tie-break by insertion order, matching
    /// `brute::knn_scan`'s stable sort.
    #[must_use]
    pub fn knn_iter(&self, query: &GeoPoint) -> KnnIter<'_, T> {
        let mut heap = BinaryHeap::new();
        if !self.is_empty() {
            heap.push(Reverse((
                OrdF64::new(self.boxes[0].min_dist_m(query)),
                0,
                KnnEntry::Node(0),
            )));
        }
        KnnIter { tree: self, query: *query, heap }
    }

    /// All payloads within `radius_m` of `query`, sorted by ascending
    /// distance.
    #[must_use]
    pub fn range(&self, query: &GeoPoint, radius_m: f64) -> Vec<Hit<'_, T>> {
        let mut out = Vec::new();
        let mut stack = vec![0usize];
        while let Some(n) = stack.pop() {
            if self.boxes[n].min_dist_m(query) > radius_m {
                continue;
            }
            match &self.nodes[n] {
                Node::Leaf { entries } => {
                    for &idx in entries {
                        let (pos, ref item) = self.items[idx as usize];
                        let d = query.fast_dist_m(&pos);
                        if d <= radius_m {
                            out.push(Hit { item, pos, dist_m: d });
                        }
                    }
                }
                Node::Internal { children } => stack.extend(children.iter().copied()),
            }
        }
        out.sort_by(|a, b| a.dist_m.partial_cmp(&b.dist_m).expect("distances are finite"));
        out
    }

    /// Iterate over all `(position, payload)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &(GeoPoint, T)> {
        self.items.iter()
    }
}

/// Heap entry of the best-first traversal: an unexpanded tree node or a
/// single point. Variant order matters — at equal `(distance, tie)` a
/// node expands before a point is yielded, keeping the traversal
/// deterministic.
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
enum KnnEntry {
    Node(usize),
    Item(u32),
}

/// Lazy ascending-distance stream over a [`QuadTree`], from
/// [`QuadTree::knn_iter`].
#[derive(Debug)]
pub struct KnnIter<'a, T> {
    tree: &'a QuadTree<T>,
    query: GeoPoint,
    heap: BinaryHeap<Reverse<(OrdF64, u32, KnnEntry)>>,
}

impl<'a, T> Iterator for KnnIter<'a, T> {
    type Item = Hit<'a, T>;

    fn next(&mut self) -> Option<Hit<'a, T>> {
        while let Some(Reverse((d, _tie, entry))) = self.heap.pop() {
            match entry {
                KnnEntry::Item(idx) => {
                    let (pos, ref item) = self.tree.items[idx as usize];
                    return Some(Hit { item, pos, dist_m: d.get() });
                }
                KnnEntry::Node(n) => match &self.tree.nodes[n] {
                    Node::Leaf { entries } => {
                        for &idx in entries {
                            let pos = self.tree.items[idx as usize].0;
                            self.heap.push(Reverse((
                                OrdF64::new(self.query.fast_dist_m(&pos)),
                                idx,
                                KnnEntry::Item(idx),
                            )));
                        }
                    }
                    Node::Internal { children } => {
                        for &c in children {
                            self.heap.push(Reverse((
                                OrdF64::new(self.tree.boxes[c].min_dist_m(&self.query)),
                                u32::try_from(c).expect("node count fits u32"),
                                KnnEntry::Node(c),
                            )));
                        }
                    }
                },
            }
        }
        None
    }
}

/// Identifier of a tile in a [`TileGrid`]: the row-major index
/// `iy * side + ix`, with tile `(0, 0)` at the south-west corner.
pub type TileId = u32;

/// Deepest tiling [`TileGrid`] accepts (`4096 × 4096` tiles). Beyond this
/// the double-precision centre arithmetic stops subdividing meaningfully
/// and enumeration becomes pathological.
pub const MAX_TILE_DEPTH: u32 = 12;

/// A fixed-depth quadtree tiling of a bounding box.
///
/// Depth `d` slices the box into a `2^d × 2^d` grid whose cells are exactly
/// the depth-`d` nodes a [`QuadTree`] over the same bounds would create:
/// tile membership descends by the same `>=`-centre quadrant arithmetic as
/// quadtree insertion, and a tile's box is produced by the same recursive
/// [`BoundingBox::quadrants`] subdivision. Membership and geometry therefore
/// agree *by construction* — a point's assigned tile always contains it,
/// with no epsilon reasoning at shared edges.
///
/// ```
/// use ec_types::{BoundingBox, GeoPoint};
/// use spatial_index::TileGrid;
///
/// let grid = TileGrid::new(
///     BoundingBox::new(GeoPoint::new(8.0, 53.0), GeoPoint::new(9.0, 54.0)),
///     2,
/// );
/// assert_eq!(grid.num_tiles(), 16);
/// let p = GeoPoint::new(8.1, 53.9);
/// assert!(grid.tile_box(grid.tile_of(&p)).contains(&p));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TileGrid {
    bounds: BoundingBox,
    depth: u32,
}

impl TileGrid {
    /// A tiling of `bounds` at `depth` (a `2^depth × 2^depth` grid).
    ///
    /// # Panics
    /// Panics when `depth > MAX_TILE_DEPTH`.
    #[must_use]
    pub fn new(bounds: BoundingBox, depth: u32) -> Self {
        assert!(depth <= MAX_TILE_DEPTH, "tile depth {depth} exceeds {MAX_TILE_DEPTH}");
        Self { bounds, depth }
    }

    /// The tiled region.
    #[must_use]
    pub const fn bounds(&self) -> BoundingBox {
        self.bounds
    }

    /// The subdivision depth.
    #[must_use]
    pub const fn depth(&self) -> u32 {
        self.depth
    }

    /// Tiles per axis (`2^depth`).
    #[must_use]
    pub const fn side(&self) -> u32 {
        1 << self.depth
    }

    /// Total tile count (`4^depth`).
    #[must_use]
    pub const fn num_tiles(&self) -> u32 {
        self.side() * self.side()
    }

    /// The tile `pos` belongs to.
    ///
    /// Points outside the bounds are clamped onto the boundary first, so
    /// every query has a home tile (trips may start just outside the tiled
    /// region); inside the bounds, descent uses the quadtree's `>=`-centre
    /// rule, so edge points deterministically go to the north/east side.
    #[must_use]
    pub fn tile_of(&self, pos: &GeoPoint) -> TileId {
        let p = GeoPoint {
            lon: pos.lon.clamp(self.bounds.min.lon, self.bounds.max.lon),
            lat: pos.lat.clamp(self.bounds.min.lat, self.bounds.max.lat),
        };
        let mut node = self.bounds;
        let (mut ix, mut iy) = (0u32, 0u32);
        for _ in 0..self.depth {
            let c = node.center();
            // Same arithmetic as QuadTree::pick_quadrant; quadrants() is
            // laid out [sw, se, nw, ne].
            let east = u32::from(p.lon >= c.lon);
            let north = u32::from(p.lat >= c.lat);
            node = node.quadrants()[(north * 2 + east) as usize];
            ix = ix * 2 + east;
            iy = iy * 2 + north;
        }
        iy * self.side() + ix
    }

    /// The bounding box of tile `id`.
    ///
    /// # Panics
    /// Panics when `id >= num_tiles()`.
    #[must_use]
    pub fn tile_box(&self, id: TileId) -> BoundingBox {
        assert!(id < self.num_tiles(), "tile id {id} out of range");
        let side = self.side();
        let (ix, iy) = (id % side, id / side);
        let mut node = self.bounds;
        for level in (0..self.depth).rev() {
            let east = (ix >> level) & 1;
            let north = (iy >> level) & 1;
            node = node.quadrants()[(north * 2 + east) as usize];
        }
        node
    }

    /// Every tile with its box, in id order.
    pub fn tiles(&self) -> impl Iterator<Item = (TileId, BoundingBox)> + '_ {
        (0..self.num_tiles()).map(|id| (id, self.tile_box(id)))
    }
}

/// Enumerate the tiles of `bounds` at `depth`, in id order — convenience
/// over [`TileGrid::tiles`] for one-shot callers.
#[must_use]
pub fn tiles_at_depth(bounds: BoundingBox, depth: u32) -> Vec<(TileId, BoundingBox)> {
    TileGrid::new(bounds, depth).tiles().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;
    use ec_types::SplitMix64;

    fn random_items(n: usize, seed: u64) -> Vec<(GeoPoint, u32)> {
        let mut rng = SplitMix64::new(seed);
        let origin = GeoPoint::new(8.0, 53.0);
        (0..n)
            .map(|i| {
                let p = origin.offset_m(rng.range_f64(0.0, 45_000.0), rng.range_f64(0.0, 35_000.0));
                (p, u32::try_from(i).unwrap())
            })
            .collect()
    }

    #[test]
    fn empty_tree_queries() {
        let t: QuadTree<u32> = QuadTree::bulk(Vec::new());
        assert!(t.is_empty());
        assert!(t.knn(&GeoPoint::new(0.5, 0.5), 3).is_empty());
        assert!(t.range(&GeoPoint::new(0.5, 0.5), 1_000.0).is_empty());
    }

    #[test]
    fn knn_matches_brute_force() {
        let items = random_items(500, 42);
        let tree = QuadTree::bulk(items.clone());
        let mut rng = SplitMix64::new(7);
        for _ in 0..20 {
            let q = GeoPoint::new(8.0, 53.0)
                .offset_m(rng.range_f64(0.0, 45_000.0), rng.range_f64(0.0, 35_000.0));
            let got = tree.knn(&q, 10);
            let want = brute::knn_scan(&items, &q, 10);
            let got_ids: Vec<u32> = got.iter().map(|h| *h.item).collect();
            let want_ids: Vec<u32> = want.iter().map(|h| *h.item).collect();
            assert_eq!(got_ids, want_ids, "query at {q}");
        }
    }

    #[test]
    fn range_matches_brute_force() {
        let items = random_items(300, 9);
        let tree = QuadTree::bulk(items.clone());
        let q = GeoPoint::new(8.0, 53.0).offset_m(20_000.0, 15_000.0);
        for radius in [0.0, 1_000.0, 5_000.0, 50_000.0] {
            let got: Vec<u32> = tree.range(&q, radius).iter().map(|h| *h.item).collect();
            let want: Vec<u32> =
                brute::range_scan(&items, &q, radius).iter().map(|h| *h.item).collect();
            assert_eq!(got, want, "radius {radius}");
        }
    }

    #[test]
    fn knn_results_sorted_ascending() {
        let items = random_items(200, 3);
        let tree = QuadTree::bulk(items);
        let hits = tree.knn(&GeoPoint::new(8.1, 53.1), 50);
        assert_eq!(hits.len(), 50);
        for w in hits.windows(2) {
            assert!(w[0].dist_m <= w[1].dist_m);
        }
    }

    #[test]
    fn handles_colocated_points_beyond_bucket() {
        let p = GeoPoint::new(8.0, 53.0);
        let items: Vec<(GeoPoint, u32)> = (0..100).map(|i| (p, i)).collect();
        let tree = QuadTree::with_params(BoundingBox::new(p, p.offset_m(1_000.0, 1_000.0)), 4, 6);
        let mut tree = tree;
        for (pos, item) in items {
            tree.insert(pos, item);
        }
        assert_eq!(tree.len(), 100);
        assert_eq!(tree.knn(&p, 100).len(), 100);
    }

    #[test]
    #[should_panic(expected = "outside quadtree bounds")]
    fn insert_outside_bounds_panics() {
        let mut t: QuadTree<u32> =
            QuadTree::new(BoundingBox::new(GeoPoint::new(0.0, 0.0), GeoPoint::new(1.0, 1.0)));
        t.insert(GeoPoint::new(5.0, 5.0), 1);
    }

    #[test]
    fn k_larger_than_n_returns_all() {
        let items = random_items(7, 1);
        let tree = QuadTree::bulk(items);
        assert_eq!(tree.knn(&GeoPoint::new(8.0, 53.0), 99).len(), 7);
    }

    #[test]
    fn knn_iter_streams_full_tree_in_brute_order() {
        let items = random_items(300, 11);
        let tree = QuadTree::bulk(items.clone());
        let q = GeoPoint::new(8.0, 53.0).offset_m(12_000.0, 9_000.0);
        let streamed: Vec<u32> = tree.knn_iter(&q).map(|h| *h.item).collect();
        let want: Vec<u32> =
            brute::knn_scan(&items, &q, items.len()).iter().map(|h| *h.item).collect();
        assert_eq!(streamed, want);
        // Distances come out non-decreasing, so a consumer may stop at a
        // distance cutoff without missing anything closer.
        let dists: Vec<f64> = tree.knn_iter(&q).map(|h| h.dist_m).collect();
        for w in dists.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!(tree.knn_iter(&q).next().is_some());
        let empty: QuadTree<u32> = QuadTree::bulk(Vec::new());
        assert!(empty.knn_iter(&q).next().is_none());
    }

    #[test]
    fn iter_preserves_insertion_order() {
        let items = random_items(10, 5);
        let tree = QuadTree::bulk(items.clone());
        let collected: Vec<u32> = tree.iter().map(|(_, i)| *i).collect();
        assert_eq!(collected, (0..10).collect::<Vec<u32>>());
    }

    fn unit_box() -> BoundingBox {
        BoundingBox::new(GeoPoint::new(8.0, 53.0), GeoPoint::new(9.0, 54.0))
    }

    #[test]
    fn depth_zero_grid_is_one_tile_equal_to_bounds() {
        let grid = TileGrid::new(unit_box(), 0);
        assert_eq!(grid.num_tiles(), 1);
        assert_eq!(grid.tile_of(&GeoPoint::new(8.4, 53.7)), 0);
        assert_eq!(grid.tile_box(0), unit_box());
    }

    #[test]
    fn tile_ids_are_row_major_from_southwest() {
        let grid = TileGrid::new(unit_box(), 1);
        assert_eq!(grid.tile_of(&GeoPoint::new(8.2, 53.2)), 0); // sw
        assert_eq!(grid.tile_of(&GeoPoint::new(8.8, 53.2)), 1); // se
        assert_eq!(grid.tile_of(&GeoPoint::new(8.2, 53.8)), 2); // nw
        assert_eq!(grid.tile_of(&GeoPoint::new(8.8, 53.8)), 3); // ne
    }

    #[test]
    fn centre_points_break_toward_north_east() {
        // `>=` on both axes, exactly like QuadTree::pick_quadrant.
        let grid = TileGrid::new(unit_box(), 1);
        assert_eq!(grid.tile_of(&GeoPoint::new(8.5, 53.5)), 3);
    }

    #[test]
    fn out_of_bounds_points_clamp_onto_the_boundary() {
        let grid = TileGrid::new(unit_box(), 2);
        assert_eq!(grid.tile_of(&GeoPoint::new(7.0, 52.0)), 0);
        assert_eq!(grid.tile_of(&GeoPoint::new(10.0, 55.0)), grid.num_tiles() - 1);
        assert_eq!(grid.tile_of(&GeoPoint::new(7.0, 55.0)), 12); // nw corner tile
    }

    #[test]
    fn grid_corners_reproduce_the_bounds_exactly() {
        // Quadrant subdivision propagates the outer corners verbatim, so
        // the extreme tiles' corners equal the grid bounds bit-for-bit.
        let grid = TileGrid::new(unit_box(), 3);
        assert_eq!(grid.tile_box(0).min, unit_box().min);
        assert_eq!(grid.tile_box(grid.num_tiles() - 1).max, unit_box().max);
    }

    #[test]
    fn tiles_at_depth_enumerates_in_id_order() {
        let tiles = tiles_at_depth(unit_box(), 2);
        assert_eq!(tiles.len(), 16);
        for (i, (id, bx)) in tiles.iter().enumerate() {
            assert_eq!(*id, u32::try_from(i).unwrap());
            assert_eq!(*bx, TileGrid::new(unit_box(), 2).tile_box(*id));
        }
    }
}
