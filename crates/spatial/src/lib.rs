//! # `spatial-index` — spatial indexes for charger lookup
//!
//! The paper's evaluation compares three access paths over the charger set
//! `B` (§V-A): an exhaustive **Brute-Force** scan, an **Index-Quadtree**
//! ("a specialized tree data structure used for partitioning a
//! two-dimensional space", improving lookup from `O(n)` to `O(log n)`),
//! and EcoCharge's cached candidate sets. This crate provides:
//!
//! * [`QuadTree`] — a point-region quadtree with bucketed leaves, best-first
//!   k-nearest-neighbour search and radius range queries (the
//!   Index-Quadtree baseline and the filtering-phase index);
//! * [`GridIndex`] — a uniform grid with ring-expansion nearest search, the
//!   classic main-memory CkNN structure (Mouratidis et al., Xiong et al.,
//!   cited in §VI-B) and the structure `roadnet` uses for nearest-node
//!   snapping;
//! * [`KdTree`] — a median-split balanced 2-d tree, robust to the heavily
//!   skewed point distributions real charger fleets have;
//! * [`brute`] — linear-scan reference implementations the property tests
//!   compare the indexes against.
//!
//! All indexes are generic over a payload `T` and position points by
//! [`ec_types::GeoPoint`]; distances are metres (equirectangular
//! — see `ec-types`).

pub mod brute;
pub mod grid;
pub mod kdtree;
pub mod ordf64;
pub mod quadtree;

pub use brute::{knn_scan, range_scan};
pub use grid::GridIndex;
pub use kdtree::KdTree;
pub use ordf64::OrdF64;
pub use quadtree::{tiles_at_depth, KnnIter, QuadTree, TileGrid, TileId, MAX_TILE_DEPTH};

use ec_types::GeoPoint;

/// A search hit: payload reference plus the indexed position and its
/// distance from the query point in metres.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit<'a, T> {
    /// The indexed payload.
    pub item: &'a T,
    /// The indexed position.
    pub pos: GeoPoint,
    /// Distance from the query point, metres.
    pub dist_m: f64,
}
