//! A total-order wrapper for finite `f64` priorities.
//!
//! `BinaryHeap` needs `Ord`; distances are `f64`. [`OrdF64`] asserts
//! finiteness at construction, which makes the `Ord` implementation sound.

use std::cmp::Ordering;

/// A finite `f64` with a total order, usable as a heap key.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrdF64(f64);

impl OrdF64 {
    /// Wrap a finite value.
    ///
    /// # Panics
    /// Panics on NaN or infinity.
    #[must_use]
    pub fn new(v: f64) -> Self {
        assert!(v.is_finite(), "OrdF64 requires a finite value, got {v}");
        Self(v)
    }

    /// The wrapped value.
    #[must_use]
    pub const fn get(self) -> f64 {
        self.0
    }
}

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        // Finiteness is guaranteed by the constructor.
        self.0.partial_cmp(&other.0).expect("finite floats always compare")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_like_f64() {
        assert!(OrdF64::new(1.0) < OrdF64::new(2.0));
        assert_eq!(OrdF64::new(3.5).get(), 3.5);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        let _ = OrdF64::new(f64::NAN);
    }

    #[test]
    fn works_in_binary_heap() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut h = BinaryHeap::new();
        for v in [3.0, 1.0, 2.0] {
            h.push(Reverse(OrdF64::new(v)));
        }
        assert_eq!(h.pop().unwrap().0.get(), 1.0);
        assert_eq!(h.pop().unwrap().0.get(), 2.0);
        assert_eq!(h.pop().unwrap().0.get(), 3.0);
    }
}
