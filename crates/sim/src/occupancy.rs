//! Charger busy-interval bookkeeping.
//!
//! The availability component estimates *other people's* demand; within
//! the simulated fleet, occupancy is a hard physical constraint — one
//! vehicle per plug per interval (capacity per charger kind). The book
//! records reservations and answers "is b free at [t0, t1)?", which is
//! how the closed loop turns over-recommended chargers into visible
//! conflicts.

use chargers::ChargerKind;
use ec_types::{ChargerId, SimTime};
use std::collections::HashMap;

/// Plug count per charger kind (a DC plaza parks several cars, a street
/// AC post one).
#[must_use]
pub fn plug_count(kind: ChargerKind) -> usize {
    match kind {
        ChargerKind::Ac11 => 1,
        ChargerKind::Ac22 => 2,
        ChargerKind::Dc50 => 3,
        ChargerKind::Dc150 => 4,
    }
}

/// Reservation ledger: per charger, the list of busy `[start, end)`
/// intervals (one entry per occupied plug-interval).
#[derive(Debug, Default)]
pub struct OccupancyBook {
    reservations: HashMap<ChargerId, Vec<(SimTime, SimTime)>>,
}

impl OccupancyBook {
    /// An empty book.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// How many plugs of `charger` are taken during any part of
    /// `[start, end)`.
    #[must_use]
    pub fn concurrent(&self, charger: ChargerId, start: SimTime, end: SimTime) -> usize {
        self.reservations
            .get(&charger)
            .map(|v| v.iter().filter(|&&(s, e)| s < end && start < e).count())
            .unwrap_or(0)
    }

    /// Is a plug free for the whole of `[start, end)` given the charger's
    /// kind?
    #[must_use]
    pub fn is_free(
        &self,
        charger: ChargerId,
        kind: ChargerKind,
        start: SimTime,
        end: SimTime,
    ) -> bool {
        self.concurrent(charger, start, end) < plug_count(kind)
    }

    /// Reserve a plug for `[start, end)`.
    ///
    /// # Panics
    /// Panics when `end <= start`.
    pub fn reserve(&mut self, charger: ChargerId, start: SimTime, end: SimTime) {
        assert!(end > start, "reservation must have positive duration");
        self.reservations.entry(charger).or_default().push((start, end));
    }

    /// Total reservations recorded.
    #[must_use]
    pub fn total_reservations(&self) -> usize {
        self.reservations.values().map(Vec::len).sum()
    }

    /// Peak simultaneous occupancy observed for `charger`.
    #[must_use]
    pub fn peak(&self, charger: ChargerId) -> usize {
        let Some(v) = self.reservations.get(&charger) else {
            return 0;
        };
        // Sweep over interval endpoints.
        let mut events: Vec<(SimTime, i32)> = Vec::with_capacity(v.len() * 2);
        for &(s, e) in v {
            events.push((s, 1));
            events.push((e, -1));
        }
        events.sort_by_key(|&(t, delta)| (t, delta)); // ends (-1) before starts at same t
        let mut cur = 0i32;
        let mut peak = 0i32;
        for (_, d) in events {
            cur += d;
            peak = peak.max(cur);
        }
        peak.max(0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_types::DayOfWeek;

    fn t(h: u64, m: u64) -> SimTime {
        SimTime::at(0, DayOfWeek::Tue, h, m)
    }

    #[test]
    fn single_plug_blocks_overlap() {
        let mut book = OccupancyBook::new();
        let b = ChargerId(1);
        assert!(book.is_free(b, ChargerKind::Ac11, t(10, 0), t(11, 0)));
        book.reserve(b, t(10, 0), t(11, 0));
        assert!(!book.is_free(b, ChargerKind::Ac11, t(10, 30), t(11, 30)));
        // Back-to-back is fine: [10,11) then [11,12).
        assert!(book.is_free(b, ChargerKind::Ac11, t(11, 0), t(12, 0)));
        // Disjoint earlier window is fine.
        assert!(book.is_free(b, ChargerKind::Ac11, t(8, 0), t(9, 0)));
    }

    #[test]
    fn multi_plug_kinds_absorb_more() {
        let mut book = OccupancyBook::new();
        let b = ChargerId(2);
        for _ in 0..3 {
            assert!(book.is_free(b, ChargerKind::Dc50, t(10, 0), t(11, 0)));
            book.reserve(b, t(10, 0), t(11, 0));
        }
        // Dc50 has 3 plugs: a 4th concurrent car is refused.
        assert!(!book.is_free(b, ChargerKind::Dc50, t(10, 0), t(11, 0)));
        assert_eq!(book.concurrent(b, t(10, 0), t(11, 0)), 3);
        assert_eq!(book.peak(b), 3);
    }

    #[test]
    fn peak_tracks_maximum_overlap() {
        let mut book = OccupancyBook::new();
        let b = ChargerId(3);
        book.reserve(b, t(9, 0), t(12, 0));
        book.reserve(b, t(10, 0), t(11, 0));
        book.reserve(b, t(11, 30), t(13, 0));
        assert_eq!(book.peak(b), 2);
        assert_eq!(book.peak(ChargerId(99)), 0);
        assert_eq!(book.total_reservations(), 3);
    }

    #[test]
    #[should_panic(expected = "positive duration")]
    fn zero_length_reservation_panics() {
        let mut book = OccupancyBook::new();
        book.reserve(ChargerId(0), t(10, 0), t(10, 0));
    }
}
