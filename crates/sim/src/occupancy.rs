//! Charger busy-interval bookkeeping.
//!
//! The availability component estimates *other people's* demand; within
//! the simulated fleet, occupancy is a hard physical constraint — one
//! vehicle per plug per interval (capacity per charger kind). The book
//! records reservations and answers "is b free at [t0, t1)?", which is
//! how the closed loop turns over-recommended chargers into visible
//! conflicts.

use chargers::ChargerKind;
use ec_types::{ChargerId, SimTime};
use std::collections::HashMap;

/// Plug count per charger kind (a DC plaza parks several cars, a street
/// AC post one).
#[must_use]
pub fn plug_count(kind: ChargerKind) -> usize {
    match kind {
        ChargerKind::Ac11 => 1,
        ChargerKind::Ac22 => 2,
        ChargerKind::Dc50 => 3,
        ChargerKind::Dc150 => 4,
    }
}

/// Reservation ledger: per charger, the list of busy `[start, end)`
/// intervals (one entry per occupied plug-interval).
#[derive(Debug, Default)]
pub struct OccupancyBook {
    reservations: HashMap<ChargerId, Vec<(SimTime, SimTime)>>,
}

impl OccupancyBook {
    /// An empty book.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// How many plugs of `charger` are taken during any part of
    /// `[start, end)`.
    #[must_use]
    pub fn concurrent(&self, charger: ChargerId, start: SimTime, end: SimTime) -> usize {
        self.reservations
            .get(&charger)
            .map(|v| v.iter().filter(|&&(s, e)| s < end && start < e).count())
            .unwrap_or(0)
    }

    /// Is a plug free for the whole of `[start, end)` given the charger's
    /// kind?
    #[must_use]
    pub fn is_free(
        &self,
        charger: ChargerId,
        kind: ChargerKind,
        start: SimTime,
        end: SimTime,
    ) -> bool {
        self.concurrent(charger, start, end) < plug_count(kind)
    }

    /// Reserve a plug for `[start, end)`.
    ///
    /// # Panics
    /// Panics when `end <= start`.
    pub fn reserve(&mut self, charger: ChargerId, start: SimTime, end: SimTime) {
        assert!(end > start, "reservation must have positive duration");
        self.reservations.entry(charger).or_default().push((start, end));
    }

    /// Total reservations recorded.
    #[must_use]
    pub fn total_reservations(&self) -> usize {
        self.reservations.values().map(Vec::len).sum()
    }

    /// Drop every reservation that ended at or before `watermark` and
    /// return how many were removed. Callers that only ever query windows
    /// at or after their current virtual time (the day-simulation engine
    /// and the closed-loop outcome world both advance monotonically) can
    /// compact behind that time without changing any answer: an interval
    /// with `end <= watermark` can never overlap a `[start, end)` query
    /// with `start >= watermark`. Keeps the per-charger ledgers bounded
    /// by *concurrent* demand instead of growing with the whole day's
    /// history. Note [`OccupancyBook::peak`] and
    /// [`OccupancyBook::total_reservations`] then report the compacted
    /// suffix only — take those readings before compacting past the
    /// window of interest.
    pub fn compact(&mut self, watermark: SimTime) -> usize {
        let mut removed = 0;
        self.reservations.retain(|_, v| {
            let before = v.len();
            v.retain(|&(_, end)| end > watermark);
            removed += before - v.len();
            !v.is_empty()
        });
        removed
    }

    /// Peak simultaneous occupancy observed for `charger`.
    #[must_use]
    pub fn peak(&self, charger: ChargerId) -> usize {
        let Some(v) = self.reservations.get(&charger) else {
            return 0;
        };
        // Sweep over interval endpoints.
        let mut events: Vec<(SimTime, i32)> = Vec::with_capacity(v.len() * 2);
        for &(s, e) in v {
            events.push((s, 1));
            events.push((e, -1));
        }
        events.sort_by_key(|&(t, delta)| (t, delta)); // ends (-1) before starts at same t
        let mut cur = 0i32;
        let mut peak = 0i32;
        for (_, d) in events {
            cur += d;
            peak = peak.max(cur);
        }
        peak.max(0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_types::DayOfWeek;

    fn t(h: u64, m: u64) -> SimTime {
        SimTime::at(0, DayOfWeek::Tue, h, m)
    }

    #[test]
    fn single_plug_blocks_overlap() {
        let mut book = OccupancyBook::new();
        let b = ChargerId(1);
        assert!(book.is_free(b, ChargerKind::Ac11, t(10, 0), t(11, 0)));
        book.reserve(b, t(10, 0), t(11, 0));
        assert!(!book.is_free(b, ChargerKind::Ac11, t(10, 30), t(11, 30)));
        // Back-to-back is fine: [10,11) then [11,12).
        assert!(book.is_free(b, ChargerKind::Ac11, t(11, 0), t(12, 0)));
        // Disjoint earlier window is fine.
        assert!(book.is_free(b, ChargerKind::Ac11, t(8, 0), t(9, 0)));
    }

    #[test]
    fn multi_plug_kinds_absorb_more() {
        let mut book = OccupancyBook::new();
        let b = ChargerId(2);
        for _ in 0..3 {
            assert!(book.is_free(b, ChargerKind::Dc50, t(10, 0), t(11, 0)));
            book.reserve(b, t(10, 0), t(11, 0));
        }
        // Dc50 has 3 plugs: a 4th concurrent car is refused.
        assert!(!book.is_free(b, ChargerKind::Dc50, t(10, 0), t(11, 0)));
        assert_eq!(book.concurrent(b, t(10, 0), t(11, 0)), 3);
        assert_eq!(book.peak(b), 3);
    }

    #[test]
    fn peak_tracks_maximum_overlap() {
        let mut book = OccupancyBook::new();
        let b = ChargerId(3);
        book.reserve(b, t(9, 0), t(12, 0));
        book.reserve(b, t(10, 0), t(11, 0));
        book.reserve(b, t(11, 30), t(13, 0));
        assert_eq!(book.peak(b), 2);
        assert_eq!(book.peak(ChargerId(99)), 0);
        assert_eq!(book.total_reservations(), 3);
    }

    #[test]
    #[should_panic(expected = "positive duration")]
    fn zero_length_reservation_panics() {
        let mut book = OccupancyBook::new();
        book.reserve(ChargerId(0), t(10, 0), t(10, 0));
    }

    #[test]
    fn compact_drops_expired_and_preserves_future_answers() {
        let mut book = OccupancyBook::new();
        let b = ChargerId(4);
        book.reserve(b, t(8, 0), t(9, 0)); // fully past the watermark
        book.reserve(b, t(9, 30), t(10, 30)); // straddles it
        book.reserve(b, t(11, 0), t(12, 0)); // fully after
        book.reserve(ChargerId(5), t(7, 0), t(8, 0)); // whole charger expires
        let removed = book.compact(t(10, 0));
        assert_eq!(removed, 2);
        assert_eq!(book.total_reservations(), 2);
        // Queries at or after the watermark are unchanged: the straddling
        // interval still blocks, the expired ones never could.
        assert!(!book.is_free(b, ChargerKind::Ac11, t(10, 0), t(10, 15)));
        assert!(book.is_free(b, ChargerKind::Ac11, t(10, 30), t(11, 0)));
        assert_eq!(book.concurrent(ChargerId(5), t(10, 0), t(23, 0)), 0);
    }

    #[test]
    fn memory_stays_bounded_under_periodic_compaction() {
        // Regression: the ledger used to grow with the whole history. A
        // rolling load of back-to-back one-hour sessions on one charger
        // must leave at most the currently-live interval behind once
        // compaction follows the clock.
        let mut book = OccupancyBook::new();
        let b = ChargerId(1);
        let mut high_water = 0;
        for hour in 0..2_000u64 {
            let s = SimTime::from_secs(hour * 3_600);
            let e = SimTime::from_secs((hour + 1) * 3_600);
            book.reserve(b, s, e);
            book.compact(s);
            high_water = high_water.max(book.total_reservations());
        }
        assert!(high_water <= 2, "ledger grew to {high_water} entries under compaction");
        // And without compaction it really does grow — the condition the
        // watermark exists to prevent.
        let mut unbounded = OccupancyBook::new();
        for hour in 0..100u64 {
            let s = SimTime::from_secs(hour * 3_600);
            unbounded.reserve(b, s, SimTime::from_secs((hour + 1) * 3_600));
        }
        assert_eq!(unbounded.total_reservations(), 100);
    }
}
