//! # `fleetsim` — closed-loop fleet-day simulation
//!
//! The paper's evaluation scores Offering Tables *open-loop*: each table
//! is graded against an oracle, but nobody actually drives to a charger.
//! This crate closes the loop, in the spirit of the deployment the paper
//! motivates (§I's taxi/parent/shopper scenarios and §VII's congestion
//! monitoring): a fleet of battery-modelled vehicles runs scheduled trips
//! through a simulated day; after each trip the vehicle follows its
//! charging policy's top feasible offer, *physically occupies* the charger
//! for its idle window (blocking other vehicles), harvests the solar
//! energy the 15-minute production series actually delivers, and tops up
//! from the grid for whatever the sun did not cover.
//!
//! The outcome metrics are the system-level quantities the paper's
//! renewable-hoarding story is about: clean vs grid energy, detour energy
//! burned, and charger contention events.
//!
//! * [`schedule`] — per-vehicle day schedules (trips + idle windows);
//! * [`occupancy`] — charger busy-interval bookkeeping;
//! * [`engine`] — the event loop and [`DayOutcome`] metrics;
//! * [`policy`] — pluggable charging policies (EcoCharge, nearest,
//!   random);
//! * [`service`] — the serving-loop bridge: every leg of every schedule
//!   becomes one session in the fleet-scale
//!   [`ecocharge_session::SessionService`].

pub mod engine;
pub mod occupancy;
pub mod policy;
pub mod schedule;
pub mod service;

pub use engine::{simulate_day, DayOutcome, FleetSimConfig};
pub use occupancy::OccupancyBook;
pub use policy::Policy;
pub use schedule::{build_schedules, DaySchedule, ScheduleParams};
pub use service::{
    recover_fleet, serve_fleet, serve_fleet_journaled, serve_fleet_sharded, ServeError,
};
