//! The day-simulation event loop.
//!
//! Legs are processed in arrival order (so occupancy is causally
//! consistent across the fleet). At each leg end the vehicle's policy
//! ranks chargers; the vehicle drives to the first offer with a free plug
//! (each occupied offer it has to skip is a **conflict** — the congestion
//! signal §VII wants monitored), reserves the plug for its charging
//! window, harvests what the charger's 15-minute solar production series
//! actually delivers during that window, and buys the remainder of its
//! target energy from the grid.

use crate::occupancy::OccupancyBook;
use crate::policy::Policy;
use crate::schedule::{build_schedules, ScheduleParams};
use chargers::{synth_fleet, FleetParams};
use ec_models::ProductionSeries;
use ec_types::{ChargerId, NodeId, SimDuration};
use ecocharge_core::{EcoChargeConfig, QueryCtx};
use eis::{InfoServer, SimProviders};
use roadnet::{metric_cost, CostMetric, RoadGraph, SearchEngine, SearchPool};
use std::collections::HashMap;

/// Configuration of one simulated fleet day.
#[derive(Debug, Clone)]
pub struct FleetSimConfig {
    /// Fleet schedules (vehicle count, day, trip lengths).
    pub schedule: ScheduleParams,
    /// The ranking configuration used by policy queries.
    pub ecocharge: EcoChargeConfig,
    /// Chargers placed on the network.
    pub charger_count: usize,
    /// Energy the driver wants per idle stop, kWh.
    pub charge_target_kwh: f64,
    /// Longest time a vehicle will stay plugged, hours.
    pub max_plug_h: f64,
    /// Fraction of the charger fleet backed by net-metered wind.
    pub wind_fraction: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for FleetSimConfig {
    fn default() -> Self {
        Self {
            schedule: ScheduleParams::default(),
            ecocharge: EcoChargeConfig::default(),
            charger_count: 300,
            charge_target_kwh: 15.0,
            max_plug_h: 2.0,
            wind_fraction: 0.0,
            seed: 1,
        }
    }
}

/// System-level outcome of one simulated day.
#[derive(Debug, Clone, PartialEq)]
pub struct DayOutcome {
    /// Policy name.
    pub policy: &'static str,
    /// Vehicles simulated.
    pub vehicles: usize,
    /// Idle windows that ended in a successful charge.
    pub charge_stops: usize,
    /// Offers skipped because the charger was occupied (congestion
    /// events).
    pub conflicts: usize,
    /// Idle windows where no ranked offer was usable.
    pub skipped: usize,
    /// Solar self-consumption harvested, kWh.
    pub clean_kwh: f64,
    /// Grid energy imported to reach the per-stop target, kWh.
    pub grid_kwh: f64,
    /// Traction energy burned on detours to and from chargers, kWh.
    pub detour_kwh: f64,
}

impl DayOutcome {
    /// Fraction of delivered charge that came from solar.
    #[must_use]
    pub fn clean_fraction(&self) -> f64 {
        let total = self.clean_kwh + self.grid_kwh;
        if total <= 0.0 {
            0.0
        } else {
            self.clean_kwh / total
        }
    }
}

/// The out-and-back detour to one charger: `(travel_secs, kwh_out,
/// kwh_back)`, or `None` when unreachable in either direction.
///
/// Dispatches on the configured detour backend: point-to-point queries go
/// through the bidirectional engine (half the settled nodes of a plain
/// Dijkstra) or, under [`DetourBackend::Ch`](roadnet::DetourBackend),
/// the shared Contraction-Hierarchy index.
fn detour_for(
    ctx: &QueryCtx<'_>,
    engine: &mut SearchEngine,
    dest: NodeId,
    node: NodeId,
) -> Option<(f64, f64, f64)> {
    let g = ctx.graph;
    match ctx.resolved_backend() {
        roadnet::DetourBackend::Auto => unreachable!("resolved_backend never returns Auto"),
        roadnet::DetourBackend::Dijkstra => {
            let (secs, _) = engine.point_to_point(g, dest, node, metric_cost(CostMetric::Time))?;
            let (e_fwd, _) =
                engine.point_to_point(g, dest, node, metric_cost(CostMetric::Energy))?;
            let (e_ret, _) =
                engine.point_to_point(g, node, dest, metric_cost(CostMetric::Energy))?;
            Some((secs, e_fwd, e_ret))
        }
        roadnet::DetourBackend::Ch => {
            let ch = ctx.detour_ch();
            let secs = ch.time.one_to_many(g, engine.ch_scratch(), dest, &[node])[0]?.cost;
            let e_fwd = ch.energy.one_to_many(g, engine.ch_scratch(), dest, &[node])[0]?.cost;
            let e_ret = ch.energy.many_to_one(g, engine.ch_scratch(), dest, &[node])[0]?.cost;
            Some((secs, e_fwd, e_ret))
        }
    }
}

/// Run one fleet day under `policy` on a freshly built world (network
/// passed in so policies can be compared on the identical world).
#[must_use]
pub fn simulate_day(g: &RoadGraph, policy: &mut Policy, config: &FleetSimConfig) -> DayOutcome {
    let fleet = synth_fleet(
        g,
        &FleetParams {
            count: config.charger_count.min(g.num_nodes()),
            seed: config.seed,
            wind_fraction: config.wind_fraction,
        },
    );
    let sims = SimProviders::new(config.seed);
    let server = InfoServer::from_sims(sims.clone());
    let ctx = QueryCtx::new(g, &fleet, &server, &sims, config.ecocharge);
    let schedules = build_schedules(g, &config.schedule);

    // Chronological leg order across the fleet.
    let mut events: Vec<(usize, usize)> = schedules
        .iter()
        .enumerate()
        .flat_map(|(s, sched)| (0..sched.legs.len()).map(move |l| (s, l)))
        .collect();
    events.sort_by_key(|&(s, l)| schedules[s].legs[l].arrival(g));

    let mut engine = SearchEngine::new();
    let pool = SearchPool::new();
    let threads = config.ecocharge.threads;
    let mut book = OccupancyBook::new();
    let mut series_cache: HashMap<ChargerId, ProductionSeries> = HashMap::new();
    let mut out = DayOutcome {
        policy: policy.name(),
        vehicles: schedules.len(),
        charge_stops: 0,
        conflicts: 0,
        skipped: 0,
        clean_kwh: 0.0,
        grid_kwh: 0.0,
        detour_kwh: 0.0,
    };

    for (s, l) in events {
        let sched = &schedules[s];
        let trip = &sched.legs[l];
        let arrive = trip.arrival(g);
        // Events run in arrival order and every reservation starts at or
        // after its event's arrival, so intervals fully behind the clock
        // can never block a later query — drop them to keep the ledger
        // bounded by concurrent demand, not day length.
        book.compact(arrive);
        let idle = sched.idle_after(g, l, SimDuration::from_hours(1));
        if idle.as_secs() < 20 * 60 {
            continue; // too short to bother plugging in
        }
        let Ok(ranked) = policy.rank(&ctx, trip, arrive) else {
            out.skipped += 1;
            continue;
        };

        let dest = trip.route.end();
        // With parallel execution enabled, fan the per-candidate detour
        // searches out before the decision loop. The occupancy decisions
        // below stay strictly sequential (they are causally ordered), so
        // the outcome is bit-identical to the lazy sequential path — the
        // precompute merely does the searches for candidates the loop
        // would have stopped before reaching.
        let precomputed: Option<Vec<Option<(f64, f64, f64)>>> = (threads > 1).then(|| {
            ec_exec::parallel_map(
                threads,
                &ranked,
                |_| pool.checkout(),
                |e, _, &cid| detour_for(&ctx, e, dest, ctx.fleet.get(cid).node),
            )
        });

        let mut charged = false;
        for (i, &cid) in ranked.iter().enumerate() {
            let charger = ctx.fleet.get(cid);
            // Out-and-back detour (energy + travel time there).
            let detour = match &precomputed {
                Some(d) => d[i],
                None => detour_for(&ctx, &mut engine, dest, charger.node),
            };
            let Some((secs, e_fwd, e_ret)) = detour else {
                continue;
            };

            let start = arrive + SimDuration::from_secs_f64(secs);
            let budget_h = (idle.as_hours_f64() - 2.0 * secs / 3_600.0).min(config.max_plug_h);
            if budget_h < 0.25 {
                continue; // detour eats the window
            }
            let end = start + SimDuration::from_secs_f64(budget_h * 3_600.0);
            if !book.is_free(cid, charger.kind, start, end) {
                out.conflicts += 1;
                continue;
            }

            // Plug in.
            book.reserve(cid, start, end);
            let series = series_cache
                .entry(cid)
                .or_insert_with(|| charger.record_production(&sims.weather, 0));
            let deliverable =
                (charger.kind.rate().value() * budget_h).min(config.charge_target_kwh);
            let clean =
                charger.exact_clean_energy(series, start, budget_h).value().min(deliverable);
            out.clean_kwh += clean;
            out.grid_kwh += deliverable - clean;
            out.detour_kwh += e_fwd + e_ret;
            out.charge_stops += 1;
            charged = true;
            break;
        }
        if !charged {
            out.skipped += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::{urban_grid, UrbanGridParams};

    fn graph() -> RoadGraph {
        urban_grid(&UrbanGridParams { cols: 16, rows: 16, ..Default::default() })
    }

    fn config(vehicles: usize) -> FleetSimConfig {
        FleetSimConfig {
            schedule: ScheduleParams { vehicles, ..Default::default() },
            charger_count: 120,
            ..Default::default()
        }
    }

    #[test]
    fn day_runs_and_accounts_energy() {
        let g = graph();
        let mut policy = Policy::ecocharge();
        let out = simulate_day(&g, &mut policy, &config(15));
        assert_eq!(out.vehicles, 15);
        assert!(out.charge_stops > 0, "daytime fleet must charge somewhere");
        assert!(out.clean_kwh >= 0.0 && out.grid_kwh >= 0.0 && out.detour_kwh >= 0.0);
        assert!((0.0..=1.0).contains(&out.clean_fraction()));
        // Energy per stop never exceeds the target.
        assert!(out.clean_kwh + out.grid_kwh <= out.charge_stops as f64 * 15.0 + 1e-6);
    }

    #[test]
    fn ecocharge_harvests_more_solar_than_nearest() {
        let g = graph();
        let cfg = config(20);
        let mut eco = Policy::ecocharge();
        let eco_out = simulate_day(&g, &mut eco, &cfg);
        let mut near = Policy::Nearest;
        let near_out = simulate_day(&g, &mut near, &cfg);
        assert!(
            eco_out.clean_fraction() > near_out.clean_fraction(),
            "EcoCharge {:.3} must beat Nearest {:.3} on solar fraction",
            eco_out.clean_fraction(),
            near_out.clean_fraction()
        );
    }

    #[test]
    fn nearest_burns_less_detour_energy() {
        // The flip side of the trade-off: chasing sun costs detour kWh.
        let g = graph();
        let cfg = config(20);
        let mut eco = Policy::ecocharge();
        let eco_out = simulate_day(&g, &mut eco, &cfg);
        let mut near = Policy::Nearest;
        let near_out = simulate_day(&g, &mut near, &cfg);
        let eco_per_stop = eco_out.detour_kwh / eco_out.charge_stops.max(1) as f64;
        let near_per_stop = near_out.detour_kwh / near_out.charge_stops.max(1) as f64;
        assert!(
            near_per_stop <= eco_per_stop + 1e-9,
            "nearest {near_per_stop:.3} kWh/stop vs eco {eco_per_stop:.3}"
        );
    }

    #[test]
    fn deterministic_outcome() {
        let g = graph();
        let cfg = config(10);
        let mut a = Policy::ecocharge();
        let mut b = Policy::ecocharge();
        assert_eq!(simulate_day(&g, &mut a, &cfg), simulate_day(&g, &mut b, &cfg));
    }

    #[test]
    fn parallel_day_bit_identical_to_sequential() {
        let g = graph();
        let seq_cfg = config(10);
        let mut par_cfg = config(10);
        par_cfg.ecocharge.threads = 4;
        let mut a = Policy::ecocharge();
        let mut b = Policy::ecocharge();
        // DayOutcome is PartialEq over every accumulator — conflicts,
        // skips, and all three energy tallies must match exactly.
        assert_eq!(simulate_day(&g, &mut a, &seq_cfg), simulate_day(&g, &mut b, &par_cfg));
    }
}
