//! Fleet-day serving through the multi-tenant session service.
//!
//! [`crate::engine`] closes the physical loop (vehicles drive, occupy
//! chargers, hoard solar); this module closes the *serving* loop: every
//! leg of every vehicle's [`DaySchedule`] becomes one continuous-query
//! session in an [`ecocharge_session::SessionService`], and the whole
//! fleet's day is multiplexed through the deterministic event scheduler
//! instead of looping vehicle-by-vehicle. This is the workload shape the
//! bench's `sessions` series measures at scale.

use crate::schedule::DaySchedule;
use ecocharge_core::{EcoChargeConfig, QueryCtx};
use ecocharge_session::{
    recover, JournalConfig, RecoveryError, RecoveryReport, RegisterError, ServiceConfig,
    SessionError, SessionService, ShardConfig, ShardEnv, ShardedService,
};
use std::fmt;

/// Why a fleet day could not be served. Both variants carry typed
/// serving-layer errors with stable codes (`SES-*`, `JRN-*`, `REC-*` —
/// see `ecocharge_session::error`).
#[derive(Debug)]
pub enum ServeError {
    /// A leg was refused at admission.
    Admission(RegisterError),
    /// A tick failed: a solve error with `shed_degraded` off, a refused
    /// journal append, a contained worker panic, or a quarantined
    /// service.
    Serving(SessionError),
    /// Crash recovery could not rebuild the service.
    Recovery(RecoveryError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Admission(e) => write!(f, "leg refused at admission: {e}"),
            Self::Serving(e) => write!(f, "serving failed: {e}"),
            Self::Recovery(e) => write!(f, "fleet recovery failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Admission(e) => Some(e),
            Self::Serving(e) => Some(e),
            Self::Recovery(e) => Some(e),
        }
    }
}

/// Serve every leg of every schedule to completion through one
/// [`SessionService`] and return the service for audit (stats, event
/// log, per-session solve records).
///
/// Legs keep the unique trip ids [`crate::build_schedules`] dealt them,
/// so sessions are keyed per leg and the scheduler interleaves the whole
/// fleet — a vehicle's second leg simply has later virtual times than
/// its first.
///
/// # Errors
/// [`ServeError::Admission`] when a leg is refused (cap too small for
/// the fleet, or segmentation fails); [`ServeError::Serving`] when a
/// solve fails and shedding is disabled.
pub fn serve_fleet(
    ctx: &QueryCtx<'_>,
    schedules: &[DaySchedule],
    config: ServiceConfig,
) -> Result<SessionService, ServeError> {
    let mut svc = SessionService::new(config);
    for schedule in schedules {
        for leg in &schedule.legs {
            svc.register(ctx, leg).map_err(ServeError::Admission)?;
        }
    }
    svc.run_to_completion(ctx).map_err(ServeError::Serving)?;
    Ok(svc)
}

/// [`serve_fleet`] with a write-ahead journal: every admission and every
/// committed batch is made durable before it is acknowledged, with
/// periodic snapshots, so a crash at any point is recoverable via
/// [`recover_fleet`].
///
/// # Errors
/// As [`serve_fleet`], plus [`ServeError::Serving`] with a `JRN-*`-coded
/// source when the journal cannot be created or refuses an append.
pub fn serve_fleet_journaled(
    ctx: &QueryCtx<'_>,
    schedules: &[DaySchedule],
    config: ServiceConfig,
    journal: JournalConfig,
) -> Result<SessionService, ServeError> {
    let mut svc = SessionService::with_journal(config, journal).map_err(ServeError::Serving)?;
    for schedule in schedules {
        for leg in &schedule.legs {
            svc.register(ctx, leg).map_err(ServeError::Admission)?;
        }
    }
    svc.run_to_completion(ctx).map_err(ServeError::Serving)?;
    Ok(svc)
}

/// [`serve_fleet`] across geographic shards: every leg registers on the
/// shard under its departure position, crosses shard boundaries via
/// deterministic hand-off, and the whole fleet's day runs shard-parallel
/// through one [`ShardedService`] — with Offering Tables bit-identical
/// to the unsharded run (the `shard_identity` suite and the bench's
/// `shard` series verify this end to end).
///
/// # Errors
/// As [`serve_fleet`].
pub fn serve_fleet_sharded<'a>(
    env: &'a ShardEnv,
    graph: &'a roadnet::RoadGraph,
    fleet: &'a chargers::ChargerFleet,
    sims: &'a eis::SimProviders,
    config: EcoChargeConfig,
    shard: ShardConfig,
    schedules: &[DaySchedule],
) -> Result<ShardedService<'a>, ServeError> {
    let mut front = ShardedService::new(env, graph, fleet, sims, config, shard);
    for schedule in schedules {
        for leg in &schedule.legs {
            front.register(leg).map_err(ServeError::Admission)?;
        }
    }
    front.run_to_completion().map_err(ServeError::Serving)?;
    Ok(front)
}

/// Rebuild a crashed fleet service from its journal directory and run
/// the remaining events to completion. The recovered service's tables
/// are bit-identical to the uninterrupted run's (verified record-by-
/// record during replay); the returned [`RecoveryReport`] says which
/// snapshot was used and how much tail was replayed.
///
/// # Errors
/// [`ServeError::Recovery`] when the journal is missing/unreadable or
/// replay diverges; [`ServeError::Serving`] when post-recovery serving
/// fails.
pub fn recover_fleet(
    ctx: &QueryCtx<'_>,
    config: ServiceConfig,
    journal: JournalConfig,
) -> Result<(SessionService, RecoveryReport), ServeError> {
    let (mut svc, report) = recover(ctx, config, journal).map_err(ServeError::Recovery)?;
    svc.run_to_completion(ctx).map_err(ServeError::Serving)?;
    Ok((svc, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{build_schedules, ScheduleParams};
    use chargers::{synth_fleet, FleetParams};
    use ecocharge_core::EcoChargeConfig;
    use eis::{InfoServer, SimProviders};
    use roadnet::{urban_grid, UrbanGridParams};

    #[test]
    fn a_fleet_day_is_served_leg_per_session() {
        let graph = urban_grid(&UrbanGridParams::default());
        let fleet = synth_fleet(&graph, &FleetParams { count: 150, seed: 4, ..Default::default() });
        let sims = SimProviders::new(11);
        let server = InfoServer::from_sims(sims.clone());
        let ctx = QueryCtx::new(&graph, &fleet, &server, &sims, EcoChargeConfig::default());
        let schedules =
            build_schedules(&graph, &ScheduleParams { vehicles: 6, ..Default::default() });
        let legs: usize = schedules.iter().map(|s| s.legs.len()).sum();

        let svc = serve_fleet(&ctx, &schedules, ServiceConfig::default()).unwrap();
        let stats = svc.stats();
        assert_eq!(stats.registered, legs as u64);
        assert_eq!(stats.sessions_completed, legs as u64);
        assert_eq!(svc.active_sessions(), 0);
        assert!(svc.sessions().all(|s| !s.solves.is_empty() || s.itinerary().len() == 1));
        // Vehicles idle 1–3 h between legs, so a fleet of 6 spans
        // multiple forecast windows and sessions overlap: sharing shows.
        assert!(stats.forecast_misses > 0);
    }

    #[test]
    fn a_sharded_fleet_day_matches_the_unsharded_one() {
        let graph = urban_grid(&UrbanGridParams::default());
        let fleet = synth_fleet(&graph, &FleetParams { count: 150, seed: 4, ..Default::default() });
        let sims = SimProviders::new(11);
        let schedules =
            build_schedules(&graph, &ScheduleParams { vehicles: 4, ..Default::default() });

        let server = InfoServer::from_sims(sims.clone());
        let ctx = QueryCtx::new(&graph, &fleet, &server, &sims, EcoChargeConfig::default());
        let flat = serve_fleet(&ctx, &schedules, ServiceConfig::default()).unwrap();

        let env = ShardEnv::new(&sims, 4);
        let front = serve_fleet_sharded(
            &env,
            &graph,
            &fleet,
            &sims,
            EcoChargeConfig::default(),
            ShardConfig { shards: 4, threads: 2, ..ShardConfig::default() },
            &schedules,
        )
        .unwrap();
        assert_eq!(front.event_log(), flat.event_log());
        for (a, b) in front.sessions().iter().zip(flat.sessions()) {
            assert_eq!(a.solves, b.solves);
        }
    }

    #[test]
    fn admission_cap_surfaces_as_serve_error() {
        let graph = urban_grid(&UrbanGridParams::default());
        let fleet = synth_fleet(&graph, &FleetParams { count: 150, seed: 4, ..Default::default() });
        let sims = SimProviders::new(11);
        let server = InfoServer::from_sims(sims.clone());
        let ctx = QueryCtx::new(&graph, &fleet, &server, &sims, EcoChargeConfig::default());
        let schedules =
            build_schedules(&graph, &ScheduleParams { vehicles: 4, ..Default::default() });
        let err = serve_fleet(
            &ctx,
            &schedules,
            ServiceConfig { max_sessions: 1, ..ServiceConfig::default() },
        )
        .unwrap_err();
        assert!(matches!(err, ServeError::Admission(RegisterError::Full { .. })), "{err}");
    }
}
