//! Per-vehicle day schedules.
//!
//! Each simulated vehicle drives one to three trips over a day, with idle
//! windows in between — the taxi-between-fares / parent-at-practice /
//! shopper pattern the paper's introduction motivates as hoarding
//! opportunities.

use ec_types::{DayOfWeek, SimDuration, SimTime, SplitMix64, VehicleId};
use roadnet::RoadGraph;
use trajgen::{generate_trips, BrinkhoffParams, Trip};

/// One vehicle's day: consecutive trips; the idle window after leg `i`
/// lasts until the departure of leg `i+1` (the final leg gets a fixed
/// tail window).
#[derive(Debug, Clone)]
pub struct DaySchedule {
    /// The vehicle.
    pub vehicle: VehicleId,
    /// The legs, in departure order.
    pub legs: Vec<Trip>,
}

impl DaySchedule {
    /// The idle window following leg `i`, given the network for ETA
    /// computation: from the leg's arrival to the next leg's departure
    /// (clamped ≥ 0), or `default_tail` after the last leg.
    #[must_use]
    pub fn idle_after(&self, g: &RoadGraph, i: usize, default_tail: SimDuration) -> SimDuration {
        let arrive = self.legs[i].arrival(g);
        match self.legs.get(i + 1) {
            Some(next) => next.depart.saturating_since(arrive),
            None => default_tail,
        }
    }
}

/// Parameters for [`build_schedules`].
#[derive(Debug, Clone)]
pub struct ScheduleParams {
    /// Number of vehicles.
    pub vehicles: usize,
    /// Day the simulation runs on.
    pub day: DayOfWeek,
    /// Trip-length band, metres.
    pub trip_band_m: (f64, f64),
    /// Master seed.
    pub seed: u64,
}

impl Default for ScheduleParams {
    fn default() -> Self {
        Self { vehicles: 20, day: DayOfWeek::Tue, trip_band_m: (4_000.0, 12_000.0), seed: 1 }
    }
}

/// Build one schedule per vehicle: 1–3 legs between 07:00 and 19:00 with
/// 1–3 h gaps. Deterministic in the seed.
///
/// # Panics
/// Panics when `vehicles` is zero.
#[must_use]
pub fn build_schedules(g: &RoadGraph, params: &ScheduleParams) -> Vec<DaySchedule> {
    assert!(params.vehicles > 0, "need at least one vehicle");
    let mut rng = SplitMix64::new(ec_types::rng::subseed(params.seed, 31));
    // One big trip pool, then deal legs out to vehicles.
    let legs_per_vehicle: Vec<usize> =
        (0..params.vehicles).map(|_| 1 + rng.below(3) as usize).collect();
    let total: usize = legs_per_vehicle.iter().sum();
    let pool = generate_trips(
        g,
        &BrinkhoffParams {
            trips: total,
            min_trip_m: params.trip_band_m.0,
            max_trip_m: params.trip_band_m.1,
            window_start: SimTime::at(0, params.day, 7, 0),
            window_secs: 1, // departures are re-timed below
            seed: ec_types::rng::subseed(params.seed, 32),
        },
    );

    let mut pool = pool.into_iter();
    legs_per_vehicle
        .into_iter()
        .enumerate()
        .map(|(v, n_legs)| {
            let vehicle = VehicleId::from_index(v);
            let mut depart =
                SimTime::at(0, params.day, 7, 0) + SimDuration::from_mins(rng.below(4 * 60));
            let legs = (0..n_legs)
                .map(|_| {
                    let mut trip = pool.next().expect("pool sized to total legs");
                    trip.vehicle = vehicle;
                    trip.depart = depart;
                    // Next leg departs after this one plus a 1–3 h idle.
                    let travel = trip.route.cost(g, roadnet::CostMetric::Time);
                    depart = depart
                        + SimDuration::from_secs_f64(travel)
                        + SimDuration::from_mins(60 + rng.below(121));
                    trip
                })
                .collect();
            DaySchedule { vehicle, legs }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::{urban_grid, UrbanGridParams};

    fn graph() -> RoadGraph {
        urban_grid(&UrbanGridParams { cols: 14, rows: 14, ..Default::default() })
    }

    #[test]
    fn one_schedule_per_vehicle_legs_ordered() {
        let g = graph();
        let schedules = build_schedules(&g, &ScheduleParams { vehicles: 12, ..Default::default() });
        assert_eq!(schedules.len(), 12);
        for (i, s) in schedules.iter().enumerate() {
            assert_eq!(s.vehicle.index(), i);
            assert!((1..=3).contains(&s.legs.len()));
            for leg in &s.legs {
                assert_eq!(leg.vehicle, s.vehicle);
            }
            for w in s.legs.windows(2) {
                assert!(
                    w[1].depart > w[0].arrival(&g),
                    "legs overlap: next departs before previous arrives"
                );
            }
        }
    }

    #[test]
    fn idle_windows_are_positive_between_legs() {
        let g = graph();
        let schedules =
            build_schedules(&g, &ScheduleParams { vehicles: 10, seed: 5, ..Default::default() });
        for s in &schedules {
            for i in 0..s.legs.len() {
                let idle = s.idle_after(&g, i, SimDuration::from_hours(1));
                if i + 1 < s.legs.len() {
                    assert!(idle.as_secs() >= 60 * 60, "gaps were drawn ≥ 1 h");
                } else {
                    assert_eq!(idle, SimDuration::from_hours(1));
                }
            }
        }
    }

    #[test]
    fn deterministic() {
        let g = graph();
        let a = build_schedules(&g, &ScheduleParams::default());
        let b = build_schedules(&g, &ScheduleParams::default());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.legs.len(), y.legs.len());
            for (p, q) in x.legs.iter().zip(&y.legs) {
                assert_eq!(p.depart, q.depart);
                assert_eq!(p.route.nodes(), q.route.nodes());
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_vehicles_panics() {
        let g = graph();
        let _ = build_schedules(&g, &ScheduleParams { vehicles: 0, ..Default::default() });
    }
}
