//! Pluggable charging policies.
//!
//! A policy answers one question at the end of a leg: *ranked, which
//! chargers should this vehicle try?* The engine walks the ranking until
//! it finds a physically free plug — so a policy that concentrates its
//! recommendations pays in conflicts, not just in score.

use ec_types::{ChargerId, EcError, SimTime};
use ecocharge_core::{EcoCharge, QueryCtx, RandomPick, RankingMethod};
use trajgen::Trip;

/// The charging policies the day simulation compares.
pub enum Policy {
    /// The paper's method (CkNN-EC + Dynamic Caching).
    EcoCharge(Box<EcoCharge>),
    /// Always the spatially nearest chargers (the "just charge close"
    /// habit the paper wants to improve on).
    Nearest,
    /// Uniformly random chargers within the radius.
    Random(Box<RandomPick>),
}

impl Policy {
    /// A fresh EcoCharge policy.
    #[must_use]
    pub fn ecocharge() -> Self {
        Self::EcoCharge(Box::new(EcoCharge::new()))
    }

    /// A fresh random policy.
    #[must_use]
    pub fn random(seed: u64) -> Self {
        Self::Random(Box::new(RandomPick::new(seed)))
    }

    /// Display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::EcoCharge(_) => "EcoCharge",
            Self::Nearest => "Nearest",
            Self::Random(_) => "Random",
        }
    }

    /// Ranked charger candidates for a vehicle finishing `trip` (queried
    /// at the final approach), best first.
    ///
    /// # Errors
    /// [`EcError::NoCandidates`] when nothing is in range.
    pub fn rank(
        &mut self,
        ctx: &QueryCtx<'_>,
        trip: &Trip,
        now: SimTime,
    ) -> Result<Vec<ChargerId>, EcError> {
        let offset = trip.length_m(); // query at the destination
        match self {
            Self::EcoCharge(m) => {
                m.reset_trip();
                m.offering_table(ctx, trip, offset, now).map(|t| t.charger_ids())
            }
            Self::Random(m) => m.offering_table(ctx, trip, offset, now).map(|t| t.charger_ids()),
            Self::Nearest => {
                let pos = trip.position_at_offset(ctx.graph, offset);
                let hits = ctx.fleet.knn(&pos, ctx.config.k);
                if hits.is_empty() {
                    return Err(EcError::NoCandidates);
                }
                Ok(hits.into_iter().map(|(id, _)| id).collect())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chargers::{synth_fleet, FleetParams};
    use ecocharge_core::EcoChargeConfig;
    use eis::{InfoServer, SimProviders};
    use roadnet::{urban_grid, UrbanGridParams};
    use trajgen::{generate_trips, BrinkhoffParams};

    #[test]
    fn all_policies_rank_k_candidates() {
        let graph = urban_grid(&UrbanGridParams { cols: 14, rows: 14, ..Default::default() });
        let fleet = synth_fleet(&graph, &FleetParams { count: 60, seed: 3, ..Default::default() });
        let sims = SimProviders::new(9);
        let server = InfoServer::from_sims(sims.clone());
        let ctx = QueryCtx::new(&graph, &fleet, &server, &sims, EcoChargeConfig::default());
        let trip = generate_trips(
            &graph,
            &BrinkhoffParams {
                trips: 1,
                min_trip_m: 5_000.0,
                max_trip_m: 9_000.0,
                ..Default::default()
            },
        )
        .remove(0);
        for mut policy in [Policy::ecocharge(), Policy::Nearest, Policy::random(4)] {
            let ranked = policy.rank(&ctx, &trip, trip.arrival(&graph)).unwrap();
            assert_eq!(ranked.len(), ctx.config.k, "{}", policy.name());
            let uniq: std::collections::HashSet<_> = ranked.iter().collect();
            assert_eq!(uniq.len(), ranked.len(), "{}: duplicates", policy.name());
        }
    }

    #[test]
    fn nearest_policy_is_actually_nearest() {
        let graph = urban_grid(&UrbanGridParams { cols: 12, rows: 12, ..Default::default() });
        let fleet = synth_fleet(&graph, &FleetParams { count: 40, seed: 3, ..Default::default() });
        let sims = SimProviders::new(9);
        let server = InfoServer::from_sims(sims.clone());
        let ctx = QueryCtx::new(&graph, &fleet, &server, &sims, EcoChargeConfig::default());
        let trip = generate_trips(
            &graph,
            &BrinkhoffParams {
                trips: 1,
                min_trip_m: 5_000.0,
                max_trip_m: 9_000.0,
                ..Default::default()
            },
        )
        .remove(0);
        let mut policy = Policy::Nearest;
        let ranked = policy.rank(&ctx, &trip, trip.arrival(&graph)).unwrap();
        let dest = trip.position_at_offset(&graph, trip.length_m());
        let mut dists: Vec<f64> =
            ranked.iter().map(|&c| dest.fast_dist_m(&fleet.get(c).loc)).collect();
        let sorted = {
            let mut d = dists.clone();
            d.sort_by(f64::total_cmp);
            d
        };
        assert_eq!(dists, sorted, "nearest policy must rank by distance");
        dists.dedup();
        assert!(!dists.is_empty());
    }
}
