//! Run-stable hashing: FNV-1a 64.
//!
//! `std`'s default `RandomState` is seeded per process, so two runs of
//! the same workload hash the same key differently — fine for a private
//! `HashMap`, fatal for anything whose hash leaks into observable
//! behaviour (which shard of a [`crate::SharedTier`] a key lands on,
//! cache-key digests recorded in journals or bench JSON). Everything in
//! this crate that needs a *stable* hash routes through [`Fnv64`]; the
//! hash of a given byte stream is a pure function of that stream,
//! forever.

use std::hash::{Hash, Hasher};

const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit streaming hasher.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Self(OFFSET_BASIS)
    }
}

impl Fnv64 {
    /// A fresh hasher at the offset basis.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Hasher for Fnv64 {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
        self.0 = h;
    }
}

/// Hash any `Hash` value with FNV-1a 64 — the run-stable replacement
/// for `RandomState`'s `hash_one`.
#[must_use]
pub fn fnv64<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = Fnv64::new();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Canonical FNV-1a 64 test vectors over raw bytes.
        let mut h = Fnv64::new();
        h.write(b"");
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv64::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv64::new();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn is_stable_and_input_sensitive() {
        assert_eq!(fnv64(&(1u32, 2u64)), fnv64(&(1u32, 2u64)));
        assert_ne!(fnv64(&(1u32, 2u64)), fnv64(&(2u32, 1u64)));
        assert_ne!(fnv64("ab"), fnv64("ba"));
    }
}
