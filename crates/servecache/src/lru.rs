//! A deterministic O(1) LRU with entry *and* byte budgets.
//!
//! The per-lane Offering-Table L1 ([`crate::tier`] wraps the same
//! structure for the shared L2). Entries live in a slab (`Vec` of
//! slots) threaded by intrusive prev/next links in recency order, with
//! a `HashMap` index from key to slot — every operation is O(1) and
//! allocation-free once warm. Eviction is strictly
//! least-recently-used, so for a fixed operation sequence the resident
//! set is a pure function of that sequence — the property test in
//! `tests/props.rs` pins the whole structure against a naive model.
//!
//! Byte weights are supplied by the caller at insert (the cache is
//! generic and cannot size its values); an entry larger than the whole
//! byte budget is refused rather than evicting everything else to make
//! room.

use crate::metrics::TierSnapshot;
use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Slot<K, V> {
    key: K,
    value: V,
    bytes: usize,
    prev: usize,
    next: usize,
}

/// Bounded least-recently-used map. Not internally synchronised — wrap
/// in a lock (as [`crate::SharedTier`] does) to share across threads.
#[derive(Debug)]
pub struct Lru<K, V> {
    index: HashMap<K, usize>,
    slots: Vec<Option<Slot<K, V>>>,
    free: Vec<usize>,
    /// Most-recently-used slot.
    head: usize,
    /// Least-recently-used slot — the eviction end.
    tail: usize,
    max_entries: usize,
    max_bytes: usize,
    bytes: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    insertions: u64,
}

impl<K: Eq + Hash + Clone, V> Lru<K, V> {
    /// An empty cache holding at most `max_entries` entries and
    /// `max_bytes` caller-weighted bytes. A zero budget is clamped to
    /// one entry / one byte so the structure stays well-defined.
    #[must_use]
    pub fn new(max_entries: usize, max_bytes: usize) -> Self {
        Self {
            index: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            max_entries: max_entries.max(1),
            max_bytes: max_bytes.max(1),
            bytes: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            insertions: 0,
        }
    }

    /// Resident entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether nothing is resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Current caller-weighted resident bytes.
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Look up `key`, promoting it to most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        match self.index.get(key).copied() {
            Some(slot) => {
                self.hits += 1;
                self.unlink(slot);
                self.push_front(slot);
                self.slots[slot].as_ref().map(|s| &s.value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Look up `key` without promoting or counting — for tests and
    /// introspection.
    #[must_use]
    pub fn peek(&self, key: &K) -> Option<&V> {
        let slot = *self.index.get(key)?;
        self.slots[slot].as_ref().map(|s| &s.value)
    }

    /// Insert (or overwrite) `key`, weighted at `bytes`, as
    /// most-recently-used, then evict from the LRU end until both
    /// budgets hold. An entry weighing more than the whole byte budget
    /// is refused (and an existing entry under that key removed): caching
    /// it would only thrash the rest of the tier.
    pub fn insert(&mut self, key: K, value: V, bytes: usize) {
        if bytes > self.max_bytes {
            self.remove(&key);
            return;
        }
        self.insertions += 1;
        if let Some(&slot) = self.index.get(&key) {
            let s = self.slots[slot].as_mut().expect("indexed slot occupied");
            self.bytes = self.bytes - s.bytes + bytes;
            s.value = value;
            s.bytes = bytes;
            self.unlink(slot);
            self.push_front(slot);
        } else {
            let slot = match self.free.pop() {
                Some(i) => i,
                None => {
                    self.slots.push(None);
                    self.slots.len() - 1
                }
            };
            self.slots[slot] = Some(Slot { key: key.clone(), value, bytes, prev: NIL, next: NIL });
            self.index.insert(key, slot);
            self.bytes += bytes;
            self.push_front(slot);
        }
        while self.index.len() > self.max_entries || self.bytes > self.max_bytes {
            let Some(victim) = self.evict_tail() else { break };
            drop(victim);
        }
    }

    /// Remove `key`, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let slot = self.index.remove(key)?;
        self.unlink(slot);
        let s = self.slots[slot].take().expect("indexed slot occupied");
        self.bytes -= s.bytes;
        self.free.push(slot);
        Some(s.value)
    }

    /// Evict every entry whose key matches `stale` (deterministic:
    /// recency order, least-recent first). The forecast-window rollover
    /// invalidation path — cheaper than waiting for natural eviction
    /// when a whole window's tables just became unreachable.
    pub fn evict_where(&mut self, mut stale: impl FnMut(&K) -> bool) -> usize {
        let mut victims = Vec::new();
        let mut cursor = self.tail;
        while cursor != NIL {
            let s = self.slots[cursor].as_ref().expect("linked slot occupied");
            if stale(&s.key) {
                victims.push(s.key.clone());
            }
            cursor = s.prev;
        }
        for key in &victims {
            let _ = self.remove(key);
            self.evictions += 1;
        }
        victims.len()
    }

    /// Drop everything (budgets and counters survive).
    pub fn clear(&mut self) {
        self.index.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.bytes = 0;
    }

    /// Unified accounting snapshot.
    #[must_use]
    pub fn snapshot(&self) -> TierSnapshot {
        TierSnapshot {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            insertions: self.insertions,
            entries: self.index.len() as u64,
            bytes: self.bytes as u64,
        }
    }

    /// Keys from most- to least-recently-used — test introspection.
    #[must_use]
    pub fn keys_by_recency(&self) -> Vec<K> {
        let mut keys = Vec::with_capacity(self.index.len());
        let mut cursor = self.head;
        while cursor != NIL {
            let s = self.slots[cursor].as_ref().expect("linked slot occupied");
            keys.push(s.key.clone());
            cursor = s.next;
        }
        keys
    }

    fn evict_tail(&mut self) -> Option<V> {
        if self.tail == NIL {
            return None;
        }
        let key = self.slots[self.tail].as_ref().expect("tail occupied").key.clone();
        self.evictions += 1;
        self.remove(&key)
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = {
            let s = self.slots[slot].as_ref().expect("unlink of occupied slot");
            (s.prev, s.next)
        };
        if prev != NIL {
            self.slots[prev].as_mut().expect("linked").next = next;
        } else if self.head == slot {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].as_mut().expect("linked").prev = prev;
        } else if self.tail == slot {
            self.tail = prev;
        }
        let s = self.slots[slot].as_mut().expect("unlink of occupied slot");
        s.prev = NIL;
        s.next = NIL;
    }

    fn push_front(&mut self, slot: usize) {
        let old_head = self.head;
        {
            let s = self.slots[slot].as_mut().expect("push of occupied slot");
            s.prev = NIL;
            s.next = old_head;
        }
        if old_head != NIL {
            self.slots[old_head].as_mut().expect("linked").prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used_first() {
        let mut c: Lru<u32, u32> = Lru::new(2, usize::MAX);
        c.insert(1, 10, 1);
        c.insert(2, 20, 1);
        assert_eq!(c.get(&1), Some(&10)); // 1 now MRU
        c.insert(3, 30, 1); // evicts 2
        assert_eq!(c.peek(&2), None);
        assert_eq!(c.peek(&1), Some(&10));
        assert_eq!(c.peek(&3), Some(&30));
        assert_eq!(c.keys_by_recency(), vec![3, 1]);
        let s = c.snapshot();
        assert_eq!((s.hits, s.misses, s.evictions, s.insertions), (1, 0, 1, 3));
    }

    #[test]
    fn byte_budget_evicts_and_oversized_is_refused() {
        let mut c: Lru<u32, u32> = Lru::new(usize::MAX, 10);
        c.insert(1, 1, 4);
        c.insert(2, 2, 4);
        c.insert(3, 3, 4); // 12 bytes > 10: evicts 1
        assert_eq!(c.peek(&1), None);
        assert_eq!(c.bytes(), 8);
        c.insert(4, 4, 11); // larger than the whole budget
        assert_eq!(c.peek(&4), None);
        assert_eq!(c.len(), 2);
        // Oversized overwrite removes the stale entry instead of keeping it.
        c.insert(2, 9, 11);
        assert_eq!(c.peek(&2), None);
        assert_eq!(c.bytes(), 4);
    }

    #[test]
    fn overwrite_updates_bytes_and_promotes() {
        let mut c: Lru<u32, u32> = Lru::new(8, 100);
        c.insert(1, 1, 10);
        c.insert(2, 2, 10);
        c.insert(1, 5, 30);
        assert_eq!(c.bytes(), 40);
        assert_eq!(c.keys_by_recency(), vec![1, 2]);
        assert_eq!(c.peek(&1), Some(&5));
    }

    #[test]
    fn evict_where_drops_matching_keys() {
        let mut c: Lru<(u32, u64), u32> = Lru::new(16, usize::MAX);
        for i in 0..4 {
            c.insert((i, u64::from(i % 2)), i, 1);
        }
        let dropped = c.evict_where(|&(_, window)| window == 0);
        assert_eq!(dropped, 2);
        assert_eq!(c.len(), 2);
        assert!(c.keys_by_recency().iter().all(|&(_, w)| w == 1));
    }

    #[test]
    fn remove_and_clear() {
        let mut c: Lru<u32, u32> = Lru::new(4, 100);
        c.insert(1, 1, 5);
        c.insert(2, 2, 5);
        assert_eq!(c.remove(&1), Some(1));
        assert_eq!(c.remove(&1), None);
        assert_eq!(c.bytes(), 5);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.bytes(), 0);
        // Reusable after clear.
        c.insert(3, 3, 5);
        assert_eq!(c.get(&3), Some(&3));
    }

    #[test]
    fn slab_slots_are_recycled() {
        let mut c: Lru<u32, u32> = Lru::new(2, usize::MAX);
        for i in 0..100 {
            c.insert(i, i, 1);
        }
        assert!(c.slots.len() <= 3, "slab grew ({}) despite recycling", c.slots.len());
        assert_eq!(c.len(), 2);
    }
}
