//! The unified cache-accounting surface.
//!
//! Every cache tier in the serving stack — the information server's
//! fresh/LKG TTL maps, the per-lane Offering-Table L1s, the shared L2 —
//! reports the same six counters through a [`TierSnapshot`], and a
//! [`CacheMetrics`] registry collects the named snapshots for one
//! service (or one whole sharded front). This replaces the bespoke
//! `(hits, misses)` tuples each cache used to grow: a bench row or a
//! `repro` JSON blob can carry the entire cache hierarchy's hit-rate
//! provenance as one structure.

/// Point-in-time counters for one cache tier.
///
/// Counters are cumulative since the tier's construction; `entries` and
/// `bytes` are the current occupancy. Snapshots of disjoint tiers (or
/// of the same logical tier across shards) combine with
/// [`TierSnapshot::merge`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierSnapshot {
    /// Lookups answered from the tier.
    pub hits: u64,
    /// Lookups the tier could not answer.
    pub misses: u64,
    /// Entries removed to stay under budget (expiry sweeps count too).
    pub evictions: u64,
    /// Entries written (inserts and overwrites).
    pub insertions: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Estimated resident bytes.
    pub bytes: u64,
}

impl TierSnapshot {
    /// Fraction of lookups answered by the tier, `0.0` when idle.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Combine with another snapshot (summing counters and occupancy) —
    /// used to fold per-shard snapshots of one logical tier, or to total
    /// a whole registry. Saturating, like every long-run counter here.
    #[must_use]
    pub fn merge(self, other: Self) -> Self {
        Self {
            hits: self.hits.saturating_add(other.hits),
            misses: self.misses.saturating_add(other.misses),
            evictions: self.evictions.saturating_add(other.evictions),
            insertions: self.insertions.saturating_add(other.insertions),
            entries: self.entries.saturating_add(other.entries),
            bytes: self.bytes.saturating_add(other.bytes),
        }
    }
}

/// A named collection of tier snapshots — the cache hierarchy of one
/// service at one instant.
#[derive(Debug, Clone, Default)]
pub struct CacheMetrics {
    tiers: Vec<(String, TierSnapshot)>,
}

impl CacheMetrics {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record (or merge into) the snapshot for `tier`. Recording the
    /// same name twice merges — that is how per-shard services fold
    /// their lanes' `table.l1` snapshots into one logical row.
    pub fn record(&mut self, tier: &str, snap: TierSnapshot) {
        match self.tiers.iter_mut().find(|(name, _)| name == tier) {
            Some((_, existing)) => *existing = existing.merge(snap),
            None => self.tiers.push((tier.to_string(), snap)),
        }
    }

    /// All tiers, in recording order.
    #[must_use]
    pub fn tiers(&self) -> &[(String, TierSnapshot)] {
        &self.tiers
    }

    /// The snapshot recorded under `tier`, if any.
    #[must_use]
    pub fn get(&self, tier: &str) -> Option<TierSnapshot> {
        self.tiers.iter().find(|(name, _)| name == tier).map(|(_, s)| *s)
    }

    /// Sum of every tier.
    #[must_use]
    pub fn total(&self) -> TierSnapshot {
        self.tiers.iter().fold(TierSnapshot::default(), |acc, (_, s)| acc.merge(*s))
    }

    /// Fold another registry into this one, tier by tier.
    pub fn absorb(&mut self, other: &CacheMetrics) {
        for (name, snap) in other.tiers() {
            self.record(name, *snap);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_idle_tier() {
        assert_eq!(TierSnapshot::default().hit_rate(), 0.0);
        let s = TierSnapshot { hits: 3, misses: 1, ..Default::default() };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn merge_saturates() {
        let a = TierSnapshot { hits: u64::MAX, misses: 1, ..Default::default() };
        let b = TierSnapshot { hits: 5, misses: 2, ..Default::default() };
        let m = a.merge(b);
        assert_eq!(m.hits, u64::MAX);
        assert_eq!(m.misses, 3);
    }

    #[test]
    fn registry_records_and_merges_by_name() {
        let mut m = CacheMetrics::new();
        m.record("l1", TierSnapshot { hits: 1, entries: 2, ..Default::default() });
        m.record("l2", TierSnapshot { hits: 10, ..Default::default() });
        m.record("l1", TierSnapshot { hits: 4, entries: 3, ..Default::default() });
        assert_eq!(m.tiers().len(), 2);
        assert_eq!(m.get("l1").unwrap().hits, 5);
        assert_eq!(m.get("l1").unwrap().entries, 5);
        assert_eq!(m.total().hits, 15);
        assert_eq!(m.get("absent"), None);

        let mut other = CacheMetrics::new();
        other.record("l2", TierSnapshot { misses: 7, ..Default::default() });
        other.record("ttl", TierSnapshot { hits: 2, ..Default::default() });
        m.absorb(&other);
        assert_eq!(m.get("l2").unwrap().misses, 7);
        assert_eq!(m.tiers().len(), 3);
    }
}
