//! A bounded TTL cache keyed on the simulation clock.
//!
//! The paper's *Dynamic Caching* stores "solutions (i.e., Offering Tables)
//! and API responses in a table" and notes that "a solution will naturally
//! be invalidated after a certain time point (t) as L, A, D objectives
//! will naturally be invalid after t" (§IV-C). [`TtlCache`] is the API-
//! response half of that design: entries expire at a simulation instant,
//! not a wall-clock one, so cached forecasts age at simulated speed and
//! experiments stay reproducible.
//!
//! Unlike its predecessor (which lived in `eis::cache` and grew without
//! bound), the cache takes a [`TtlBudget`]: when entry or byte budgets
//! are exceeded, entries are evicted in **insertion order** (FIFO, with
//! lazily skipped stale queue records for overwritten keys) — a
//! deterministic order that needs no recency bookkeeping on the
//! read-heavy fast path. TTL caches skew toward "newest entries are the
//! live window", so FIFO here approximates expiry order anyway.

use crate::metrics::TierSnapshot;
use ec_types::{SimDuration, SimTime};
use parking_lot::RwLock;
use std::collections::{HashMap, VecDeque};
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};

/// Capacity budget for a [`TtlCache`]. `None` means unbounded on that
/// axis; the byte budget is enforced through a per-entry weight derived
/// from `size_of::<K>() + size_of::<V>()` plus map/queue overhead
/// (values here are fixed-size forecast intervals, so a static weight
/// is exact enough for capacity planning).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TtlBudget {
    /// Maximum resident entries.
    pub max_entries: Option<usize>,
    /// Maximum estimated resident bytes.
    pub max_bytes: Option<usize>,
}

impl TtlBudget {
    /// No bounds — the legacy behaviour, for caches whose key space is
    /// already bounded by construction.
    #[must_use]
    pub const fn unbounded() -> Self {
        Self { max_entries: None, max_bytes: None }
    }

    /// Entry-count bound only.
    #[must_use]
    pub const fn entries(max: usize) -> Self {
        Self { max_entries: Some(max), max_bytes: None }
    }

    /// Byte bound only.
    #[must_use]
    pub const fn bytes(max: usize) -> Self {
        Self { max_entries: None, max_bytes: Some(max) }
    }
}

/// Per-entry bookkeeping overhead estimate (hash-map slot + eviction
/// queue record), on top of the key/value payload.
const ENTRY_OVERHEAD: usize = 48;

#[derive(Debug)]
struct Stored<V> {
    value: V,
    expires: SimTime,
    /// Insertion sequence — matches the queue record that may evict it.
    /// Overwrites bump the sequence, orphaning the old queue record.
    seq: u64,
}

#[derive(Debug)]
struct Inner<K, V> {
    map: HashMap<K, Stored<V>>,
    /// Insertion-order eviction queue, lazily deduplicated: a record
    /// whose `seq` no longer matches the map entry is skipped on pop.
    queue: VecDeque<(u64, K)>,
    next_seq: u64,
}

impl<K, V> Default for Inner<K, V> {
    fn default() -> Self {
        Self { map: HashMap::new(), queue: VecDeque::new(), next_seq: 0 }
    }
}

/// A concurrent map whose entries expire at a [`SimTime`].
///
/// ```
/// use ec_types::{DayOfWeek, SimDuration, SimTime};
/// use servecache::TtlCache;
///
/// let cache: TtlCache<&str, u32> = TtlCache::new();
/// let now = SimTime::at(0, DayOfWeek::Mon, 9, 0);
/// cache.put("sun", 42, now, SimDuration::from_mins(15));
/// assert_eq!(cache.get(&"sun", now + SimDuration::from_mins(10)), Some(42));
/// assert_eq!(cache.get(&"sun", now + SimDuration::from_mins(20)), None); // expired
/// ```
#[derive(Debug)]
pub struct TtlCache<K, V> {
    inner: RwLock<Inner<K, V>>,
    budget: TtlBudget,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    insertions: AtomicU64,
    /// When attached ([`TtlCache::enable_fresh_log`]), the key of every
    /// *locally computed* insert is logged so a federation layer can
    /// drain just the cells new since its last round
    /// ([`TtlCache::drain_fresh`]). Installed cells are never logged —
    /// they already made the rounds.
    fresh_log: RwLock<Option<Vec<K>>>,
}

impl<K, V> Default for TtlCache<K, V> {
    fn default() -> Self {
        Self {
            inner: RwLock::new(Inner::default()),
            budget: TtlBudget::unbounded(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            fresh_log: RwLock::new(None),
        }
    }
}

impl<K: Eq + Hash + Clone, V: Clone> TtlCache<K, V> {
    /// An empty, unbounded cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache enforcing `budget` with FIFO insertion-order
    /// eviction.
    #[must_use]
    pub fn bounded(budget: TtlBudget) -> Self {
        Self { budget, ..Self::default() }
    }

    /// Estimated bytes one resident entry costs.
    const fn entry_bytes() -> usize {
        std::mem::size_of::<K>() + std::mem::size_of::<V>() + ENTRY_OVERHEAD
    }

    /// The entry cap both budget axes reduce to (`None` = unbounded).
    fn entry_cap(&self) -> Option<usize> {
        let by_bytes = self.budget.max_bytes.map(|b| (b / Self::entry_bytes()).max(1));
        match (self.budget.max_entries, by_bytes) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        }
    }

    /// Evict oldest-inserted entries until the budget holds. Caller
    /// holds the write lock.
    fn enforce_budget(&self, inner: &mut Inner<K, V>) {
        let Some(cap) = self.entry_cap() else { return };
        while inner.map.len() > cap {
            let Some((seq, key)) = inner.queue.pop_front() else { break };
            // Skip orphaned records: the key was overwritten (new seq)
            // or removed since this record was queued.
            let live = inner.map.get(&key).is_some_and(|s| s.seq == seq);
            if live {
                inner.map.remove(&key);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Record an insert under the write lock: stamp a sequence, queue
    /// the eviction record (bounded caches only — an unbounded cache
    /// never pops the queue, so keeping one would itself be unbounded
    /// growth), enforce the budget.
    fn record_insert(&self, inner: &mut Inner<K, V>, key: K, value: V, expires: SimTime) {
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let bounded = self.entry_cap().is_some();
        inner.map.insert(key.clone(), Stored { value, expires, seq });
        if bounded {
            inner.queue.push_back((seq, key));
        }
        self.insertions.fetch_add(1, Ordering::Relaxed);
        if bounded {
            self.enforce_budget(inner);
            // Lazy queue compaction: overwrites and expiry sweeps orphan
            // queue records faster than budget evictions pop them, so
            // shed leading orphans once the queue dwarfs the map.
            while inner.queue.len() > inner.map.len().saturating_mul(2) + 16 {
                match inner.queue.front() {
                    Some((seq, key)) if inner.map.get(key).is_none_or(|s| s.seq != *seq) => {
                        inner.queue.pop_front();
                    }
                    _ => break,
                }
            }
        }
    }

    /// Current live value for `key` at sim-instant `now`, if any.
    pub fn get(&self, key: &K, now: SimTime) -> Option<V> {
        let hit = {
            let inner = self.inner.read();
            inner.map.get(key).and_then(|s| (now < s.expires).then(|| s.value.clone()))
        };
        if hit.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Insert `value` valid until `now + ttl`.
    pub fn put(&self, key: K, value: V, now: SimTime, ttl: SimDuration) {
        {
            let mut inner = self.inner.write();
            self.record_insert(&mut inner, key.clone(), value, now + ttl);
        }
        self.log_fresh(key);
    }

    /// Start logging locally computed inserts for federation export.
    /// Idempotent; a cache without the log pays nothing on its write
    /// path.
    pub fn enable_fresh_log(&self) {
        let mut log = self.fresh_log.write();
        if log.is_none() {
            *log = Some(Vec::new());
        }
    }

    fn log_fresh(&self, key: K) {
        if let Some(log) = self.fresh_log.write().as_mut() {
            log.push(key);
        }
    }

    /// Drain the cells computed here since the last drain: every logged
    /// key still present in the map, with its value and absolute expiry.
    /// Empty when the log was never enabled. Keys evicted or expired
    /// away between computation and drain are silently skipped — a peer
    /// would evict them too.
    #[must_use]
    pub fn drain_fresh(&self) -> Vec<(K, V, SimTime)> {
        let keys = match self.fresh_log.write().as_mut() {
            Some(log) if !log.is_empty() => std::mem::take(log),
            _ => return Vec::new(),
        };
        let inner = self.inner.read();
        keys.into_iter()
            .filter_map(|k| inner.map.get(&k).map(|s| (k.clone(), s.value.clone(), s.expires)))
            .collect()
    }

    /// Install federated cells verbatim (value + absolute expiry).
    /// A key already present keeps its local entry — for the pure
    /// forecast caches both copies are byte-identical anyway, and
    /// keeping the local one makes installation idempotent. Installed
    /// cells are *not* logged as fresh, so they never ping-pong back out
    /// through [`TtlCache::drain_fresh`].
    pub fn install(&self, cells: &[(K, V, SimTime)]) {
        if cells.is_empty() {
            return;
        }
        let mut inner = self.inner.write();
        for (k, v, exp) in cells {
            if !inner.map.contains_key(k) {
                self.record_insert(&mut inner, k.clone(), v.clone(), *exp);
            }
        }
    }

    /// Last stored value for `key` regardless of expiry, with a staleness
    /// flag — the degraded-mode read used when the upstream provider is
    /// down ("better a 40-minute-old forecast than no Offering Table").
    pub fn get_allow_stale(&self, key: &K, now: SimTime) -> Option<(V, bool)> {
        let inner = self.inner.read();
        inner.map.get(key).map(|s| (s.value.clone(), now >= s.expires))
    }

    /// Fetch-through: return the live value, or compute, store and return
    /// it. Exactly one caller computes per (key, expiry window), even
    /// under concurrency: after the read-probe misses, the key is
    /// re-checked under the write lock, so a racing filler's value is
    /// observed instead of recomputed. This keeps upstream API-call
    /// accounting exact — N concurrent misses on one key are 1 miss +
    /// (N − 1) hits and a single producer run. The producer runs while
    /// the write lock is held, so it must not call back into this cache.
    /// Producer errors are not cached (the miss still counts).
    pub fn get_or_insert_with<E>(
        &self,
        key: K,
        now: SimTime,
        ttl: SimDuration,
        produce: impl FnOnce() -> Result<V, E>,
    ) -> Result<V, E> {
        let live = |entry: Option<&Stored<V>>| {
            entry.and_then(|s| (now < s.expires).then(|| s.value.clone()))
        };
        // Fast path: live value under the shared read lock.
        if let Some(v) = live(self.inner.read().map.get(&key)) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(v);
        }
        // Slow path: a concurrent filler may have inserted while we
        // waited for the write lock — re-check before computing.
        let mut inner = self.inner.write();
        if let Some(v) = live(inner.map.get(&key)) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(v);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let v = produce()?;
        self.record_insert(&mut inner, key.clone(), v.clone(), now + ttl);
        drop(inner); // never hold the map and the fresh log together
        self.log_fresh(key);
        Ok(v)
    }

    /// Drop every entry that has expired by `now`; returns how many were
    /// evicted.
    pub fn evict_expired(&self, now: SimTime) -> usize {
        let mut inner = self.inner.write();
        let before = inner.map.len();
        inner.map.retain(|_, s| now < s.expires);
        let dropped = before - inner.map.len();
        self.evictions.fetch_add(dropped as u64, Ordering::Relaxed);
        dropped
    }

    /// Number of stored entries (live or not-yet-evicted).
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.read().map.len()
    }

    /// True when nothing is stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.read().map.is_empty()
    }

    /// `(hits, misses)` counters since construction — the legacy
    /// accounting surface; prefer [`TtlCache::snapshot`].
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }

    /// Estimated resident bytes.
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.len() * Self::entry_bytes()
    }

    /// Unified accounting snapshot.
    #[must_use]
    pub fn snapshot(&self) -> TierSnapshot {
        TierSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            entries: self.len() as u64,
            bytes: self.bytes() as u64,
        }
    }

    /// Clear all entries and counters.
    pub fn clear(&self) {
        let mut inner = self.inner.write();
        inner.map.clear();
        inner.queue.clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.insertions.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_types::DayOfWeek;

    fn t(min: u64) -> SimTime {
        SimTime::at(0, DayOfWeek::Mon, 10, 0) + SimDuration::from_mins(min)
    }

    #[test]
    fn hit_within_ttl_miss_after() {
        let c: TtlCache<u32, String> = TtlCache::new();
        c.put(1, "a".into(), t(0), SimDuration::from_mins(10));
        assert_eq!(c.get(&1, t(5)), Some("a".into()));
        assert_eq!(c.get(&1, t(10)), None); // expiry is exclusive
        assert_eq!(c.get(&1, t(15)), None);
    }

    #[test]
    fn get_or_insert_computes_once_within_ttl() {
        let c: TtlCache<u32, u64> = TtlCache::new();
        let mut calls = 0;
        for _ in 0..3 {
            let v: Result<u64, ()> =
                c.get_or_insert_with(7, t(0), SimDuration::from_mins(5), || {
                    calls += 1;
                    Ok(42)
                });
            assert_eq!(v, Ok(42));
        }
        assert_eq!(calls, 1);
        // After expiry the producer runs again.
        let _: Result<u64, ()> = c.get_or_insert_with(7, t(6), SimDuration::from_mins(5), || {
            calls += 1;
            Ok(43)
        });
        assert_eq!(calls, 2);
    }

    #[test]
    fn concurrent_misses_compute_exactly_once() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let c: TtlCache<u32, u64> = TtlCache::new();
        let calls = AtomicU64::new(0);
        let workers = 8;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let v: Result<u64, ()> =
                        c.get_or_insert_with(7, t(0), SimDuration::from_mins(5), || {
                            calls.fetch_add(1, Ordering::Relaxed);
                            // Widen the race window: keep the write lock
                            // busy while the other threads pile up.
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            Ok(42)
                        });
                    assert_eq!(v, Ok(42));
                });
            }
        });
        // The call-economy invariant the parallel engine relies on: one
        // upstream call, one miss, everyone else a hit.
        assert_eq!(calls.load(Ordering::Relaxed), 1, "double-computed on concurrent miss");
        assert_eq!(c.stats(), (workers - 1, 1));
    }

    #[test]
    fn producer_errors_are_not_cached() {
        let c: TtlCache<u32, u64> = TtlCache::new();
        let r: Result<u64, &str> =
            c.get_or_insert_with(1, t(0), SimDuration::from_mins(5), || Err("boom"));
        assert_eq!(r, Err("boom"));
        let r: Result<u64, &str> =
            c.get_or_insert_with(1, t(0), SimDuration::from_mins(5), || Ok(9));
        assert_eq!(r, Ok(9));
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let c: TtlCache<u32, u64> = TtlCache::new();
        c.put(1, 1, t(0), SimDuration::from_mins(10));
        let _ = c.get(&1, t(1)); // hit
        let _ = c.get(&2, t(1)); // miss
        let _ = c.get(&1, t(11)); // expired -> miss
        assert_eq!(c.stats(), (1, 2));
    }

    #[test]
    fn evict_expired_removes_dead_entries() {
        let c: TtlCache<u32, u64> = TtlCache::new();
        c.put(1, 1, t(0), SimDuration::from_mins(5));
        c.put(2, 2, t(0), SimDuration::from_mins(50));
        assert_eq!(c.evict_expired(t(10)), 1);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&2, t(10)), Some(2));
    }

    #[test]
    fn clear_resets_everything() {
        let c: TtlCache<u32, u64> = TtlCache::new();
        c.put(1, 1, t(0), SimDuration::from_mins(5));
        let _ = c.get(&1, t(0));
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.stats(), (0, 0));
        assert_eq!(c.snapshot(), TierSnapshot::default());
    }

    #[test]
    fn get_allow_stale_flags_expiry() {
        let c: TtlCache<u32, u64> = TtlCache::new();
        assert_eq!(c.get_allow_stale(&1, t(0)), None);
        c.put(1, 9, t(0), SimDuration::from_mins(5));
        assert_eq!(c.get_allow_stale(&1, t(3)), Some((9, false)));
        assert_eq!(c.get_allow_stale(&1, t(30)), Some((9, true)));
        // Eviction removes even stale values.
        c.evict_expired(t(30));
        assert_eq!(c.get_allow_stale(&1, t(30)), None);
    }

    #[test]
    fn poisoned_lock_is_recovered_not_propagated() {
        // A producer that panics while `get_or_insert_with` holds the
        // write lock poisons the underlying std lock. The serving loop
        // must survive that: the vendored `parking_lot` shim recovers
        // poisoned guards, so every later cache call keeps working
        // instead of cascading panics through the scheduler.
        let c: TtlCache<u32, u64> = TtlCache::new();
        c.put(1, 11, t(0), SimDuration::from_mins(30));
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _: Result<u64, ()> =
                c.get_or_insert_with(2, t(0), SimDuration::from_mins(5), || {
                    panic!("injected producer panic while holding the write lock")
                });
        }));
        assert!(panicked.is_err(), "the injected panic must surface to its own caller");
        // …but the cache is still fully usable afterwards.
        assert_eq!(c.get(&1, t(1)), Some(11), "read path survives poisoning");
        c.put(3, 33, t(1), SimDuration::from_mins(5));
        assert_eq!(c.get(&3, t(2)), Some(33), "write path survives poisoning");
        let r: Result<u64, ()> =
            c.get_or_insert_with(2, t(1), SimDuration::from_mins(5), || Ok(22));
        assert_eq!(r, Ok(22), "fetch-through survives poisoning");
        assert!(c.evict_expired(t(2)) == 0);
    }

    #[test]
    fn overwrite_extends_lifetime() {
        let c: TtlCache<u32, u64> = TtlCache::new();
        c.put(1, 1, t(0), SimDuration::from_mins(5));
        c.put(1, 2, t(4), SimDuration::from_mins(5));
        assert_eq!(c.get(&1, t(8)), Some(2));
    }

    // ---- capacity budgets (the bound the old eis cache lacked) ----

    #[test]
    fn entry_budget_evicts_in_insertion_order() {
        let c: TtlCache<u32, u64> = TtlCache::bounded(TtlBudget::entries(3));
        for i in 0..5 {
            c.put(i, u64::from(i), t(0), SimDuration::from_mins(60));
        }
        assert_eq!(c.len(), 3);
        // Oldest inserts (0, 1) went first; the newest three remain.
        assert_eq!(c.get(&0, t(1)), None);
        assert_eq!(c.get(&1, t(1)), None);
        for i in 2..5 {
            assert_eq!(c.get(&i, t(1)), Some(u64::from(i)), "entry {i} should survive");
        }
        assert_eq!(c.snapshot().evictions, 2);
    }

    #[test]
    fn overwrite_orphans_old_queue_record() {
        let c: TtlCache<u32, u64> = TtlCache::bounded(TtlBudget::entries(2));
        c.put(1, 1, t(0), SimDuration::from_mins(60));
        c.put(2, 2, t(0), SimDuration::from_mins(60));
        // Overwriting key 1 re-queues it as newest; its stale record
        // must not count against key 1 when the budget bites.
        c.put(1, 10, t(1), SimDuration::from_mins(60));
        c.put(3, 3, t(1), SimDuration::from_mins(60));
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&2, t(2)), None, "key 2 is now the oldest live insert");
        assert_eq!(c.get(&1, t(2)), Some(10));
        assert_eq!(c.get(&3, t(2)), Some(3));
    }

    #[test]
    fn byte_budget_bounds_unbounded_growth_workload() {
        // Regression for the unbounded-growth defect: hammer a bounded
        // cache with an ever-fresh key stream and assert residency never
        // exceeds the byte budget.
        let budget = TtlBudget::bytes(4096);
        let c: TtlCache<u64, u64> = TtlCache::bounded(budget);
        let cap = 4096 / (std::mem::size_of::<u64>() * 2 + 48);
        for i in 0..10_000u64 {
            c.put(i, i, t(0), SimDuration::from_mins(60));
            assert!(c.bytes() <= 4096, "resident bytes {} exceeded the budget", c.bytes());
        }
        assert_eq!(c.len(), cap);
        let s = c.snapshot();
        assert_eq!(s.insertions, 10_000);
        assert_eq!(s.evictions, 10_000 - cap as u64);
    }

    #[test]
    fn budget_applies_to_fetch_through_and_install() {
        let c: TtlCache<u32, u64> = TtlCache::bounded(TtlBudget::entries(2));
        for i in 0..4 {
            let _: Result<u64, ()> =
                c.get_or_insert_with(i, t(0), SimDuration::from_mins(60), || Ok(u64::from(i)));
        }
        assert_eq!(c.len(), 2);
        c.install(&[(10, 10, t(60)), (11, 11, t(60)), (12, 12, t(60))]);
        assert_eq!(c.len(), 2, "installed cells respect the budget too");
    }

    #[test]
    fn unbounded_cache_never_evicts_for_capacity() {
        let c: TtlCache<u64, u64> = TtlCache::new();
        for i in 0..1000 {
            c.put(i, i, t(0), SimDuration::from_mins(60));
        }
        assert_eq!(c.len(), 1000);
        assert_eq!(c.snapshot().evictions, 0);
    }
}
