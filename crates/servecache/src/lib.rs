//! # `servecache` — the serving-cache substrate
//!
//! One home for every process-level cache the serving stack leans on
//! (DESIGN.md §4l). Before this crate each layer grew its own cache with
//! its own accounting: the information server's TTL maps counted hits
//! one way, the solver's Dynamic Cache another, and nothing had a
//! capacity bound. This crate unifies them behind three generic pieces:
//!
//! * [`ttl`] — the sim-clock [`TtlCache`], moved here from `eis::cache`
//!   and given what it always lacked: **entry/byte budgets** with a
//!   deterministic FIFO eviction order (insertion order, lazily
//!   deduplicated), so a long-running server cannot grow without bound;
//! * [`lru`] — a deterministic O(1) [`Lru`] with entry *and* byte
//!   budgets, the building block for the per-lane Offering-Table tier;
//! * [`tier`] — [`SharedTier`], N lock-sharded `Lru`s behind one facade:
//!   the process-wide L2 that lanes consult on an L1 miss;
//! * [`metrics`] — [`TierSnapshot`] / [`CacheMetrics`], the unified
//!   hits/misses/evictions/bytes registry every tier reports through,
//!   replacing the bespoke per-cache `(u64, u64)` tuples;
//! * [`fnv`] — a run-stable FNV-1a 64 hasher ([`std::collections::HashMap`]'s
//!   default hasher is randomly seeded per process, so anything that
//!   must hash identically across runs — shard selection, cache keys in
//!   journals — routes through this instead).
//!
//! The crate deliberately knows nothing about forecasts, Offering
//! Tables or sessions: keys and values are generic, byte weights are
//! supplied by the caller, and expiry runs on [`ec_types::SimTime`] so
//! cached state ages at simulated speed and experiments stay
//! reproducible.

pub mod fnv;
pub mod lru;
pub mod metrics;
pub mod tier;
pub mod ttl;

pub use fnv::{fnv64, Fnv64};
pub use lru::Lru;
pub use metrics::{CacheMetrics, TierSnapshot};
pub use tier::SharedTier;
pub use ttl::{TtlBudget, TtlCache};
