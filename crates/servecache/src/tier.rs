//! The shared-process cache tier: N lock-sharded [`Lru`]s.
//!
//! Lanes (shard workers, service threads) consult this L2 on an L1
//! miss. Sharding by a run-stable FNV of the key keeps lock contention
//! off the hot path without giving up determinism of *values*: every
//! run maps a key to the same shard, and — because values stored under
//! one key are bit-identical by construction in this codebase — insert
//! races between lanes can only change *which lane pays the solve*,
//! never what any lookup returns.

use crate::fnv::fnv64;
use crate::lru::Lru;
use crate::metrics::TierSnapshot;
use parking_lot::Mutex;
use std::hash::Hash;

/// A concurrent, byte-budgeted cache shared by every lane of a process.
#[derive(Debug)]
pub struct SharedTier<K, V> {
    shards: Box<[Mutex<Lru<K, V>>]>,
}

impl<K: Eq + Hash + Clone, V: Clone> SharedTier<K, V> {
    /// A tier of `shards` locks, splitting `max_entries` / `max_bytes`
    /// evenly (each budget floor-divided, minimum one per shard).
    #[must_use]
    pub fn new(shards: usize, max_entries: usize, max_bytes: usize) -> Self {
        let shards = shards.max(1);
        let per_entries = (max_entries / shards).max(1);
        let per_bytes = (max_bytes / shards).max(1);
        Self {
            shards: (0..shards)
                .map(|_| Mutex::new(Lru::new(per_entries, per_bytes)))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
        }
    }

    fn shard(&self, key: &K) -> &Mutex<Lru<K, V>> {
        let i = (fnv64(key) as usize) % self.shards.len();
        &self.shards[i]
    }

    /// Look up `key`, cloning the value out (the lock is not held past
    /// the call). Promotes on hit.
    #[must_use]
    pub fn get(&self, key: &K) -> Option<V> {
        self.shard(key).lock().get(key).cloned()
    }

    /// Insert `key` weighted at `bytes`, evicting LRU entries of its
    /// shard as needed.
    pub fn insert(&self, key: K, value: V, bytes: usize) {
        self.shard(&key).lock().insert(key, value, bytes);
    }

    /// Evict every entry matching `stale`, across all shards; returns
    /// how many were dropped.
    pub fn evict_where(&self, mut stale: impl FnMut(&K) -> bool) -> usize {
        self.shards.iter().map(|s| s.lock().evict_where(&mut stale)).sum()
    }

    /// Drop everything.
    pub fn clear(&self) {
        for s in self.shards.iter() {
            s.lock().clear();
        }
    }

    /// Resident entries across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether every shard is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().is_empty())
    }

    /// Unified accounting snapshot, folded over the shards.
    #[must_use]
    pub fn snapshot(&self) -> TierSnapshot {
        self.shards.iter().fold(TierSnapshot::default(), |acc, s| acc.merge(s.lock().snapshot()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_insert_roundtrip_across_shards() {
        let tier: SharedTier<u32, String> = SharedTier::new(4, 100, 10_000);
        for i in 0..50 {
            tier.insert(i, format!("v{i}"), 10);
        }
        assert_eq!(tier.len(), 50);
        for i in 0..50 {
            assert_eq!(tier.get(&i), Some(format!("v{i}")));
        }
        assert_eq!(tier.get(&999), None);
        let s = tier.snapshot();
        assert_eq!(s.hits, 50);
        assert_eq!(s.misses, 1);
        assert_eq!(s.insertions, 50);
        assert_eq!(s.bytes, 500);
    }

    #[test]
    fn budgets_split_per_shard_and_bound_growth() {
        let tier: SharedTier<u32, u32> = SharedTier::new(2, 8, usize::MAX);
        for i in 0..1000 {
            tier.insert(i, i, 1);
        }
        assert!(tier.len() <= 8, "tier grew to {} entries over the budget", tier.len());
        assert!(tier.snapshot().evictions >= 992);
    }

    #[test]
    fn evict_where_and_clear_span_shards() {
        let tier: SharedTier<(u32, u64), u32> = SharedTier::new(4, 100, 10_000);
        for i in 0..20 {
            tier.insert((i, u64::from(i % 2)), i, 1);
        }
        assert_eq!(tier.evict_where(|&(_, w)| w == 0), 10);
        assert_eq!(tier.len(), 10);
        tier.clear();
        assert!(tier.is_empty());
    }

    #[test]
    fn concurrent_use_is_safe_and_values_consistent() {
        let tier: SharedTier<u32, u64> = SharedTier::new(4, 1024, usize::MAX);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for i in 0..200u32 {
                        // Every writer stores the same value per key — the
                        // bit-identical discipline the serving caches rely on.
                        tier.insert(i, u64::from(i) * 3, 8);
                        if let Some(v) = tier.get(&i) {
                            assert_eq!(v, u64::from(i) * 3);
                        }
                    }
                });
            }
        });
        assert_eq!(tier.len(), 200);
    }
}
