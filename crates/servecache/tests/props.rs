//! Property tests: the O(1) intrusive-list [`Lru`] against a naive
//! model, and the bounded [`TtlCache`]'s budget invariant under
//! arbitrary workloads.

use proptest::prelude::*;
use servecache::{Lru, TtlBudget, TtlCache};

/// Obviously-correct reference: a `Vec` in most-recent-first order with
/// linear scans everywhere.
struct ModelLru {
    entries: Vec<(u8, u32, usize)>, // (key, value, bytes), MRU first
    max_entries: usize,
    max_bytes: usize,
}

impl ModelLru {
    fn new(max_entries: usize, max_bytes: usize) -> Self {
        Self { entries: Vec::new(), max_entries: max_entries.max(1), max_bytes: max_bytes.max(1) }
    }

    fn bytes(&self) -> usize {
        self.entries.iter().map(|&(_, _, b)| b).sum()
    }

    fn get(&mut self, key: u8) -> Option<u32> {
        let pos = self.entries.iter().position(|&(k, _, _)| k == key)?;
        let e = self.entries.remove(pos);
        self.entries.insert(0, e);
        Some(e.1)
    }

    fn insert(&mut self, key: u8, value: u32, bytes: usize) {
        if bytes > self.max_bytes {
            self.entries.retain(|&(k, _, _)| k != key);
            return;
        }
        self.entries.retain(|&(k, _, _)| k != key);
        self.entries.insert(0, (key, value, bytes));
        while self.entries.len() > self.max_entries || self.bytes() > self.max_bytes {
            self.entries.pop();
        }
    }

    fn remove(&mut self, key: u8) -> Option<u32> {
        let pos = self.entries.iter().position(|&(k, _, _)| k == key)?;
        Some(self.entries.remove(pos).1)
    }
}

#[derive(Debug, Clone)]
enum Op {
    Get(u8),
    Insert(u8, u32, usize),
    Remove(u8),
    EvictParity,
}

fn op() -> impl Strategy<Value = Op> {
    // The shim has no `prop_oneof`; a discriminant field plus `prop_map`
    // covers the same space. Inserts get 5 of the 8 discriminant values
    // so the caches actually fill up.
    (0u8..8, 0u8..24, any::<u32>(), 1usize..40).prop_map(|(which, k, v, b)| match which {
        0 => Op::Get(k),
        1 => Op::Remove(k),
        2 => Op::EvictParity,
        _ => Op::Insert(k, v, b),
    })
}

proptest! {
    /// Every observable of the real LRU — lookup results, recency
    /// order, occupancy, byte load — matches the naive model across
    /// arbitrary op sequences and budgets.
    #[test]
    fn lru_matches_model(
        ops in proptest::collection::vec(op(), 1..120),
        max_entries in 1usize..12,
        max_bytes in 8usize..200,
    ) {
        let mut real: Lru<u8, u32> = Lru::new(max_entries, max_bytes);
        let mut model = ModelLru::new(max_entries, max_bytes);
        for op in ops {
            match op {
                Op::Get(k) => {
                    prop_assert_eq!(real.get(&k).copied(), model.get(k));
                }
                Op::Insert(k, v, b) => {
                    real.insert(k, v, b);
                    model.insert(k, v, b);
                }
                Op::Remove(k) => {
                    prop_assert_eq!(real.remove(&k), model.remove(k));
                }
                Op::EvictParity => {
                    let dropped = real.evict_where(|&k| k % 2 == 0);
                    let before = model.entries.len();
                    model.entries.retain(|&(k, _, _)| k % 2 != 0);
                    prop_assert_eq!(dropped, before - model.entries.len());
                }
            }
            prop_assert_eq!(real.len(), model.entries.len());
            prop_assert_eq!(real.bytes(), model.bytes());
            let want: Vec<u8> = model.entries.iter().map(|&(k, _, _)| k).collect();
            prop_assert_eq!(real.keys_by_recency(), want);
            prop_assert!(real.len() <= max_entries);
            prop_assert!(real.bytes() <= max_bytes);
        }
    }

    /// A bounded TtlCache never exceeds its entry budget, and whatever
    /// remains resident is the suffix of live inserts (FIFO eviction).
    #[test]
    fn ttl_budget_holds_under_arbitrary_inserts(
        keys in proptest::collection::vec(0u16..64, 1..200),
        cap in 1usize..16,
    ) {
        use ec_types::{DayOfWeek, SimDuration, SimTime};
        let c: TtlCache<u16, u16> = TtlCache::bounded(TtlBudget::entries(cap));
        let now = SimTime::at(0, DayOfWeek::Mon, 9, 0);
        for &k in &keys {
            c.put(k, k, now, SimDuration::from_mins(60));
            prop_assert!(c.len() <= cap, "len {} over cap {}", c.len(), cap);
        }
        // The most recently inserted key always survives.
        let last = *keys.last().unwrap();
        prop_assert_eq!(c.get(&last, now), Some(last));
    }
}
