//! Property tests for the closed-loop occupancy invariants.
//!
//! Three promises the outcome engine's correctness rests on, each pinned
//! against arbitrary operation sequences:
//!
//! 1. **capacity** — a plug bank never holds more concurrent leases than
//!    plugs, whatever the occupy/release/queue interleaving;
//! 2. **FIFO** — releases serve the wait line strictly in arrival order,
//!    with abandons (patience timeouts) deleting from the middle without
//!    reordering the rest;
//! 3. **insertion-order independence** — same-time arrival events pushed
//!    into the world scheduler in any permutation drain in one total
//!    order, so the plug bank and wait line end up byte-identical.

use ec_types::{SessionId, SimTime, SplitMix64};
use ecocharge_outcomes::world::PlugBank;
use ecocharge_outcomes::ARRIVAL_NS;
use ecocharge_session::{Event, EventKind, EventScheduler};
use proptest::prelude::*;

/// An op stream for the bank model: interpreted against the bank's legal
/// preconditions (occupy may fail; enqueue only while full; release only
/// while leased).
fn ops() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..4, 1..200)
}

proptest! {
    /// Capacity and work conservation hold under any legal interleaving.
    #[test]
    fn occupied_never_exceeds_plugs(plugs in 1usize..5, ops in ops()) {
        let mut bank = PlugBank::new(plugs);
        let mut next_sid = 0u32;
        let mut clock = 0u64;
        for op in ops {
            clock += 1;
            match op {
                // Arrival: take a plug or (when full) sometimes queue.
                0 | 1 => {
                    if !bank.occupy() {
                        prop_assert_eq!(bank.free(), 0, "occupy refused with a free plug");
                        if op == 1 {
                            bank.enqueue(SessionId(next_sid), SimTime::from_secs(clock));
                            next_sid += 1;
                        }
                    }
                }
                // Release whatever is leased.
                2 => {
                    if bank.view().plugs > bank.free() {
                        let _ = bank.release();
                    }
                }
                // Abandon an arbitrary (maybe absent) waiter.
                _ => {
                    let _ = bank.abandon(SessionId(next_sid.saturating_sub(2)));
                }
            }
            let v = bank.view();
            prop_assert!(v.free <= v.plugs, "negative occupancy");
            prop_assert!(
                v.queue_len == 0 || v.free == 0,
                "waiter exists while a plug is free (work conservation broken)"
            );
        }
    }

    /// The line is served strictly in arrival order; abandons delete
    /// without reordering.
    #[test]
    fn releases_serve_the_line_in_fifo_order(
        plugs in 1usize..4,
        ops in ops(),
    ) {
        let mut bank = PlugBank::new(plugs);
        // Saturate the bank so every arrival queues.
        for _ in 0..plugs {
            prop_assert!(bank.occupy());
        }
        let mut expected: Vec<SessionId> = Vec::new(); // live line, arrival order
        let mut next_sid = 0u32;
        let mut clock = 0u64;
        for op in ops {
            clock += 1;
            match op {
                0 | 1 => {
                    if bank.free() == 0 {
                        let sid = SessionId(next_sid);
                        next_sid += 1;
                        bank.enqueue(sid, SimTime::from_secs(clock));
                        expected.push(sid);
                    } else {
                        prop_assert!(bank.occupy());
                    }
                }
                2 => {
                    if bank.view().plugs > bank.free() {
                        match bank.release() {
                            Some((served, _)) => {
                                prop_assert!(!expected.is_empty());
                                prop_assert_eq!(
                                    served, expected.remove(0),
                                    "release served out of arrival order"
                                );
                            }
                            None => prop_assert!(expected.is_empty()),
                        }
                    }
                }
                _ => {
                    // Abandon the middle of the line when it has one.
                    if expected.len() >= 2 {
                        let victim = expected.remove(expected.len() / 2);
                        prop_assert!(bank.abandon(victim));
                    }
                }
            }
            let live: Vec<SessionId> = bank.waiting().collect();
            prop_assert_eq!(&live, &expected, "line diverged from the FIFO model");
        }
    }

    /// Same-time arrivals inserted in any permutation drain in one total
    /// order (the `(time, session, kind)` key), so the resulting bank
    /// state cannot depend on push order.
    #[test]
    fn same_time_arrivals_are_insertion_order_independent(
        n in 2usize..12,
        shuffle_seed in 0u64..10_000,
        at in 0u64..100_000,
    ) {
        let make_events = || -> Vec<Event> {
            (0..n)
                .map(|i| Event {
                    time: SimTime::from_secs(at),
                    session: SessionId(ARRIVAL_NS + i as u32),
                    kind: EventKind::Occupy,
                    offset_m: 0.0,
                })
                .collect()
        };
        let drain = |events: Vec<Event>| -> (Vec<SessionId>, Vec<SessionId>) {
            let mut q = EventScheduler::new();
            for e in events {
                q.push(e);
            }
            // Apply the drain to a 1-plug bank: first arrival plugs in,
            // the rest queue — the line order is the pop order.
            let mut bank = PlugBank::new(1);
            let mut popped = Vec::new();
            while let Some(e) = q.pop_exact(1, |_| false).first().copied() {
                popped.push(e.session);
                if !bank.occupy() {
                    bank.enqueue(e.session, e.time);
                }
            }
            (popped, bank.waiting().collect())
        };

        let (base_order, base_line) = drain(make_events());
        let mut shuffled = make_events();
        let mut rng = SplitMix64::new(shuffle_seed);
        for i in (1..shuffled.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            shuffled.swap(i, j);
        }
        let (perm_order, perm_line) = drain(shuffled);
        prop_assert_eq!(&base_order, &perm_order, "pop order depends on push order");
        prop_assert_eq!(&base_line, &perm_line, "wait line depends on push order");
        // And the order is the session-id total order, by construction.
        let sorted = {
            let mut s = base_order.clone();
            s.sort();
            s
        };
        prop_assert_eq!(base_order, sorted);
    }
}
