//! Regression: observed-full feedback demonstrably alters subsequent
//! Offering Tables.
//!
//! Two layers. The component-level test drives the exact mechanism: one
//! trip solved against two servers — identical except that one carries an
//! [`eis::ObservationFeed`] — produces identical tables *before* the
//! first full-charger observation and diverging tables *after* it, with
//! the availability component's provenance recording the correction. The
//! engine-level test closes the loop end to end: the same outcome cell
//! run with feedback on and off diverges in realized outcomes once a full
//! charger has been observed.

use chargers::{synth_fleet, FleetParams};
use ec_types::SimDuration;
use ecocharge_core::{EcoCharge, EcoChargeConfig, QueryCtx, RankingMethod};
use ecocharge_outcomes::{run_outcomes, OutcomeConfig, ReQueryOnFull};
use eis::{InfoServer, ObservationFeed, OccupancyObservation, SimProviders};
use roadnet::{urban_grid, UrbanGridParams};
use std::sync::Arc;
use trajgen::{generate_trips, BrinkhoffParams};

#[test]
fn tables_diverge_only_after_the_first_full_observation() {
    let g = urban_grid(&UrbanGridParams { cols: 12, rows: 12, ..Default::default() });
    let fleet = synth_fleet(&g, &FleetParams { count: 8, seed: 11, ..Default::default() });
    let sims = SimProviders::new(11);
    let trip =
        generate_trips(&g, &BrinkhoffParams { trips: 1, seed: 11, ..Default::default() }).remove(0);

    let feed = Arc::new(ObservationFeed::default());
    let plain = InfoServer::from_sims(sims.clone());
    let fed = InfoServer::from_sims(sims.clone()).with_observations(Arc::clone(&feed));
    let config = EcoChargeConfig::default();
    let ctx_plain = QueryCtx::new(&g, &fleet, &plain, &sims, config);
    let ctx_fed = QueryCtx::new(&g, &fleet, &fed, &sims, config);

    let solve = |ctx: &QueryCtx<'_>, at| {
        EcoCharge::new().offering_table(ctx, &trip, trip.length_m(), at).expect("solve")
    };

    // Before any observation the feed is pass-through: same trip, same
    // instant, bit-identical tables.
    let t0 = trip.depart;
    let before_plain = solve(&ctx_plain, t0);
    let before_fed = solve(&ctx_fed, t0);
    assert_eq!(
        before_plain.charger_ids(),
        before_fed.charger_ids(),
        "an empty feed must not alter rankings"
    );
    for (p, f) in before_plain.entries.iter().zip(&before_fed.entries) {
        assert_eq!(p.a, f.a, "an empty feed must not alter availability intervals");
        assert!(!f.provenance.a.is_corrected(), "nothing observed yet");
    }

    // A driver arrives at the top-ranked charger and finds it full.
    let observed = before_plain.entries[0].charger;
    let t1 = t0 + SimDuration::from_mins(5);
    let plugs = fleetsim::occupancy::plug_count(fleet.get(observed).kind) as u32;
    feed.record(observed, OccupancyObservation { at: t1, free: 0, plugs });

    // Every later solve sees the correction: the observed charger's
    // availability is pulled toward zero, the provenance says so, and the
    // plain server — same trip, same instant — disagrees.
    let t2 = t1 + SimDuration::from_mins(2);
    let after_plain = solve(&ctx_plain, t2);
    let after_fed = solve(&ctx_fed, t2);
    let fed_entry = after_fed
        .entries
        .iter()
        .find(|e| e.charger == observed)
        .expect("observed charger stays in radius");
    let plain_entry = after_plain
        .entries
        .iter()
        .find(|e| e.charger == observed)
        .expect("observed charger stays in radius");
    assert!(
        fed_entry.provenance.a.is_corrected(),
        "the correction must be recorded in provenance, got {:?}",
        fed_entry.provenance.a
    );
    assert!(!plain_entry.provenance.a.is_corrected());
    assert_ne!(
        plain_entry.a, fed_entry.a,
        "a fresh full observation must move the availability interval"
    );
    assert!(
        fed_entry.a.lo() <= plain_entry.a.lo(),
        "full observation cannot raise the availability floor: {:?} vs {:?}",
        fed_entry.a,
        plain_entry.a
    );
    // The correction is honest, not punitive: corrected components do not
    // trip the degraded-row banner.
    assert!(!fed_entry.is_degraded(), "Corrected is better information, not worse");
}

#[test]
fn closed_loop_feedback_diverges_after_first_full_observation() {
    let g = urban_grid(&UrbanGridParams { cols: 12, rows: 12, ..Default::default() });
    let fleet = synth_fleet(&g, &FleetParams { count: 5, seed: 7, ..Default::default() });
    let sims = SimProviders::new(7);
    // A small fleet of chargers under heavy background demand: full
    // chargers are guaranteed, so the feedback path must engage.
    let cell = OutcomeConfig { vehicles: 10, intensity: 4.0, seed: 3, ..OutcomeConfig::default() };
    let on = run_outcomes(&g, &fleet, &sims, &ReQueryOnFull, &cell);
    let off = run_outcomes(
        &g,
        &fleet,
        &sims,
        &ReQueryOnFull,
        &OutcomeConfig { feedback: false, ..cell.clone() },
    );
    assert!(on.feedback && !off.feedback);
    assert!(
        on.first_full_observation.is_some(),
        "at intensity 4 a full charger must be observed: {:?}",
        on.stats
    );
    assert_ne!(
        on.digest, off.digest,
        "feedback on vs off must realize different outcomes once a full charger was seen \
         (on: {:?}, off: {:?})",
        on.stats, off.stats
    );
}
