//! # `ecocharge-outcomes` — closed-loop outcome simulation.
//!
//! Every layer below this one measures the serving stack on its own
//! terms: how fast tables are produced, how tight the intervals are, how
//! the ranking orders candidates. This crate closes the loop the paper
//! leaves open — **did the driver actually get a plug?** — by simulating
//! the world the forecasts are about and letting recommendations feed
//! back into it:
//!
//! * [`world`] — ground-truth plug state per charger: capacity-bounded
//!   banks, leases, and FIFO wait lines with arrival-discovery semantics;
//! * [`demand`] — seeded exogenous background arrivals per charger,
//!   following the site archetype's time-of-day busy curve scaled by a
//!   demand-intensity knob;
//! * [`policy`] — the [`DriverPolicy`] reaction spectrum at an
//!   observed-full charger: [`CommitTop1`] waits, [`HedgeTopK`] falls
//!   through its kept table entries, [`ReQueryOnFull`] re-ranks from the
//!   curb, and [`NearestBaseline`] ignores the tables entirely;
//! * [`ledger`] — realized-outcome accounting: waits, strands, detour
//!   energy, queue lengths, and realized-vs-predicted clean-energy error,
//!   with a bit-exact digest the determinism gates compare;
//! * [`engine`] — [`run_outcomes`]: one simulated day interleaving the
//!   real [`ecocharge_session::SessionService`] solve heap with the
//!   occupancy event heap on a single deterministic virtual clock, with
//!   observed occupancy optionally fed back into the information server
//!   as availability corrections ([`eis::ObservationFeed`]).
//!
//! The endogenous-congestion point is the whole reason this is a *loop*:
//! when every vehicle is sent to the same "best" charger, that charger
//! fills up with the fleet's own arrivals — over-recommendation is a
//! failure mode the open-loop benchmarks cannot see, and exactly what
//! the `repro outcomes` gates measure policies against.

pub mod demand;
pub mod engine;
pub mod ledger;
pub mod policy;
pub mod world;

pub use engine::{run_outcomes, OutcomeConfig, OutcomeReport, ARRIVAL_NS, RELEASE_NS};
pub use ledger::{OutcomeLedger, OutcomeStats};
pub use policy::{
    ArrivalContext, CommitTop1, DriverPolicy, FullReaction, HedgeTopK, NearestBaseline,
    ReQueryOnFull,
};
pub use world::{ChargerWorld, CurbView, PlugBank};
