//! Physical plug state: banks, leases, and FIFO wait queues.
//!
//! [`ChargerWorld`] is the ground truth the forecasts are *about*: for
//! every charger, how many plugs exist ([`fleetsim::occupancy::plug_count`]),
//! how many are taken right now, and who is waiting in line. Fleet
//! drivers discover this state only on arrival (arrival-discovery
//! semantics — the Offering Table told them a probability, the curb
//! tells them the truth), and react through their
//! [`crate::policy::DriverPolicy`].
//!
//! Two invariants the property tests enforce:
//!
//! * **capacity** — occupied plugs never exceed the bank's plug count;
//! * **work conservation + FIFO** — a waiter exists only while every
//!   plug is taken, and releases serve waiters strictly in arrival
//!   order.

use chargers::ChargerFleet;
use ec_types::{ChargerId, SessionId, SimTime};
use fleetsim::occupancy::plug_count;
use std::collections::{BTreeMap, VecDeque};

/// What a driver sees when they pull up (the observation the feedback
/// loop reports to `eis`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CurbView {
    /// Plugs free right now.
    pub free: usize,
    /// Total plugs at the site.
    pub plugs: usize,
    /// Drivers already waiting in line.
    pub queue_len: usize,
}

/// One charger's plug bank and wait line.
#[derive(Debug, Clone)]
pub struct PlugBank {
    /// Total plugs.
    plugs: usize,
    /// Plugs currently leased.
    occupied: usize,
    /// Fleet drivers waiting, FIFO with their enqueue instants.
    queue: VecDeque<(SessionId, SimTime)>,
}

impl PlugBank {
    /// An empty bank with `plugs` plugs.
    #[must_use]
    pub fn new(plugs: usize) -> Self {
        assert!(plugs > 0, "a charger has at least one plug");
        Self { plugs, occupied: 0, queue: VecDeque::new() }
    }

    /// Plugs free right now.
    #[must_use]
    pub fn free(&self) -> usize {
        self.plugs - self.occupied
    }

    /// The curb as a driver sees it.
    #[must_use]
    pub fn view(&self) -> CurbView {
        CurbView { free: self.free(), plugs: self.plugs, queue_len: self.queue.len() }
    }

    /// Take a plug. Returns `false` (bank unchanged) when none is free.
    pub fn occupy(&mut self) -> bool {
        if self.occupied < self.plugs {
            self.occupied += 1;
            true
        } else {
            false
        }
    }

    /// Join the wait line (only legal while the bank is full — a free
    /// plug must be taken, not queued behind).
    pub fn enqueue(&mut self, driver: SessionId, at: SimTime) {
        debug_assert_eq!(self.free(), 0, "queueing with a free plug violates work conservation");
        self.queue.push_back((driver, at));
    }

    /// Release one plug. If someone is waiting, the line head takes the
    /// freed plug immediately (occupancy stays unchanged) and is
    /// returned with their enqueue instant; otherwise the plug stays
    /// free.
    ///
    /// # Panics
    /// Panics when nothing is occupied — a release without a lease is an
    /// engine bug, not a recoverable state.
    pub fn release(&mut self) -> Option<(SessionId, SimTime)> {
        assert!(self.occupied > 0, "release without an active lease");
        match self.queue.pop_front() {
            Some(head) => Some(head), // the head inherits the plug
            None => {
                self.occupied -= 1;
                None
            }
        }
    }

    /// Leave the wait line without being served (patience ran out).
    /// Returns `false` when the driver was not in line (already served).
    pub fn abandon(&mut self, driver: SessionId) -> bool {
        let before = self.queue.len();
        self.queue.retain(|&(d, _)| d != driver);
        before != self.queue.len()
    }

    /// Current line, in service order.
    pub fn waiting(&self) -> impl Iterator<Item = SessionId> + '_ {
        self.queue.iter().map(|&(d, _)| d)
    }
}

/// All plug banks, keyed by charger.
#[derive(Debug, Clone)]
pub struct ChargerWorld {
    banks: BTreeMap<ChargerId, PlugBank>,
}

impl ChargerWorld {
    /// One bank per charger in `fleet`, sized by kind.
    #[must_use]
    pub fn for_fleet(fleet: &ChargerFleet) -> Self {
        Self { banks: fleet.iter().map(|c| (c.id, PlugBank::new(plug_count(c.kind)))).collect() }
    }

    /// The bank for `charger`.
    ///
    /// # Panics
    /// Panics for a charger outside the world (engine bug).
    #[must_use]
    pub fn bank(&self, charger: ChargerId) -> &PlugBank {
        self.banks.get(&charger).expect("charger outside the world")
    }

    /// Mutable access to the bank for `charger`.
    ///
    /// # Panics
    /// Panics for a charger outside the world (engine bug).
    pub fn bank_mut(&mut self, charger: ChargerId) -> &mut PlugBank {
        self.banks.get_mut(&charger).expect("charger outside the world")
    }

    /// Plugs occupied across the whole world (diagnostics).
    #[must_use]
    pub fn total_occupied(&self) -> usize {
        self.banks.values().map(|b| b.plugs - b.free()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn capacity_is_hard() {
        let mut b = PlugBank::new(2);
        assert!(b.occupy());
        assert!(b.occupy());
        assert!(!b.occupy(), "third car refused");
        assert_eq!(b.free(), 0);
        assert_eq!(b.view(), CurbView { free: 0, plugs: 2, queue_len: 0 });
    }

    #[test]
    fn release_hands_the_plug_to_the_line_head_fifo() {
        let mut b = PlugBank::new(1);
        assert!(b.occupy());
        b.enqueue(SessionId(10), t(100));
        b.enqueue(SessionId(11), t(150));
        let (first, since) = b.release().unwrap();
        assert_eq!((first, since), (SessionId(10), t(100)));
        assert_eq!(b.free(), 0, "the head inherited the plug");
        assert_eq!(b.release().unwrap().0, SessionId(11));
        assert!(b.release().is_none(), "line empty: the plug actually frees");
        assert_eq!(b.free(), 1);
    }

    #[test]
    fn abandon_removes_from_anywhere_in_line() {
        let mut b = PlugBank::new(1);
        assert!(b.occupy());
        b.enqueue(SessionId(1), t(10));
        b.enqueue(SessionId(2), t(20));
        b.enqueue(SessionId(3), t(30));
        assert!(b.abandon(SessionId(2)));
        assert!(!b.abandon(SessionId(2)), "already gone");
        let order: Vec<SessionId> = b.waiting().collect();
        assert_eq!(order, vec![SessionId(1), SessionId(3)], "FIFO of the remainder preserved");
    }

    #[test]
    #[should_panic(expected = "without an active lease")]
    fn release_without_lease_panics() {
        let mut b = PlugBank::new(1);
        let _ = b.release();
    }
}
