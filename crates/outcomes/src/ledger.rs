//! Realized-outcome accounting.
//!
//! What actually happened to every charge attempt: how long the driver
//! waited, how far they detoured, whether they stranded, and how far the
//! table's *estimated* clean energy was from what the plug *delivered*.
//! [`OutcomeStats`] follows the `SessionStats` snapshot pattern (plain
//! counters, destructuring `absorb` so a new counter cannot silently be
//! dropped from aggregation); [`OutcomeLedger`] adds the continuous
//! accumulators and derives the per-cell metrics the `repro outcomes`
//! gates compare.

use ec_types::{rng, SimTime};

/// Event counters for one outcome run (the stats/metrics snapshot the
/// repro JSON embeds).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutcomeStats {
    /// Charge attempts started (a driver with a usable idle window and a
    /// non-empty candidate list).
    pub attempts: u64,
    /// Attempts that ended plugged in.
    pub charges: u64,
    /// Attempts that spent time in a FIFO line (served or not).
    pub waits: u64,
    /// Arrivals that refused a hopeless line outright.
    pub balks: u64,
    /// Drives to a kept alternative after an observed-full charger.
    pub diversions: u64,
    /// En-route re-ranks after an observed-full charger.
    pub re_queries: u64,
    /// Waits abandoned when patience ran out.
    pub timeouts: u64,
    /// Attempts that ended the day uncharged.
    pub strands: u64,
    /// Arrival-discovery occupancy observations taken.
    pub observations: u64,
    /// Background (non-fleet) arrivals generated.
    pub background_arrivals: u64,
    /// Background arrivals that found a plug.
    pub background_served: u64,
    /// Background arrivals lost to a full bank.
    pub background_balked: u64,
}

impl OutcomeStats {
    /// Fold another snapshot into this one. Destructures `other` so
    /// adding a counter without aggregating it is a compile error.
    pub fn absorb(&mut self, other: Self) {
        let Self {
            attempts,
            charges,
            waits,
            balks,
            diversions,
            re_queries,
            timeouts,
            strands,
            observations,
            background_arrivals,
            background_served,
            background_balked,
        } = other;
        self.attempts = self.attempts.saturating_add(attempts);
        self.charges = self.charges.saturating_add(charges);
        self.waits = self.waits.saturating_add(waits);
        self.balks = self.balks.saturating_add(balks);
        self.diversions = self.diversions.saturating_add(diversions);
        self.re_queries = self.re_queries.saturating_add(re_queries);
        self.timeouts = self.timeouts.saturating_add(timeouts);
        self.strands = self.strands.saturating_add(strands);
        self.observations = self.observations.saturating_add(observations);
        self.background_arrivals = self.background_arrivals.saturating_add(background_arrivals);
        self.background_served = self.background_served.saturating_add(background_served);
        self.background_balked = self.background_balked.saturating_add(background_balked);
    }
}

/// Counters plus continuous accumulators for one run.
#[derive(Debug, Clone, Default)]
pub struct OutcomeLedger {
    /// The event counters.
    pub stats: OutcomeStats,
    /// Total seconds spent in lines (including abandoned waits).
    wait_secs: f64,
    /// Sum of line lengths observed at fleet arrivals.
    queue_len_sum: u64,
    /// Out-and-back detour energy burned reaching chargers, kWh.
    detour_kwh: f64,
    /// Clean energy actually harvested, kWh.
    clean_kwh: f64,
    /// Grid energy topped up, kWh.
    grid_kwh: f64,
    /// Sum of |realized − predicted| clean energy over charges with a
    /// table-backed prediction, kWh.
    ec_abs_err_kwh: f64,
    /// Charges contributing to the EC error sum.
    ec_err_samples: u64,
    /// When the first full-charger observation was recorded (the instant
    /// feedback can start altering tables — the regression tests key on
    /// it).
    first_full_observation: Option<SimTime>,
}

impl OutcomeLedger {
    /// Record time spent waiting in a line.
    pub fn add_wait(&mut self, secs: f64) {
        self.wait_secs += secs;
    }

    /// Record the line length a fleet arrival observed.
    pub fn sample_queue(&mut self, len: usize) {
        self.queue_len_sum += len as u64;
    }

    /// Record out-and-back detour energy.
    pub fn add_detour_kwh(&mut self, kwh: f64) {
        self.detour_kwh += kwh;
    }

    /// Record a completed charge's energy split and, when the attempt
    /// carried a table prediction, its realized-vs-predicted clean-energy
    /// error.
    pub fn add_charge(&mut self, clean_kwh: f64, grid_kwh: f64, predicted_clean_kwh: Option<f64>) {
        self.clean_kwh += clean_kwh;
        self.grid_kwh += grid_kwh;
        if let Some(pred) = predicted_clean_kwh {
            self.ec_abs_err_kwh += (clean_kwh - pred).abs();
            self.ec_err_samples += 1;
        }
    }

    /// Note a full-charger observation at `at` (keeps the earliest).
    pub fn note_full_observation(&mut self, at: SimTime) {
        if self.first_full_observation.is_none() {
            self.first_full_observation = Some(at);
        }
    }

    /// The earliest full-charger observation, if any.
    #[must_use]
    pub fn first_full_observation(&self) -> Option<SimTime> {
        self.first_full_observation
    }

    /// Mean wait per attempt, seconds (stranded waits included — a
    /// policy that parks people in hopeless lines pays here).
    #[must_use]
    pub fn mean_wait_secs(&self) -> f64 {
        if self.stats.attempts == 0 {
            0.0
        } else {
            self.wait_secs / self.stats.attempts as f64
        }
    }

    /// Fraction of attempts that ended uncharged.
    #[must_use]
    pub fn strand_rate(&self) -> f64 {
        if self.stats.attempts == 0 {
            0.0
        } else {
            self.stats.strands as f64 / self.stats.attempts as f64
        }
    }

    /// Mean line length observed at fleet arrivals.
    #[must_use]
    pub fn mean_queue_len(&self) -> f64 {
        if self.stats.observations == 0 {
            0.0
        } else {
            self.queue_len_sum as f64 / self.stats.observations as f64
        }
    }

    /// Mean |realized − predicted| clean energy per predicted charge,
    /// kWh.
    #[must_use]
    pub fn ec_mae_kwh(&self) -> f64 {
        if self.ec_err_samples == 0 {
            0.0
        } else {
            self.ec_abs_err_kwh / self.ec_err_samples as f64
        }
    }

    /// Total detour energy, kWh.
    #[must_use]
    pub fn detour_kwh(&self) -> f64 {
        self.detour_kwh
    }

    /// Total `(clean, grid)` energy delivered, kWh.
    #[must_use]
    pub fn energy_kwh(&self) -> (f64, f64) {
        (self.clean_kwh, self.grid_kwh)
    }

    /// A bit-exact digest of every counter and accumulator — the value
    /// the determinism gates compare across thread counts and
    /// registration orders. Any drift in any metric changes it.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut h = 0xECC0_0C4A_u64;
        let mut fold = |v: u64| h = rng::mix(h, v);
        let s = &self.stats;
        for c in [
            s.attempts,
            s.charges,
            s.waits,
            s.balks,
            s.diversions,
            s.re_queries,
            s.timeouts,
            s.strands,
            s.observations,
            s.background_arrivals,
            s.background_served,
            s.background_balked,
            self.queue_len_sum,
            self.ec_err_samples,
        ] {
            fold(c);
        }
        for f in
            [self.wait_secs, self.detour_kwh, self.clean_kwh, self.grid_kwh, self.ec_abs_err_kwh]
        {
            fold(f.to_bits());
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_every_counter() {
        let mut a = OutcomeStats { attempts: 3, strands: 1, ..Default::default() };
        let b = OutcomeStats { attempts: 2, charges: 2, observations: 5, ..Default::default() };
        a.absorb(b);
        assert_eq!(a.attempts, 5);
        assert_eq!(a.charges, 2);
        assert_eq!(a.strands, 1);
        assert_eq!(a.observations, 5);
    }

    #[test]
    fn derived_metrics_divide_by_the_right_denominators() {
        let mut l = OutcomeLedger::default();
        l.stats.attempts = 4;
        l.stats.strands = 1;
        l.stats.observations = 2;
        l.add_wait(120.0);
        l.add_wait(60.0);
        l.sample_queue(3);
        l.sample_queue(1);
        l.add_charge(4.0, 2.0, Some(5.0));
        l.add_charge(3.0, 1.0, None);
        assert!((l.mean_wait_secs() - 45.0).abs() < 1e-12);
        assert!((l.strand_rate() - 0.25).abs() < 1e-12);
        assert!((l.mean_queue_len() - 2.0).abs() < 1e-12);
        assert!((l.ec_mae_kwh() - 1.0).abs() < 1e-12, "only the predicted charge counts");
        assert_eq!(l.energy_kwh(), (7.0, 3.0));
    }

    #[test]
    fn digest_tracks_every_field() {
        let mut a = OutcomeLedger::default();
        let mut b = OutcomeLedger::default();
        assert_eq!(a.digest(), b.digest());
        a.add_wait(1.0);
        assert_ne!(a.digest(), b.digest());
        b.add_wait(1.0);
        assert_eq!(a.digest(), b.digest());
        a.stats.balks += 1;
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn empty_ledger_metrics_are_zero_not_nan() {
        let l = OutcomeLedger::default();
        assert_eq!(l.mean_wait_secs(), 0.0);
        assert_eq!(l.strand_rate(), 0.0);
        assert_eq!(l.mean_queue_len(), 0.0);
        assert_eq!(l.ec_mae_kwh(), 0.0);
    }

    #[test]
    fn first_full_observation_keeps_the_earliest() {
        let mut l = OutcomeLedger::default();
        assert!(l.first_full_observation().is_none());
        l.note_full_observation(SimTime::from_secs(500));
        l.note_full_observation(SimTime::from_secs(100));
        assert_eq!(l.first_full_observation(), Some(SimTime::from_secs(500)));
    }
}
