//! The closed-loop event engine.
//!
//! [`run_outcomes`] drives one simulated day end to end: fleet vehicles
//! follow their [`fleetsim::DaySchedule`]s through the *real*
//! [`SessionService`] (Offering Tables come from the same solver, event
//! heap and serving stack production queries use — nothing is mocked),
//! while a seeded background demand process takes and releases plugs at
//! every charger. At each trip's end the vehicle's [`DriverPolicy`]
//! commits to ranked candidates and drives there; only on **arrival**
//! does the driver learn the true occupancy, react (wait in FIFO line,
//! balk, divert, re-query), and — when feedback is on — report the
//! observation to the information server, which folds it into later
//! availability components as [`ComponentQuality::Corrected`] values.
//!
//! ## Two heaps, one clock
//!
//! The service owns its solve events (re-ranks, rollovers, adaptations,
//! retirements); the world owns its occupancy events (background
//! arrivals, plug releases, driver arrivals, patience timeouts). Neither
//! heap is drained into the other: the engine interleaves them by
//! peeking both next virtual times and always advancing the earlier one,
//! world first on ties — so an observation recorded at instant `t` is
//! visible to every solve evaluated at `t` or later, and never to an
//! earlier one. Both heaps are deterministic total orders, so the merged
//! execution is one too: the ledger digest is bit-identical across
//! solver thread counts and session registration orders (the `repro
//! outcomes` gates pin this).
//!
//! ## Event-key namespaces
//!
//! World events ride the same `(time, session, kind)` key as service
//! events, with [`SessionId`] partitioned by range: real trip ids (small)
//! carry driver arrivals ([`EventKind::Observe`]) and patience timeouts
//! ([`EventKind::Occupy`]); `ARRIVAL_NS + charger_index` carries the
//! per-charger background arrival chain (one pending arrival per charger,
//! gaps ≥ 60 s, so keys never collide); `RELEASE_NS + lease` carries plug
//! releases, one fresh lease per plug-in.
//!
//! [`ComponentQuality::Corrected`]: ec_types::ComponentQuality::Corrected
//! [`SessionService`]: ecocharge_session::SessionService
//! [`DriverPolicy`]: crate::policy::DriverPolicy

use crate::demand;
use crate::ledger::{OutcomeLedger, OutcomeStats};
use crate::policy::{ArrivalContext, DriverPolicy, FullReaction};
use crate::world::ChargerWorld;
use chargers::ChargerFleet;
use ec_types::{ChargerId, DayOfWeek, GeoPoint, SessionId, SimDuration, SimTime, SplitMix64};
use ecocharge_core::{EcoCharge, EcoChargeConfig, QueryCtx, RankingMethod};
use ecocharge_session::{EventKind, EventScheduler, RegisterError, ServiceConfig, SessionService};
use eis::{InfoServer, ObservationFeed, OccupancyObservation, SimProviders};
use fleetsim::{build_schedules, ScheduleParams};
use roadnet::RoadGraph;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Session-id floor for background-arrival events: `ARRIVAL_NS + i`
/// is charger index `i`'s arrival chain. Trip ids must stay below this.
pub const ARRIVAL_NS: u32 = 1 << 24;
/// Session-id floor for plug-release events: `RELEASE_NS + lease`.
pub const RELEASE_NS: u32 = 1 << 25;

/// Surface-street driving speed for charger detours, m/s (30 km/h).
const DRIVE_SPEED_MPS: f64 = 8.33;
/// Fixed park-and-plug overhead per hop, seconds.
const STOP_OVERHEAD_S: f64 = 60.0;
/// Consumption while detouring, kWh per km.
const DRIVE_KWH_PER_KM: f64 = 0.18;
/// Shortest charge worth plugging in for, hours.
const MIN_CHARGE_H: f64 = 0.25;

/// Knobs for one outcome cell.
#[derive(Debug, Clone)]
pub struct OutcomeConfig {
    /// Fleet size (vehicles following day schedules).
    pub vehicles: usize,
    /// Background demand-intensity multiplier
    /// ([`demand::arrival_rate_per_hour`]); the bench sweeps this axis.
    pub intensity: f64,
    /// Master seed (schedules, background streams).
    pub seed: u64,
    /// Day the schedules run on.
    pub day: DayOfWeek,
    /// Solver configuration for the serving stack (its `threads` knob is
    /// the bench's thread-invariance axis; Offering Tables are
    /// bit-identical at any value by `ec-exec` construction).
    pub ecocharge: EcoChargeConfig,
    /// Feed arrival observations back into the information server
    /// (the closed loop's availability correction path).
    pub feedback: bool,
    /// Longest time a driver will sit at a plug, hours.
    pub max_plug_h: f64,
    /// Shortest idle window worth attempting a charge in.
    pub min_idle: SimDuration,
    /// How long a queued driver waits before giving up.
    pub patience: SimDuration,
    /// Line length at or above which arriving drivers balk.
    pub balk_queue_len: usize,
    /// En-route re-rank budget per attempt ([`crate::ReQueryOnFull`]).
    pub max_re_queries: u32,
    /// Trip-length band for the day schedules, metres.
    pub trip_band_m: (f64, f64),
    /// Register fleet sessions in reverse order (the determinism gate
    /// flips this and requires an identical digest).
    pub reverse_registration: bool,
}

impl Default for OutcomeConfig {
    fn default() -> Self {
        Self {
            vehicles: 16,
            intensity: 1.0,
            seed: 1,
            day: DayOfWeek::Tue,
            ecocharge: EcoChargeConfig::default(),
            feedback: true,
            max_plug_h: 2.0,
            min_idle: SimDuration::from_mins(20),
            patience: SimDuration::from_mins(30),
            balk_queue_len: 4,
            max_re_queries: 3,
            trip_band_m: (3_000.0, 10_000.0),
            reverse_registration: false,
        }
    }
}

/// What one `(policy, config)` cell realized.
#[derive(Debug, Clone)]
pub struct OutcomeReport {
    /// Policy name.
    pub policy: &'static str,
    /// Whether the observation feedback loop was on.
    pub feedback: bool,
    /// Raw event counters.
    pub stats: OutcomeStats,
    /// Mean wait per attempt, seconds.
    pub mean_wait_s: f64,
    /// Fraction of attempts that ended uncharged.
    pub strand_rate: f64,
    /// Mean line length observed at fleet arrivals.
    pub mean_queue_len: f64,
    /// Total out-and-back detour energy, kWh.
    pub detour_kwh: f64,
    /// Mean |realized − predicted| clean energy per table-backed charge,
    /// kWh.
    pub ec_mae_kwh: f64,
    /// Clean energy actually harvested, kWh.
    pub clean_kwh: f64,
    /// Grid energy topped up, kWh.
    pub grid_kwh: f64,
    /// Bit-exact ledger digest (the determinism gates compare this).
    pub digest: u64,
    /// When the first full-charger observation happened, if any.
    pub first_full_observation: Option<SimTime>,
}

/// One in-flight charge attempt (from commit point to plug-in or strand).
#[derive(Debug, Clone)]
struct Attempt {
    /// Where the driver is headed.
    target: ChargerId,
    /// Kept-but-untried alternatives, rank order, with their predicted
    /// clean kWh for this attempt's window.
    kept: Vec<(ChargerId, Option<f64>)>,
    /// Chargers already observed full this attempt.
    tried: Vec<ChargerId>,
    /// The trip this attempt follows (re-queries re-rank it).
    trip: trajgen::Trip,
    /// Re-queries spent.
    re_queries: u32,
    /// Window the driver will actually sit at the plug, hours.
    charge_h: f64,
    /// Table-predicted clean kWh for the current target (None for the
    /// no-information baseline).
    predicted_kwh: Option<f64>,
    /// Current position (trip end, then charger to charger).
    pos: GeoPoint,
    /// When the driver joined a line, if waiting.
    queued_at: Option<SimTime>,
}

/// The mutable world the event loop advances.
struct Engine<'w> {
    graph: &'w RoadGraph,
    fleet: &'w ChargerFleet,
    sims: &'w SimProviders,
    policy: &'w dyn DriverPolicy,
    cfg: &'w OutcomeConfig,
    /// The observation sink, present only when the feedback loop is on.
    feed: Option<Arc<ObservationFeed>>,
    world: ChargerWorld,
    events: EventScheduler,
    attempts: BTreeMap<SessionId, Attempt>,
    /// Active plug leases: release-event session id → charger.
    releases: BTreeMap<u32, ChargerId>,
    lease_next: u32,
    /// One background-arrival RNG per charger (fleet order).
    bg_rngs: Vec<SplitMix64>,
    /// Lazily recorded production series per charger (ground truth for
    /// realized clean energy).
    series: BTreeMap<ChargerId, ec_models::ProductionSeries>,
    ledger: OutcomeLedger,
    /// Past this instant no further background arrivals are scheduled,
    /// so the heap drains.
    horizon: SimTime,
}

impl Engine<'_> {
    fn schedule(&mut self, time: SimTime, session: u32, kind: EventKind) {
        self.events.push(ecocharge_session::Event {
            time,
            session: SessionId(session),
            kind,
            offset_m: 0.0,
        });
    }

    /// Seed every charger's background arrival chain from `start`.
    fn seed_background(&mut self, start: SimTime) {
        for idx in 0..self.fleet.len() {
            let charger = &self.fleet.all()[idx];
            let rate = demand::arrival_rate_per_hour(charger, start, self.cfg.intensity);
            let gap = demand::next_arrival_gap(rate, &mut self.bg_rngs[idx]);
            self.schedule(start + gap, ARRIVAL_NS + idx as u32, EventKind::Occupy);
        }
    }

    /// Seconds to drive `dist_m` of surface street plus plug-in overhead.
    fn travel(dist_m: f64) -> SimDuration {
        SimDuration::from_secs_f64((dist_m / DRIVE_SPEED_MPS + STOP_OVERHEAD_S).max(1.0))
    }

    /// Commit point: the driver picks their candidates and starts driving
    /// to the first. `candidates` are `(charger, raw table kWh)` in rank
    /// order — already cut to the policy's kept count.
    fn start_attempt(
        &mut self,
        sid: SessionId,
        trip: trajgen::Trip,
        candidates: &[(ChargerId, Option<f64>)],
        at: SimTime,
        idle: SimDuration,
    ) {
        debug_assert!(sid.0 < ARRIVAL_NS, "trip ids must stay below the namespace floor");
        let Some(((first, first_kwh), rest)) = candidates.split_first() else {
            return;
        };
        if idle < self.cfg.min_idle {
            return;
        }
        let dest = trip.position_at_offset(self.graph, trip.length_m());
        let dist_m = dest.fast_dist_m(&self.fleet.get(*first).loc);
        let travel = Self::travel(dist_m);
        // Out and back eats the window twice.
        let charge_h = (idle.as_hours_f64() - 2.0 * travel.as_hours_f64()).min(self.cfg.max_plug_h);
        if charge_h < MIN_CHARGE_H {
            return;
        }
        // The table's kWh assume the configured charge window; rescale to
        // the window this driver actually has.
        let window = self.cfg.ecocharge.charge_window_h.max(1e-9);
        let scale = charge_h / window;
        self.ledger.stats.attempts += 1;
        self.ledger.add_detour_kwh(2.0 * dist_m / 1_000.0 * DRIVE_KWH_PER_KM);
        let kept = rest.iter().map(|&(c, kwh)| (c, kwh.map(|v| v * scale))).collect();
        self.attempts.insert(
            sid,
            Attempt {
                target: *first,
                kept,
                tried: Vec::new(),
                trip,
                re_queries: 0,
                charge_h,
                predicted_kwh: first_kwh.map(|v| v * scale),
                pos: self.fleet.get(*first).loc,
                queued_at: None,
            },
        );
        self.schedule(at + travel, sid.0, EventKind::Observe);
    }

    /// Drive from the current position to another charger (divert or
    /// re-query pick) and schedule the arrival there.
    fn hop(&mut self, sid: SessionId, next: ChargerId, predicted: Option<f64>, at: SimTime) {
        let loc = self.fleet.get(next).loc;
        let a = self.attempts.get_mut(&sid).expect("hop without an attempt");
        let dist_m = a.pos.fast_dist_m(&loc);
        a.target = next;
        a.pos = loc;
        a.predicted_kwh = predicted;
        self.ledger.add_detour_kwh(2.0 * dist_m / 1_000.0 * DRIVE_KWH_PER_KM);
        self.schedule(at + Self::travel(dist_m), sid.0, EventKind::Observe);
    }

    /// The attempt ends uncharged.
    fn strand(&mut self, sid: SessionId) {
        self.ledger.stats.strands += 1;
        self.attempts.remove(&sid);
    }

    /// Join the FIFO line and start the patience clock.
    fn join_queue(&mut self, sid: SessionId, at: SimTime) {
        let a = self.attempts.get_mut(&sid).expect("queueing without an attempt");
        a.queued_at = Some(at);
        let target = a.target;
        self.ledger.stats.waits += 1;
        self.world.bank_mut(target).enqueue(sid, at);
        self.schedule(at + self.cfg.patience, sid.0, EventKind::Occupy);
    }

    /// The wait-or-balk tail shared by exhausted diverts and dry
    /// re-queries (the policy already spent its preferred reaction).
    fn join_or_balk(&mut self, sid: SessionId, at: SimTime) {
        let a = &self.attempts[&sid];
        if self.world.bank(a.target).view().queue_len < self.cfg.balk_queue_len {
            self.join_queue(sid, at);
        } else {
            self.ledger.stats.balks += 1;
            self.strand(sid);
        }
    }

    /// Plug in: record realized energy against the prediction and lease
    /// the plug until the driver's window ends. `inherited` marks a plug
    /// handed over by a release (occupancy already counted).
    fn plug_in(&mut self, sid: SessionId, charger: ChargerId, at: SimTime, inherited: bool) {
        let a = self.attempts.remove(&sid).expect("plug-in without an attempt");
        if !inherited {
            assert!(self.world.bank_mut(charger).occupy(), "plug-in with a full bank");
        }
        let c = self.fleet.get(charger);
        let series = self
            .series
            .entry(charger)
            .or_insert_with(|| c.record_production(&self.sims.weather, 0));
        let deliverable = c.kind.rate().value() * a.charge_h;
        let clean = c.exact_clean_energy(series, at, a.charge_h).value().min(deliverable);
        self.ledger.stats.charges += 1;
        self.ledger.add_charge(clean, deliverable - clean, a.predicted_kwh);
        let lease = self.lease_next;
        self.lease_next += 1;
        self.releases.insert(RELEASE_NS + lease, charger);
        let held = SimDuration::from_secs_f64((a.charge_h * 3_600.0).max(1.0));
        self.schedule(at + held, RELEASE_NS + lease, EventKind::Occupy);
    }

    /// A fleet driver reaches their target charger and sees the curb.
    fn on_observe(&mut self, sid: SessionId, at: SimTime, ctx: &QueryCtx<'_>) {
        let Some(a) = self.attempts.get_mut(&sid) else {
            return;
        };
        let target = a.target;
        let view = self.world.bank(target).view();
        self.ledger.stats.observations += 1;
        self.ledger.sample_queue(view.queue_len);
        if let Some(feed) = &self.feed {
            feed.record(
                target,
                OccupancyObservation { at, free: view.free as u32, plugs: view.plugs as u32 },
            );
        }
        if view.free > 0 {
            self.plug_in(sid, target, at, false);
            return;
        }
        self.ledger.note_full_observation(at);
        let a = self.attempts.get_mut(&sid).expect("checked above");
        a.tried.push(target);
        let tried = a.tried.clone();
        a.kept.retain(|(c, _)| !tried.contains(c));
        let reaction = self.policy.on_full(&ArrivalContext {
            queue_len: view.queue_len,
            plugs: view.plugs,
            balk_at: self.cfg.balk_queue_len,
            alternatives_left: a.kept.len(),
            re_queries_used: a.re_queries,
            max_re_queries: self.cfg.max_re_queries,
        });
        match reaction {
            FullReaction::Wait => self.join_queue(sid, at),
            FullReaction::Balk => {
                self.ledger.stats.balks += 1;
                self.strand(sid);
            }
            FullReaction::Divert => {
                self.ledger.stats.diversions += 1;
                let a = self.attempts.get_mut(&sid).expect("checked above");
                match a.kept.first().copied() {
                    Some((next, kwh)) => {
                        a.kept.remove(0);
                        self.hop(sid, next, kwh, at);
                    }
                    None => self.join_or_balk(sid, at),
                }
            }
            FullReaction::ReQuery => self.requery(sid, at, ctx),
        }
    }

    /// Re-rank from the curb through a fresh solver. With feedback on,
    /// the solve already sees the full observation recorded seconds ago
    /// at this very charger — the correction and the reaction compose.
    fn requery(&mut self, sid: SessionId, at: SimTime, ctx: &QueryCtx<'_>) {
        let (trip, tried, scale) = {
            let a = self.attempts.get_mut(&sid).expect("re-query without an attempt");
            a.re_queries += 1;
            let window = self.cfg.ecocharge.charge_window_h.max(1e-9);
            (a.trip.clone(), a.tried.clone(), a.charge_h / window)
        };
        self.ledger.stats.re_queries += 1;
        let mut solver = EcoCharge::new();
        let pick = solver.offering_table(ctx, &trip, trip.length_m(), at).ok().and_then(|table| {
            table
                .entries
                .iter()
                .find(|e| !tried.contains(&e.charger))
                .map(|e| (e.charger, Some(e.est_clean_kwh.value() * scale)))
        });
        match pick {
            Some((next, kwh)) => self.hop(sid, next, kwh, at),
            None => self.join_or_balk(sid, at),
        }
    }

    /// A queued driver's patience ran out.
    fn on_timeout(&mut self, sid: SessionId, at: SimTime) {
        let Some(a) = self.attempts.get_mut(&sid) else {
            return; // already served or stranded
        };
        let Some(queued_at) = a.queued_at else {
            return;
        };
        if at != queued_at + self.cfg.patience {
            return; // stale timeout from an earlier line
        }
        let target = a.target;
        if self.world.bank_mut(target).abandon(sid) {
            self.ledger.stats.timeouts += 1;
            self.ledger.add_wait(self.cfg.patience.as_secs() as f64);
            self.strand(sid);
        }
    }

    /// A plug frees; the line head (if any) inherits it on the spot.
    fn on_release(&mut self, lease_sid: u32, at: SimTime) {
        let charger = self.releases.remove(&lease_sid).expect("release without a lease");
        if let Some((head, since)) = self.world.bank_mut(charger).release() {
            self.ledger.add_wait(at.saturating_since(since).as_secs() as f64);
            let a = self.attempts.get_mut(&head).expect("queued driver without an attempt");
            a.queued_at = None;
            self.plug_in(head, charger, at, true);
        }
    }

    /// A background (non-fleet) driver arrives: take a plug or leave —
    /// background demand never queues, so lines stay fleet-only and the
    /// `queue nonempty ⇒ bank full` invariant is cheap to hold.
    fn on_background(&mut self, idx: usize, at: SimTime) {
        let charger = &self.fleet.all()[idx];
        self.ledger.stats.background_arrivals += 1;
        if self.world.bank_mut(charger.id).occupy() {
            self.ledger.stats.background_served += 1;
            let held = demand::session_duration(charger.kind, &mut self.bg_rngs[idx]);
            let lease = self.lease_next;
            self.lease_next += 1;
            self.releases.insert(RELEASE_NS + lease, charger.id);
            self.schedule(at + held, RELEASE_NS + lease, EventKind::Occupy);
        } else {
            self.ledger.stats.background_balked += 1;
        }
        // Chain the next arrival at the rate around *now* (piecewise-
        // constant-rate Poisson), stopping past the horizon so the heap
        // drains.
        let rate = demand::arrival_rate_per_hour(charger, at, self.cfg.intensity);
        let gap = demand::next_arrival_gap(rate, &mut self.bg_rngs[idx]);
        if at + gap <= self.horizon {
            self.schedule(at + gap, ARRIVAL_NS + idx as u32, EventKind::Occupy);
        }
    }

    /// Execute the single next world event.
    fn step(&mut self, ctx: &QueryCtx<'_>) {
        let Some(ev) = self.events.pop_exact(1, |_| false).first().copied() else {
            return;
        };
        let s = ev.session.0;
        if s >= RELEASE_NS {
            self.on_release(s, ev.time);
        } else if s >= ARRIVAL_NS {
            self.on_background((s - ARRIVAL_NS) as usize, ev.time);
        } else {
            match ev.kind {
                EventKind::Observe => self.on_observe(ev.session, ev.time, ctx),
                EventKind::Occupy => self.on_timeout(ev.session, ev.time),
                other => unreachable!("outcome world never schedules {other:?}"),
            }
        }
    }
}

/// Run one `(policy, config)` cell: build the day's schedules, serve the
/// fleet through the real session service (policies that read tables),
/// drive every attempt to a plug-in or a strand, and report what was
/// realized. Deterministic in `cfg` — bit-identical across
/// `cfg.ecocharge.threads` and `cfg.reverse_registration`.
///
/// # Panics
/// Panics when the serving stack fails internally (solver errors are
/// shed per session, not panicked) or when `cfg.vehicles` is zero.
#[must_use]
pub fn run_outcomes(
    graph: &RoadGraph,
    fleet: &ChargerFleet,
    sims: &SimProviders,
    policy: &dyn DriverPolicy,
    cfg: &OutcomeConfig,
) -> OutcomeReport {
    let use_service = policy.uses_offering_tables();
    let attach_feedback = cfg.feedback && use_service;
    let feed = Arc::new(ObservationFeed::default());
    let mut server = InfoServer::from_sims(sims.clone());
    if attach_feedback {
        server = server.with_observations(Arc::clone(&feed));
    }
    let ctx = QueryCtx::new(graph, fleet, &server, sims, cfg.ecocharge);

    let schedules = build_schedules(
        graph,
        &ScheduleParams {
            vehicles: cfg.vehicles,
            day: cfg.day,
            trip_band_m: cfg.trip_band_m,
            seed: cfg.seed,
        },
    );
    let day_start = SimTime::at(0, cfg.day, 6, 0);
    let last_arrival = schedules
        .iter()
        .filter_map(|s| s.legs.last())
        .map(|t| t.arrival(graph))
        .max()
        .unwrap_or(day_start);
    let tail = SimDuration::from_hours(1);

    let mut engine = Engine {
        graph,
        fleet,
        sims,
        policy,
        cfg,
        feed: attach_feedback.then(|| Arc::clone(&feed)),
        world: ChargerWorld::for_fleet(fleet),
        events: EventScheduler::new(),
        attempts: BTreeMap::new(),
        releases: BTreeMap::new(),
        lease_next: 0,
        bg_rngs: fleet
            .iter()
            .map(|c| {
                SplitMix64::new(ec_types::rng::mix(
                    ec_types::rng::subseed(cfg.seed, 0xBA5E),
                    c.entity_seed(),
                ))
            })
            .collect(),
        series: BTreeMap::new(),
        ledger: OutcomeLedger::default(),
        horizon: last_arrival + SimDuration::from_hours(5),
    };
    engine.seed_background(day_start);

    // Per-leg idle windows, keyed by the session id the service will use.
    let mut idle_of: BTreeMap<SessionId, SimDuration> = BTreeMap::new();
    let mut trip_of: BTreeMap<SessionId, trajgen::Trip> = BTreeMap::new();
    for sched in &schedules {
        for (i, leg) in sched.legs.iter().enumerate() {
            let sid = SessionId(leg.id.0);
            idle_of.insert(sid, sched.idle_after(graph, i, tail));
            trip_of.insert(sid, leg.clone());
        }
    }

    let mut service = if use_service {
        let mut svc = SessionService::new(ServiceConfig {
            max_sessions: trip_of.len().max(1),
            events_per_tick: 1,
            ..ServiceConfig::default()
        });
        let mut order: Vec<&trajgen::Trip> = schedules.iter().flat_map(|s| s.legs.iter()).collect();
        if cfg.reverse_registration {
            order.reverse();
        }
        for trip in order {
            match svc.register(&ctx, trip) {
                // A leg the planner cannot segment simply never charges.
                Ok(_) | Err(RegisterError::Planning(_)) => {}
                Err(e) => panic!("outcome registration failed: {e:?}"),
            }
        }
        Some(svc)
    } else {
        // The no-information baseline never talks to the service: its
        // decision is the nearest charger to each trip's end, committed
        // at arrival time.
        for sched in &schedules {
            for leg in &sched.legs {
                let sid = SessionId(leg.id.0);
                let dest = leg.position_at_offset(graph, leg.length_m());
                let picks: Vec<(ChargerId, Option<f64>)> =
                    fleet.knn(&dest, 1).into_iter().map(|(c, _)| (c, None)).collect();
                engine.start_attempt(sid, leg.clone(), &picks, leg.arrival(graph), idle_of[&sid]);
            }
        }
        None
    };

    // The merged clock: always advance the earlier heap, world first on
    // ties so observations at `t` are visible to solves at `t`.
    loop {
        let world_next = engine.events.next_time();
        let service_next = service.as_ref().and_then(SessionService::next_event_time);
        let run_world = match (world_next, service_next) {
            (Some(w), Some(s)) => w <= s,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        if run_world {
            engine.step(&ctx);
            continue;
        }
        let svc = service.as_mut().expect("service branch without a service");
        let before = svc.event_log().len();
        svc.tick(&ctx).expect("outcome serving tick failed");
        // A retirement is the trip's commit point: the driver takes the
        // last Offering Table they were served and starts driving.
        let retired: Vec<(SessionId, SimTime)> = svc.event_log()[before..]
            .iter()
            .filter(|e| e.kind == EventKind::Retire)
            .map(|e| (e.session, e.time))
            .collect();
        for (sid, at) in retired {
            let Some(state) = svc.session(sid) else {
                continue;
            };
            if state.shed_reason.is_some() {
                continue;
            }
            let Some(solved) = state.solves.iter().rev().find(|s| !s.table.entries.is_empty())
            else {
                continue;
            };
            let kept = engine.policy.kept_candidates(cfg.ecocharge.k).max(1);
            let picks: Vec<(ChargerId, Option<f64>)> = solved
                .table
                .entries
                .iter()
                .take(kept)
                .map(|e| (e.charger, Some(e.est_clean_kwh.value())))
                .collect();
            let trip = trip_of[&sid].clone();
            engine.start_attempt(sid, trip, &picks, at, idle_of[&sid]);
        }
    }

    assert!(engine.attempts.is_empty(), "every attempt must resolve before the heaps drain");
    let ledger = engine.ledger;
    let (clean_kwh, grid_kwh) = ledger.energy_kwh();
    OutcomeReport {
        policy: policy.name(),
        feedback: attach_feedback,
        stats: ledger.stats,
        mean_wait_s: ledger.mean_wait_secs(),
        strand_rate: ledger.strand_rate(),
        mean_queue_len: ledger.mean_queue_len(),
        detour_kwh: ledger.detour_kwh(),
        ec_mae_kwh: ledger.ec_mae_kwh(),
        clean_kwh,
        grid_kwh,
        digest: ledger.digest(),
        first_full_observation: ledger.first_full_observation(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{CommitTop1, HedgeTopK, NearestBaseline, ReQueryOnFull};
    use chargers::{synth_fleet, FleetParams};
    use roadnet::{urban_grid, UrbanGridParams};

    fn world() -> (RoadGraph, ChargerFleet, SimProviders) {
        let g = urban_grid(&UrbanGridParams { cols: 12, rows: 12, ..Default::default() });
        let fleet = synth_fleet(&g, &FleetParams { count: 6, seed: 7, ..Default::default() });
        let sims = SimProviders::new(7);
        (g, fleet, sims)
    }

    fn cfg(intensity: f64) -> OutcomeConfig {
        OutcomeConfig { vehicles: 8, intensity, seed: 3, ..OutcomeConfig::default() }
    }

    #[test]
    fn runs_a_cell_and_accounts_every_attempt() {
        let (g, fleet, sims) = world();
        let r = run_outcomes(&g, &fleet, &sims, &CommitTop1, &cfg(1.0));
        assert!(r.stats.attempts > 0, "some vehicle had a usable idle window");
        assert_eq!(
            r.stats.charges + r.stats.strands,
            r.stats.attempts,
            "every attempt either charged or stranded: {:?}",
            r.stats
        );
        assert!(r.stats.background_arrivals > 0);
        assert!(r.clean_kwh + r.grid_kwh > 0.0 || r.stats.charges == 0);
    }

    #[test]
    fn identical_config_is_bit_identical() {
        let (g, fleet, sims) = world();
        let a = run_outcomes(&g, &fleet, &sims, &HedgeTopK, &cfg(2.0));
        let b = run_outcomes(&g, &fleet, &sims, &HedgeTopK, &cfg(2.0));
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn solver_threads_and_registration_order_do_not_change_outcomes() {
        let (g, fleet, sims) = world();
        let base = cfg(2.0);
        let a = run_outcomes(&g, &fleet, &sims, &ReQueryOnFull, &base);
        let threaded = OutcomeConfig {
            ecocharge: EcoChargeConfig { threads: 4, ..base.ecocharge },
            ..base.clone()
        };
        let b = run_outcomes(&g, &fleet, &sims, &ReQueryOnFull, &threaded);
        assert_eq!(a.digest, b.digest, "solver thread count leaked into outcomes");
        let reversed = OutcomeConfig { reverse_registration: true, ..base.clone() };
        let c = run_outcomes(&g, &fleet, &sims, &ReQueryOnFull, &reversed);
        assert_eq!(a.digest, c.digest, "registration order leaked into outcomes");
    }

    #[test]
    fn nearest_baseline_runs_without_a_service() {
        let (g, fleet, sims) = world();
        let r = run_outcomes(&g, &fleet, &sims, &NearestBaseline, &cfg(1.0));
        assert!(r.stats.attempts > 0);
        assert!(!r.feedback, "no tables, no feedback loop");
        assert_eq!(r.ec_mae_kwh, 0.0, "no predictions to err against");
    }

    #[test]
    fn feedback_changes_realized_outcomes_once_a_full_charger_is_seen() {
        let (g, fleet, sims) = world();
        // Crank demand so full chargers are observed.
        let on = run_outcomes(&g, &fleet, &sims, &ReQueryOnFull, &cfg(4.0));
        let off = run_outcomes(
            &g,
            &fleet,
            &sims,
            &ReQueryOnFull,
            &OutcomeConfig { feedback: false, ..cfg(4.0) },
        );
        assert!(on.feedback && !off.feedback);
        if on.first_full_observation.is_some() {
            assert_ne!(
                on.digest, off.digest,
                "observed-full feedback must alter subsequent tables and thus outcomes"
            );
        }
    }
}
