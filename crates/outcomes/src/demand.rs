//! Exogenous background demand: the drivers who are not in the fleet.
//!
//! The availability *forecast* models other people's demand statistically
//! (`ec-models` archetype busy curves); the closed-loop world needs those
//! other people to actually show up and take plugs. Each charger gets a
//! seeded arrival process whose rate follows its site archetype's
//! time-of-day busy curve scaled by plug count, turnover speed of its
//! charger kind, and the cell's demand-intensity knob — so a Downtown
//! DC plaza at 18:00 under intensity 3.0 really is hard to get into,
//! exactly the situation the forecast claimed was likely.
//!
//! Everything here is a pure function of `(charger, time, intensity)`
//! plus one [`SplitMix64`] stream per charger seeded from
//! [`chargers::Charger::entity_seed`] — byte-identical across runs,
//! thread counts and registration orders.

use chargers::{Charger, ChargerKind};
use ec_types::{SimDuration, SimTime, SplitMix64};

/// Background sessions per plug-hour at peak busyness for each charger
/// kind — fast DC plugs turn over far more often than overnight AC posts.
#[must_use]
pub fn turnover_per_plug_hour(kind: ChargerKind) -> f64 {
    match kind {
        ChargerKind::Ac11 => 0.45,
        ChargerKind::Ac22 => 0.7,
        ChargerKind::Dc50 => 1.3,
        ChargerKind::Dc150 => 1.8,
    }
}

/// Expected background arrivals per hour at `charger` around instant
/// `at`, under demand-intensity multiplier `intensity` (1.0 = the
/// archetype curves as modelled; the bench sweeps this axis).
#[must_use]
pub fn arrival_rate_per_hour(charger: &Charger, at: SimTime, intensity: f64) -> f64 {
    let busy = charger.archetype.base_busy(at.hour_f64(), at.day().is_weekend());
    let plugs = fleetsim::occupancy::plug_count(charger.kind) as f64;
    intensity * busy * plugs * turnover_per_plug_hour(charger.kind)
}

/// Sample the gap to the next background arrival from the exponential
/// law at the current rate (a piecewise-constant-rate Poisson process:
/// the rate is re-read at every arrival, which tracks the busy curve on
/// the scale of the gaps themselves). Clamped to `[1 min, 2 h]` so a
/// dead overnight rate still advances virtual time and a spike cannot
/// schedule two arrivals in the same second (event keys stay unique).
#[must_use]
pub fn next_arrival_gap(rate_per_hour: f64, rng: &mut SplitMix64) -> SimDuration {
    let u = rng.next_f64();
    let secs = if rate_per_hour > 1e-3 {
        // Inverse-CDF draw; `1 - u` keeps ln away from zero.
        -(1.0 - u).ln() * 3_600.0 / rate_per_hour
    } else {
        f64::from(2 * 3_600)
    };
    SimDuration::from_secs_f64(secs.clamp(60.0, 2.0 * 3_600.0))
}

/// Sample how long a background session holds its plug: AC drivers park
/// and leave the car, DC drivers wait out a fast charge.
#[must_use]
pub fn session_duration(kind: ChargerKind, rng: &mut SplitMix64) -> SimDuration {
    let mins = match kind {
        ChargerKind::Ac11 => 50 + rng.below(61),  // 50–110 min
        ChargerKind::Ac22 => 40 + rng.below(51),  // 40–90 min
        ChargerKind::Dc50 => 25 + rng.below(26),  // 25–50 min
        ChargerKind::Dc150 => 15 + rng.below(16), // 15–30 min
    };
    SimDuration::from_mins(mins)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chargers::Charger;
    use ec_models::SiteArchetype;
    use ec_types::{ChargerId, DayOfWeek, GeoPoint, Kilowatts, NodeId};

    fn charger(kind: ChargerKind, archetype: SiteArchetype) -> Charger {
        Charger {
            id: ChargerId(0),
            loc: GeoPoint::new(8.2, 53.1),
            node: NodeId(0),
            kind,
            panel: Kilowatts(20.0),
            wind: Kilowatts(0.0),
            archetype,
        }
    }

    #[test]
    fn rate_follows_the_busy_curve_and_intensity() {
        let c = charger(ChargerKind::Dc50, SiteArchetype::Downtown);
        let lunch = SimTime::at(0, DayOfWeek::Tue, 12, 30);
        let night = SimTime::at(0, DayOfWeek::Tue, 3, 0);
        let r_lunch = arrival_rate_per_hour(&c, lunch, 1.0);
        let r_night = arrival_rate_per_hour(&c, night, 1.0);
        assert!(r_lunch > r_night, "downtown lunch beats 03:00");
        assert!((arrival_rate_per_hour(&c, lunch, 3.0) - 3.0 * r_lunch).abs() < 1e-12);
    }

    #[test]
    fn gaps_are_clamped_and_deterministic() {
        let mut a = SplitMix64::new(9);
        let mut b = SplitMix64::new(9);
        for _ in 0..200 {
            let ga = next_arrival_gap(4.0, &mut a);
            let gb = next_arrival_gap(4.0, &mut b);
            assert_eq!(ga, gb);
            assert!(ga >= SimDuration::from_secs(60) && ga <= SimDuration::from_hours(2));
        }
        // A dead rate still advances time.
        assert_eq!(next_arrival_gap(0.0, &mut a), SimDuration::from_hours(2));
    }

    #[test]
    fn dc_sessions_are_shorter_than_ac() {
        let mut rng = SplitMix64::new(4);
        let mut max_dc = SimDuration::ZERO;
        let mut min_ac = SimDuration::from_hours(10);
        for _ in 0..100 {
            max_dc = max_dc.max(session_duration(ChargerKind::Dc150, &mut rng));
            min_ac = min_ac.min(session_duration(ChargerKind::Ac11, &mut rng));
        }
        assert!(max_dc < min_ac, "DC150 ({max_dc:?}) must turn over faster than Ac11 ({min_ac:?})");
    }
}
