//! Driver policies: what to do when the curb disagrees with the table.
//!
//! A ranking method answers *where should I go*; a [`DriverPolicy`]
//! answers the question the paper leaves open — *what do I do when I get
//! there and it's full?* The engine consults the policy at two moments:
//! at **commit point** (trip end: how many ranked candidates does the
//! driver keep reachable) and at every **observed-full arrival** (wait in
//! line, balk, divert to a kept alternative, or re-query the ranking
//! service from the curb).
//!
//! The three table-consuming policies span the reaction spectrum
//! Guillet et al. study for stochastic charging search; `Nearest` is the
//! no-information baseline the outcome gates compare them against.

/// What a driver facing a full charger sees (passed to
/// [`DriverPolicy::on_full`]).
#[derive(Debug, Clone, Copy)]
pub struct ArrivalContext {
    /// Drivers already waiting in line here.
    pub queue_len: usize,
    /// Plugs at this site.
    pub plugs: usize,
    /// Queue length at or above which waiting is considered hopeless
    /// (engine knob [`crate::OutcomeConfig::balk_queue_len`]).
    pub balk_at: usize,
    /// Kept-but-untried alternatives remaining from the commit-point
    /// table.
    pub alternatives_left: usize,
    /// Re-queries already spent on this attempt.
    pub re_queries_used: u32,
    /// Re-query budget per attempt (engine knob).
    pub max_re_queries: u32,
}

/// A driver's reaction to an observed-full charger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FullReaction {
    /// Join the FIFO line and wait (bounded by the engine's patience).
    Wait,
    /// Give up on charging after this trip (counted as a strand).
    Balk,
    /// Drive to the next kept alternative from the commit-point table.
    Divert,
    /// Ask the ranking service again from the curb (the re-rank sees the
    /// just-recorded full observation when feedback is on).
    ReQuery,
}

/// The decision interface the outcome engine drives.
pub trait DriverPolicy: Sync {
    /// Display name (bench table row).
    fn name(&self) -> &'static str;

    /// Whether decisions come from the session service's Offering Tables
    /// (`false` ranks by plain distance — the no-information baseline).
    fn uses_offering_tables(&self) -> bool {
        true
    }

    /// How many ranked candidates the driver keeps reachable at commit
    /// point, given the table's `k`.
    fn kept_candidates(&self, k: usize) -> usize;

    /// The reaction to a full charger.
    fn on_full(&self, ctx: &ArrivalContext) -> FullReaction;
}

/// Shared wait-or-balk tail: waiting is rational while the line is short
/// relative to the engine's balk threshold; past it the expected wait
/// exceeds any plausible patience.
fn wait_or_balk(ctx: &ArrivalContext) -> FullReaction {
    if ctx.queue_len < ctx.balk_at {
        FullReaction::Wait
    } else {
        FullReaction::Balk
    }
}

/// Commit to the top-ranked charger and stick with it: wait in line when
/// it is full, give up when the line itself is hopeless. The stubborn
/// end of the spectrum — and what the `Nearest` baseline does too, so
/// the gates isolate the value of the *ranking* from the value of the
/// *reaction*.
#[derive(Debug, Clone, Copy, Default)]
pub struct CommitTop1;

impl DriverPolicy for CommitTop1 {
    fn name(&self) -> &'static str {
        "CommitTop1"
    }

    fn kept_candidates(&self, _k: usize) -> usize {
        1
    }

    fn on_full(&self, ctx: &ArrivalContext) -> FullReaction {
        wait_or_balk(ctx)
    }
}

/// Keep the top-k table entries reachable until commit point; on an
/// observed-full charger, fall through the kept list in rank order
/// before resorting to waiting. No new information is used en route —
/// only the options already on the table.
#[derive(Debug, Clone, Copy, Default)]
pub struct HedgeTopK;

impl DriverPolicy for HedgeTopK {
    fn name(&self) -> &'static str {
        "HedgeTopK"
    }

    fn kept_candidates(&self, k: usize) -> usize {
        k
    }

    fn on_full(&self, ctx: &ArrivalContext) -> FullReaction {
        if ctx.alternatives_left > 0 {
            FullReaction::Divert
        } else {
            wait_or_balk(ctx)
        }
    }
}

/// Re-rank from the curb on every observed-full charger (up to a
/// per-attempt budget), then fall back to waiting. With the observation
/// feedback loop on, the re-rank already knows this charger is full —
/// the en-route reaction and the availability correction compose.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReQueryOnFull;

impl DriverPolicy for ReQueryOnFull {
    fn name(&self) -> &'static str {
        "ReQueryOnFull"
    }

    fn kept_candidates(&self, _k: usize) -> usize {
        1
    }

    fn on_full(&self, ctx: &ArrivalContext) -> FullReaction {
        if ctx.re_queries_used < ctx.max_re_queries {
            FullReaction::ReQuery
        } else {
            wait_or_balk(ctx)
        }
    }
}

/// The no-information baseline: rank purely by distance (never reads a
/// forecast), then behave like [`CommitTop1`] at the curb. The outcome
/// gates require every table-consuming policy to beat this on strand
/// rate and mean wait at the highest demand intensity.
#[derive(Debug, Clone, Copy, Default)]
pub struct NearestBaseline;

impl DriverPolicy for NearestBaseline {
    fn name(&self) -> &'static str {
        "Nearest"
    }

    fn uses_offering_tables(&self) -> bool {
        false
    }

    fn kept_candidates(&self, _k: usize) -> usize {
        1
    }

    fn on_full(&self, ctx: &ArrivalContext) -> FullReaction {
        wait_or_balk(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(queue_len: usize, alternatives_left: usize, re_queries_used: u32) -> ArrivalContext {
        ArrivalContext {
            queue_len,
            plugs: 2,
            balk_at: 3,
            alternatives_left,
            re_queries_used,
            max_re_queries: 3,
        }
    }

    #[test]
    fn commit_top1_waits_short_lines_and_balks_long_ones() {
        assert_eq!(CommitTop1.kept_candidates(5), 1);
        assert_eq!(CommitTop1.on_full(&ctx(0, 0, 0)), FullReaction::Wait);
        assert_eq!(CommitTop1.on_full(&ctx(2, 4, 0)), FullReaction::Wait);
        assert_eq!(CommitTop1.on_full(&ctx(3, 4, 0)), FullReaction::Balk, "line at threshold");
    }

    #[test]
    fn hedge_diverts_while_it_has_options() {
        assert_eq!(HedgeTopK.kept_candidates(5), 5);
        assert_eq!(HedgeTopK.on_full(&ctx(0, 3, 0)), FullReaction::Divert);
        assert_eq!(HedgeTopK.on_full(&ctx(1, 0, 0)), FullReaction::Wait, "options exhausted");
        assert_eq!(HedgeTopK.on_full(&ctx(5, 0, 0)), FullReaction::Balk);
    }

    #[test]
    fn requery_spends_its_budget_then_waits() {
        assert_eq!(ReQueryOnFull.on_full(&ctx(9, 0, 0)), FullReaction::ReQuery);
        assert_eq!(ReQueryOnFull.on_full(&ctx(9, 0, 2)), FullReaction::ReQuery);
        assert_eq!(ReQueryOnFull.on_full(&ctx(1, 0, 3)), FullReaction::Wait);
        assert_eq!(ReQueryOnFull.on_full(&ctx(4, 0, 3)), FullReaction::Balk);
    }

    #[test]
    fn nearest_reads_no_tables() {
        assert!(!NearestBaseline.uses_offering_tables());
        assert!(CommitTop1.uses_offering_tables());
        assert_eq!(NearestBaseline.on_full(&ctx(1, 0, 0)), FullReaction::Wait);
    }
}
