//! The sharded acceptance matrix: Offering Tables served through
//! [`ShardedService`] are **bit-identical** to the unsharded
//! [`SessionService`] at every shard count × thread count — including
//! trips that cross shard boundaries mid-flight — and a sharded front
//! recovered from its per-shard journals reproduces the uninterrupted
//! run exactly.

use chargers::{synth_fleet, ChargerFleet, FleetParams};
use ecocharge_core::{EcoChargeConfig, QueryCtx};
use ecocharge_session::{
    recover_sharded, ServiceConfig, SessionService, ShardConfig, ShardEnv, ShardedService,
};
use eis::{InfoServer, SimProviders};
use roadnet::{urban_grid, RoadGraph, UrbanGridParams};
use trajgen::{generate_trips, BrinkhoffParams, Trip};

struct World {
    graph: RoadGraph,
    fleet: ChargerFleet,
    sims: SimProviders,
    trips: Vec<Trip>,
}

impl World {
    fn new() -> Self {
        let graph = urban_grid(&UrbanGridParams::default());
        let fleet = synth_fleet(&graph, &FleetParams { count: 120, seed: 3, ..Default::default() });
        let sims = SimProviders::new(9);
        // Long trips so boundary crossings are guaranteed at depth 3.
        let trips = generate_trips(
            &graph,
            &BrinkhoffParams {
                trips: 6,
                min_trip_m: 10_000.0,
                max_trip_m: 18_000.0,
                ..Default::default()
            },
        );
        Self { graph, fleet, sims, trips }
    }

    fn shard_config(&self, shards: usize, threads: usize) -> ShardConfig {
        ShardConfig { shards, threads, ..ShardConfig::default() }
    }
}

/// The unsharded reference run.
fn serve_flat(world: &World) -> SessionService {
    let server = InfoServer::from_sims(world.sims.clone());
    let ctx =
        QueryCtx::new(&world.graph, &world.fleet, &server, &world.sims, EcoChargeConfig::default());
    let mut svc = SessionService::new(ServiceConfig::default());
    for trip in &world.trips {
        svc.register(&ctx, trip).expect("admission");
    }
    svc.run_to_completion(&ctx).expect("serving");
    svc
}

fn serve_sharded(
    world: &World,
    env: &ShardEnv,
    shards: usize,
    threads: usize,
    flat: &SessionService,
) -> u64 {
    let mut front = ShardedService::new(
        env,
        &world.graph,
        &world.fleet,
        &world.sims,
        EcoChargeConfig::default(),
        world.shard_config(shards, threads),
    );
    for trip in &world.trips {
        front.register(trip).expect("admission");
    }
    front.run_to_completion().expect("serving");
    audit(&front, flat);
    front.stats().handoffs
}

/// Assert the front reproduces the unsharded reference bit-exactly.
fn audit(front: &ShardedService<'_>, flat: &SessionService) {
    assert_eq!(
        front.event_log(),
        flat.event_log(),
        "the merged sharded log must be the unsharded total order"
    );
    let sharded = front.sessions();
    let flat_sessions: Vec<_> = flat.sessions().collect();
    assert_eq!(sharded.len(), flat_sessions.len());
    for (a, b) in sharded.iter().zip(&flat_sessions) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.phase, b.phase);
        assert_eq!(a.solves, b.solves, "session {}: sharding changed a table byte", a.id);
    }
    // Counters: everything deterministic matches once the Handoff markers
    // are discounted (forecast attribution is observational).
    let fs = front.stats();
    let us = flat.stats();
    assert_eq!(fs.registered, us.registered);
    assert_eq!(fs.sessions_completed, us.sessions_completed);
    assert_eq!(fs.tables_emitted, us.tables_emitted);
    assert_eq!(fs.heartbeats, us.heartbeats);
    assert_eq!(fs.no_offer_solves, us.no_offer_solves);
    assert_eq!(fs.events_executed, us.events_executed + fs.handoffs);
}

#[test]
fn sharded_serving_is_bit_identical_across_the_matrix() {
    let world = World::new();
    let flat = serve_flat(&world);
    let mut handoffs_at = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        for threads in [1usize, 4, 8] {
            let env = ShardEnv::new(&world.sims, shards);
            let h = serve_sharded(&world, &env, shards, threads, &flat);
            handoffs_at.push((shards, threads, h));
        }
    }
    // Boundary crossings actually happened at shard counts > 1.
    assert!(
        handoffs_at.iter().any(|&(s, _, h)| s > 1 && h > 0),
        "no trip ever crossed a shard boundary: {handoffs_at:?}"
    );
    // Hand-off count is a function of the plan, not the thread count.
    for w in handoffs_at.chunks(3) {
        assert!(
            w.iter().all(|&(_, _, h)| h == w[0].2),
            "hand-offs must not depend on threads: {w:?}"
        );
    }
}

#[test]
fn federated_hit_rate_tracks_the_unsharded_ledger() {
    let world = World::new();
    let flat = serve_flat(&world);
    let flat_rate = flat.stats().shared_hit_rate();

    let env = ShardEnv::new(&world.sims, 4);
    let mut front = ShardedService::new(
        &env,
        &world.graph,
        &world.fleet,
        &world.sims,
        EcoChargeConfig::default(),
        world.shard_config(4, 4),
    );
    for trip in &world.trips {
        front.register(trip).expect("admission");
    }
    front.run_to_completion().expect("serving");

    let ledger = front.federated_ledger();
    assert_eq!(ledger.num_sources(), 4, "every shard exports into the federation");
    let totals = ledger.totals();
    let fed = front.stats();
    // The aggregated per-shard counters and the federated ledger are two
    // views of the same observations.
    assert_eq!(
        totals.shared_hits + totals.self_hits + totals.untagged_hits + totals.misses,
        fed.forecast_shared_hits
            + fed.forecast_self_hits
            + fed.forecast_untagged_hits
            + fed.forecast_misses
    );
    let fed_rate = fed.shared_hit_rate();
    assert!(
        (fed_rate - flat_rate).abs() <= 0.05,
        "federated shared-hit rate {fed_rate:.3} drifted more than 5 points from the \
         unsharded {flat_rate:.3}"
    );
}

#[test]
fn sharded_recovery_reproduces_the_uninterrupted_run() {
    let world = World::new();
    let dir = std::env::temp_dir().join(format!("ec-shard-rec-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let shards = 4;
    let config = world.shard_config(shards, 2);

    // The uninterrupted journaled run, for reference.
    let env = ShardEnv::new(&world.sims, shards);
    let mut full = ShardedService::with_journal(
        &env,
        &world.graph,
        &world.fleet,
        &world.sims,
        EcoChargeConfig::default(),
        config,
        &dir,
    )
    .expect("journal");
    for trip in &world.trips {
        full.register(trip).expect("admission");
    }
    // "Crash" partway: run a bounded number of global ticks, drop the
    // front mid-flight (journals stay on disk), then recover and finish.
    for _ in 0..5 {
        full.tick().expect("tick");
    }
    let mid_active = full.active_sessions();
    drop(full);

    let env2 = ShardEnv::new(&world.sims, shards);
    let (mut recovered, reports) = recover_sharded(
        &env2,
        &world.graph,
        &world.fleet,
        &world.sims,
        EcoChargeConfig::default(),
        config,
        &dir,
    )
    .expect("recovery");
    assert_eq!(reports.len(), shards);
    assert!(
        reports.iter().map(|r| r.registers_replayed).sum::<usize>() >= world.trips.len(),
        "every admission must replay on some shard"
    );
    assert_eq!(recovered.active_sessions(), mid_active, "recovery lands at the crash point");
    recovered.run_to_completion().expect("post-recovery serving");
    audit(&recovered, &serve_flat(&world));

    let _ = std::fs::remove_dir_all(&dir);
}
