//! Property tests for the scheduler's total-order promise.
//!
//! Two layers: a proptest over the heap itself (arbitrary event sets,
//! arbitrary push orders, arbitrary budget sequences must all replay one
//! total order), and a seeded service-level check that registration
//! order and thread count leave the executed event log — and every
//! table — untouched.

use chargers::{synth_fleet, FleetParams};
use ec_types::{SessionId, SimTime, SplitMix64};
use ecocharge_core::{EcoChargeConfig, QueryCtx};
use ecocharge_session::{Event, EventKind, EventScheduler, ServiceConfig, SessionService};
use eis::{InfoServer, SimProviders};
use proptest::prelude::*;
use roadnet::{urban_grid, UrbanGridParams};
use trajgen::{generate_trips, BrinkhoffParams};

const KINDS: [EventKind; 4] =
    [EventKind::Rerank, EventKind::Rollover, EventKind::Adapt, EventKind::Retire];

fn event_set() -> impl Strategy<Value = Vec<Event>> {
    // Draw raw (time, session, kind) triples and dedup by key: the
    // scheduler's contract assumes keys are unique (itineraries never
    // produce two events with the same key).
    prop::collection::vec((0u64..50, 0u32..8, 0usize..4), 1..60).prop_map(|raw| {
        let mut events: Vec<Event> = raw
            .into_iter()
            .map(|(t, s, k)| Event {
                time: SimTime::from_secs(t),
                session: SessionId(s),
                kind: KINDS[k],
                offset_m: 0.0,
            })
            .collect();
        events.sort();
        events.dedup();
        events
    })
}

/// Drain a scheduler with per-pop budgets from `budgets` (cycled),
/// returning the concatenated pop order.
fn drain(q: &mut EventScheduler, budgets: &[usize]) -> Vec<Event> {
    let mut out = Vec::new();
    let mut i = 0;
    while !q.is_empty() {
        let budget = budgets[i % budgets.len()];
        i += 1;
        out.extend(q.pop_batch(budget, |_| false).events);
    }
    out
}

proptest! {
    /// Whatever the push order, the drain replays the key-sorted order.
    #[test]
    fn drain_is_the_sorted_order_for_any_push_order(
        events in event_set(),
        shuffle_seed in 0u64..1000,
    ) {
        let mut shuffled = events.clone();
        let mut rng = SplitMix64::new(shuffle_seed);
        for i in (1..shuffled.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            shuffled.swap(i, j);
        }
        let mut q = EventScheduler::new();
        for e in &shuffled {
            q.push(*e);
        }
        let drained = drain(&mut q, &[usize::MAX]);
        prop_assert_eq!(drained, events, "events was built key-sorted");
    }

    /// Whatever the budget sequence, batching replays the same total
    /// order — budgets move tick boundaries, never events.
    #[test]
    fn budgets_never_reorder_the_drain(
        events in event_set(),
        budgets in prop::collection::vec(1usize..7, 1..5),
    ) {
        let mut a = EventScheduler::new();
        let mut b = EventScheduler::new();
        for e in &events {
            a.push(*e);
            b.push(*e);
        }
        let unbounded = drain(&mut a, &[usize::MAX]);
        let budgeted = drain(&mut b, &budgets);
        prop_assert_eq!(budgeted, unbounded);
    }

    /// Every batch holds at most one event per session.
    #[test]
    fn batches_never_hold_two_events_of_one_session(
        events in event_set(),
        budget in 1usize..10,
    ) {
        let mut q = EventScheduler::new();
        for e in &events {
            q.push(*e);
        }
        while !q.is_empty() {
            let batch = q.pop_batch(budget, |_| false).events;
            let mut sessions: Vec<SessionId> = batch.iter().map(|e| e.session).collect();
            sessions.sort();
            sessions.dedup();
            prop_assert_eq!(sessions.len(), batch.len(), "duplicate session in one batch");
        }
    }
}

/// Service level: registration-order permutations × thread counts all
/// produce the identical executed log and identical per-session solves.
#[test]
fn service_total_order_is_invariant_under_registration_order_and_threads() {
    let graph = urban_grid(&UrbanGridParams::default());
    let fleet = synth_fleet(&graph, &FleetParams { count: 120, seed: 3, ..Default::default() });
    let sims = SimProviders::new(9);
    let trips = generate_trips(
        &graph,
        &BrinkhoffParams {
            trips: 4,
            min_trip_m: 8_000.0,
            max_trip_m: 14_000.0,
            ..Default::default()
        },
    );

    let run = |order: &[usize], threads: usize| -> SessionService {
        let server = InfoServer::from_sims(sims.clone());
        let ctx = QueryCtx::new(&graph, &fleet, &server, &sims, EcoChargeConfig::default());
        let mut svc = SessionService::new(ServiceConfig { threads, ..ServiceConfig::default() });
        for &i in order {
            svc.register(&ctx, &trips[i]).expect("admission");
        }
        svc.run_to_completion(&ctx).expect("serving");
        svc
    };

    let reference = run(&[0, 1, 2, 3], 1);
    let mut rng = SplitMix64::new(2024);
    let mut order: Vec<usize> = (0..trips.len()).collect();
    for threads in [1, 2, 8] {
        for _ in 0..3 {
            for i in (1..order.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                order.swap(i, j);
            }
            let svc = run(&order, threads);
            assert_eq!(svc.event_log(), reference.event_log(), "order={order:?} threads={threads}");
            // sessions() iterates in id order, so records align pairwise.
            for (a, b) in svc.sessions().zip(reference.sessions()) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.solves, b.solves, "order={order:?} threads={threads}");
            }
        }
    }
}
