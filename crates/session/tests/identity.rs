//! The tentpole acceptance test: Offering Tables served through the
//! multi-tenant [`SessionService`] are **bit-identical** to replaying
//! the same `(offset, time)` solves through a standalone
//! [`EcoCharge`] against a fresh InfoServer — swept across session
//! counts, worker thread counts and detour backends.
//!
//! This is the end-to-end form of the determinism argument in the crate
//! docs: multiplexing N trips through one scheduler, sharing forecast
//! cache cells across sessions, batching through `ec-exec`, none of it
//! may change a single byte of any ranking.

use chargers::{synth_fleet, ChargerFleet, FleetParams};
use ecocharge_core::{EcoCharge, EcoChargeConfig, QueryCtx};
use ecocharge_session::{ServiceConfig, SessionService};
use eis::{InfoServer, SimProviders};
use roadnet::{urban_grid, DetourBackend, RoadGraph, UrbanGridParams};
use trajgen::{generate_trips, BrinkhoffParams, Trip};

struct World {
    graph: RoadGraph,
    fleet: ChargerFleet,
    sims: SimProviders,
    trips: Vec<Trip>,
}

impl World {
    fn new() -> Self {
        let graph = urban_grid(&UrbanGridParams::default());
        let fleet = synth_fleet(&graph, &FleetParams { count: 120, seed: 3, ..Default::default() });
        let sims = SimProviders::new(9);
        let trips = generate_trips(
            &graph,
            &BrinkhoffParams {
                trips: 6,
                min_trip_m: 8_000.0,
                max_trip_m: 16_000.0,
                ..Default::default()
            },
        );
        Self { graph, fleet, sims, trips }
    }

    fn config(&self, backend: DetourBackend) -> EcoChargeConfig {
        EcoChargeConfig { detour_backend: backend, ..EcoChargeConfig::default() }
    }
}

/// Serve `count` trips through the service and return it for audit.
fn serve(world: &World, count: usize, threads: usize, backend: DetourBackend) -> SessionService {
    let server = InfoServer::from_sims(world.sims.clone());
    let ctx =
        QueryCtx::new(&world.graph, &world.fleet, &server, &world.sims, world.config(backend));
    let mut svc = SessionService::new(ServiceConfig { threads, ..ServiceConfig::default() });
    for trip in &world.trips[..count] {
        svc.register(&ctx, trip).expect("admission");
    }
    svc.run_to_completion(&ctx).expect("serving");
    svc
}

#[test]
fn served_tables_are_bit_identical_to_standalone_solves() {
    let world = World::new();
    // `Auto` resolves per context from the calibrated cost model — the
    // sweep must hold whichever engine it lands on, on this build, on
    // this machine.
    for backend in [DetourBackend::Dijkstra, DetourBackend::Ch, DetourBackend::Auto] {
        for count in [1, 3, 6] {
            for threads in [1, 2, 8] {
                let svc = serve(&world, count, threads, backend);
                let stats = svc.stats();
                assert_eq!(stats.sessions_completed, count as u64, "{backend:?}/{count}/{threads}");
                assert_eq!(
                    stats.no_offer_solves, 0,
                    "fixture must keep every solve in range so the replay below is exact"
                );

                // Replay every session's recorded solves on a standalone
                // EcoCharge against its own fresh server: same component
                // evaluations, no scheduler, no sharing, no batching.
                for session in svc.sessions() {
                    let server = InfoServer::from_sims(world.sims.clone());
                    let ctx = QueryCtx::new(
                        &world.graph,
                        &world.fleet,
                        &server,
                        &world.sims,
                        world.config(backend),
                    );
                    let mut standalone = EcoCharge::new();
                    for solve in &session.solves {
                        let table = standalone
                            .rerank(&ctx, &session.trip, solve.offset_m, solve.time)
                            .expect("standalone replay");
                        assert_eq!(
                            table, solve.table,
                            "table diverged: {backend:?} sessions={count} threads={threads} \
                             session={} {:?}@{}",
                            session.id, solve.kind, solve.time
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn event_log_is_invariant_across_threads_and_backends() {
    let world = World::new();
    let reference = serve(&world, 6, 1, DetourBackend::Dijkstra);
    for backend in [DetourBackend::Dijkstra, DetourBackend::Ch, DetourBackend::Auto] {
        for threads in [2, 8] {
            let other = serve(&world, 6, threads, backend);
            assert_eq!(other.event_log(), reference.event_log(), "{backend:?}/{threads}");
        }
    }
}
