//! Crash-recovery integration: a journaled service killed at an
//! arbitrary point and recovered must finish with **bit-identical**
//! Offering Tables to the run that never crashed — whatever the crash
//! point (tick boundary or mid-record torn tail), the thread count, or
//! the snapshot situation (fresh, stale, corrupt, missing).

use chargers::{synth_fleet, FleetParams};
use ecocharge_core::{EcoChargeConfig, QueryCtx};
use ecocharge_session::{
    read_journal, recover, JournalConfig, RecoveryError, ServiceConfig, ServiceHealth,
    SessionService, SinkChaos,
};
use eis::{InfoServer, SimProviders};
use roadnet::{urban_grid, UrbanGridParams};
use std::fs;
use std::path::{Path, PathBuf};
use trajgen::{generate_trips, BrinkhoffParams, Trip};

struct Fixture {
    graph: roadnet::RoadGraph,
    fleet: chargers::ChargerFleet,
    sims: SimProviders,
    trips: Vec<Trip>,
}

impl Fixture {
    fn new() -> Self {
        let graph = urban_grid(&UrbanGridParams::default());
        let fleet = synth_fleet(&graph, &FleetParams { count: 120, seed: 3, ..Default::default() });
        let sims = SimProviders::new(9);
        let trips = generate_trips(
            &graph,
            &BrinkhoffParams {
                trips: 3,
                min_trip_m: 10_000.0,
                max_trip_m: 18_000.0,
                ..Default::default()
            },
        );
        Self { graph, fleet, sims, trips }
    }
}

fn service_config(threads: usize) -> ServiceConfig {
    ServiceConfig { events_per_tick: 4, threads, ..ServiceConfig::default() }
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ecj-recovery-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn copy_dir(src: &Path, dst: &Path) {
    let _ = fs::remove_dir_all(dst);
    fs::create_dir_all(dst).unwrap();
    for entry in fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

/// The audit trail a run leaves: per-session `(id, phase flag, solves)`.
type Trail = Vec<(u32, bool, Vec<ecocharge_session::SolvedTable>)>;

fn trail(svc: &SessionService) -> Trail {
    svc.sessions()
        .map(|s| (s.id.0, s.phase == ecocharge_session::SessionPhase::Completed, s.solves.clone()))
        .collect()
}

/// Run the whole fleet journaled into `dir` and return the finished
/// service (the uninterrupted reference).
fn reference_run(f: &Fixture, dir: &Path, threads: usize) -> SessionService {
    let server = InfoServer::from_sims(f.sims.clone());
    let ctx = QueryCtx::new(&f.graph, &f.fleet, &server, &f.sims, EcoChargeConfig::default());
    let journal =
        JournalConfig { snapshot_every_ticks: 3, ..JournalConfig::new(dir.to_path_buf()) };
    let mut svc = SessionService::with_journal(service_config(threads), journal).unwrap();
    for trip in &f.trips {
        svc.register(&ctx, trip).unwrap();
    }
    svc.run_to_completion(&ctx).unwrap();
    svc
}

/// Assert the recovered run reproduced the reference bit-exactly: each
/// session's post-recovery solves are exactly the tail of the
/// reference's solve record (recovery restarts the in-memory record at
/// the snapshot; tables are compared structurally, f64s and all).
fn assert_suffix_identical(reference: &Trail, recovered: &SessionService, what: &str) {
    let rec = trail(recovered);
    assert_eq!(rec.len(), reference.len(), "{what}: session count");
    for ((id_a, done_a, solves_a), (id_b, done_b, solves_b)) in rec.iter().zip(reference) {
        assert_eq!(id_a, id_b, "{what}: session ids");
        assert_eq!(done_a, done_b, "{what}: session {id_a} phase");
        assert!(
            solves_a.len() <= solves_b.len(),
            "{what}: session {id_a} replayed more solves than the reference ever made"
        );
        let tail = &solves_b[solves_b.len() - solves_a.len()..];
        assert_eq!(solves_a, tail, "{what}: session {id_a} tables diverged");
    }
}

#[test]
fn recovery_is_bit_identical_across_crash_points_and_threads() {
    let f = Fixture::new();
    let ref_dir = tmpdir("ref");
    let reference = reference_run(&f, &ref_dir, 1);
    let ref_trail = trail(&reference);
    let ref_log = reference.event_log().to_vec();

    let full = read_journal(&ref_dir.join("journal.ecj")).unwrap();
    assert!(full.tail_defect.is_none());
    let n = full.offsets.len();
    assert!(n > 8, "fixture must journal enough records to crash inside");

    // Crash points: early, mid and late record boundaries (clean crash
    // at a tick/commit boundary), plus torn tails 5 bytes into the next
    // record (crash mid-write).
    let boundaries = [full.offsets[1], full.offsets[n / 2], full.offsets[n - 1], full.valid_len];
    for (case, &cut) in boundaries.iter().enumerate() {
        for torn in [false, true] {
            let cut = if torn { cut + 5 } else { cut };
            if cut > full.valid_len {
                continue; // no bytes to tear past the clean end
            }
            for threads in [1, 4, 8] {
                let what = format!("case={case} torn={torn} threads={threads}");
                let dir = tmpdir(&format!("crash-{case}-{torn}-{threads}"));
                copy_dir(&ref_dir, &dir);
                let file =
                    fs::OpenOptions::new().write(true).open(dir.join("journal.ecj")).unwrap();
                file.set_len(cut).unwrap();
                drop(file);

                let server = InfoServer::from_sims(f.sims.clone());
                let ctx =
                    QueryCtx::new(&f.graph, &f.fleet, &server, &f.sims, EcoChargeConfig::default());
                let (mut svc, report) =
                    recover(&ctx, service_config(threads), JournalConfig::new(dir.clone()))
                        .unwrap_or_else(|e| panic!("{what}: recovery failed: {e}"));
                assert_eq!(report.tail_defect.is_some(), torn, "{what}: tail defect flag");
                // An admission the crash cut off before its Register
                // record became durable never happened — the client
                // re-submits it, exactly as after a refused register.
                for trip in &f.trips {
                    if svc.session(ec_types::SessionId(trip.id.0)).is_none() {
                        svc.register(&ctx, trip).unwrap();
                    }
                }
                svc.run_to_completion(&ctx).unwrap();
                assert_eq!(svc.health(), ServiceHealth::Serving, "{what}");
                assert_suffix_identical(&ref_trail, &svc, &what);
                // The replayed + post-recovery events are exactly the
                // reference log's suffix from the snapshot watermark.
                let w = report.snapshot_watermark.unwrap_or(0) as usize;
                assert_eq!(svc.event_log(), &ref_log[w..], "{what}: event order");
                let _ = fs::remove_dir_all(&dir);
            }
        }
    }
    let _ = fs::remove_dir_all(&ref_dir);
}

#[test]
fn snapshot_plus_tail_equals_full_log_replay() {
    let f = Fixture::new();
    let ref_dir = tmpdir("fullvs-ref");
    let reference = reference_run(&f, &ref_dir, 1);
    let ref_trail = trail(&reference);

    // Recover the complete journal twice: once with snapshots, once with
    // every snapshot deleted (pure log replay). Both must land on the
    // same final state — snapshots are a replay-time optimisation, never
    // a semantic input.
    let server = InfoServer::from_sims(f.sims.clone());
    let ctx = QueryCtx::new(&f.graph, &f.fleet, &server, &f.sims, EcoChargeConfig::default());
    let with_dir = tmpdir("fullvs-snap");
    copy_dir(&ref_dir, &with_dir);
    let (with_snap, report) =
        recover(&ctx, service_config(1), JournalConfig::new(with_dir.clone())).unwrap();
    assert!(report.snapshot_watermark.is_some(), "fixture must have written a snapshot");
    assert!(report.sessions_restored > 0);

    let server2 = InfoServer::from_sims(f.sims.clone());
    let ctx2 = QueryCtx::new(&f.graph, &f.fleet, &server2, &f.sims, EcoChargeConfig::default());
    let bare_dir = tmpdir("fullvs-bare");
    copy_dir(&ref_dir, &bare_dir);
    for entry in fs::read_dir(&bare_dir).unwrap() {
        let p = entry.unwrap().path();
        if p.extension().is_some_and(|e| e == "ecsnap") {
            fs::remove_file(p).unwrap();
        }
    }
    let (full_log, report2) =
        recover(&ctx2, service_config(1), JournalConfig::new(bare_dir.clone())).unwrap();
    assert_eq!(report2.snapshot_watermark, None);
    assert_eq!(report2.registers_replayed, f.trips.len());

    // Full-log replay re-solves everything, so its in-memory record is
    // the whole reference; snapshot recovery only holds the tail. Both
    // are suffixes of the same reference — and the full-log one is the
    // entire thing.
    assert_suffix_identical(&ref_trail, &with_snap, "snapshot+tail");
    assert_suffix_identical(&ref_trail, &full_log, "full-log");
    let rec = trail(&full_log);
    for ((_, _, solves), (_, _, ref_solves)) in rec.iter().zip(&ref_trail) {
        assert_eq!(solves.len(), ref_solves.len(), "full-log replay covers every solve");
    }
    for d in [ref_dir, with_dir, bare_dir] {
        let _ = fs::remove_dir_all(&d);
    }
}

#[test]
fn corrupt_snapshot_falls_back_without_losing_identity() {
    let f = Fixture::new();
    let ref_dir = tmpdir("corrupt-ref");
    let reference = reference_run(&f, &ref_dir, 1);
    let ref_trail = trail(&reference);

    let dir = tmpdir("corrupt-snap");
    copy_dir(&ref_dir, &dir);
    // Flip one byte in the middle of every snapshot: recovery must skip
    // them all and degrade to a full-log replay, loudly but correctly.
    let mut corrupted = 0;
    for entry in fs::read_dir(&dir).unwrap() {
        let p = entry.unwrap().path();
        if p.extension().is_some_and(|e| e == "ecsnap") {
            let mut bytes = fs::read(&p).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0xFF;
            fs::write(&p, bytes).unwrap();
            corrupted += 1;
        }
    }
    assert!(corrupted > 0, "fixture must have snapshots to corrupt");

    let server = InfoServer::from_sims(f.sims.clone());
    let ctx = QueryCtx::new(&f.graph, &f.fleet, &server, &f.sims, EcoChargeConfig::default());
    let (svc, report) = recover(&ctx, service_config(1), JournalConfig::new(dir.clone())).unwrap();
    assert_eq!(report.snapshot_watermark, None, "all snapshots were corrupt");
    assert_eq!(report.snapshots_skipped.len(), corrupted);
    for (_, defect) in &report.snapshots_skipped {
        assert_eq!(defect.code(), "JRN-008", "skips must be snapshot-corrupt coded: {defect}");
    }
    assert_suffix_identical(&ref_trail, &svc, "corrupt-snapshot fallback");
    for d in [ref_dir, dir] {
        let _ = fs::remove_dir_all(&d);
    }
}

#[test]
fn journal_write_failure_quarantines_and_the_prefix_recovers() {
    let f = Fixture::new();
    let server = InfoServer::from_sims(f.sims.clone());
    let ctx = QueryCtx::new(&f.graph, &f.fleet, &server, &f.sims, EcoChargeConfig::default());

    // The sink refuses every append from record 6 on — a disk that dies
    // mid-serving.
    let dir = tmpdir("sink-chaos");
    let journal = JournalConfig {
        snapshot_every_ticks: 2,
        sink_chaos: Some(SinkChaos { seed: 1, fail_rate: 0.0, fail_from_record: Some(6) }),
        ..JournalConfig::new(dir.clone())
    };
    let mut svc = SessionService::with_journal(service_config(1), journal).unwrap();
    for trip in &f.trips {
        svc.register(&ctx, trip).unwrap();
    }
    let err = svc.run_to_completion(&ctx).unwrap_err();
    assert_eq!(err.code(), "SES-002", "refused append must surface as a journal error: {err}");
    assert_eq!(svc.health(), ServiceHealth::Quarantined { cause: "JRN-007" });
    // Degradation contract: reads keep answering, mutations refuse typed.
    assert!(svc.stats().events_executed > 0);
    assert!(svc.sessions().count() > 0);
    assert_eq!(svc.tick(&ctx).unwrap_err().code(), "SES-005");
    assert_eq!(svc.register(&ctx, &f.trips[0]).unwrap_err().code(), "SES-105");
    drop(svc);

    // The durable prefix (records 0..6) recovers cleanly — without the
    // chaos sink — and serves the rest of the fleet to completion,
    // matching an uninterrupted run's suffix.
    let ref_dir = tmpdir("sink-chaos-ref");
    let reference = reference_run(&f, &ref_dir, 1);
    let ref_trail = trail(&reference);
    let server2 = InfoServer::from_sims(f.sims.clone());
    let ctx2 = QueryCtx::new(&f.graph, &f.fleet, &server2, &f.sims, EcoChargeConfig::default());
    let (mut rec, _) = recover(&ctx2, service_config(1), JournalConfig::new(dir.clone())).unwrap();
    rec.run_to_completion(&ctx2).unwrap();
    assert_suffix_identical(&ref_trail, &rec, "post-chaos recovery");
    for d in [dir, ref_dir] {
        let _ = fs::remove_dir_all(&d);
    }
}

#[test]
fn recovery_refuses_a_config_mismatch_and_a_missing_journal() {
    let f = Fixture::new();
    let server = InfoServer::from_sims(f.sims.clone());
    let ctx = QueryCtx::new(&f.graph, &f.fleet, &server, &f.sims, EcoChargeConfig::default());

    let empty = tmpdir("missing");
    let err = recover(&ctx, service_config(1), JournalConfig::new(empty.clone())).unwrap_err();
    assert!(matches!(err, RecoveryError::MissingJournal { .. }), "{err}");
    assert_eq!(err.code(), "REC-001");

    let dir = tmpdir("mismatch");
    let _ = reference_run(&f, &dir, 1);
    let wrong =
        ServiceConfig { adapt_every: ec_types::SimDuration::from_mins(7), ..service_config(1) };
    let err = recover(&ctx, wrong, JournalConfig::new(dir.clone())).unwrap_err();
    assert!(matches!(err, RecoveryError::ConfigMismatch { what: "adapt_every", .. }), "{err}");
    assert_eq!(err.code(), "REC-002");
    for d in [empty, dir] {
        let _ = fs::remove_dir_all(&d);
    }
}
