//! The tiered-cache acceptance matrix: serving with the Offering-Table
//! cache enabled is **bit-identical** to serving with it disabled —
//! swept across provider seeds × detour backends × worker thread counts
//! × shard counts, on a workload where half the fleet are clones of the
//! other half so the key space actually collides.
//!
//! A cache hit replays a rendered table *and* restores the recorded
//! post-solve Dynamic-Cache snapshot, so everything downstream of a hit
//! (later adapted solves, journal images, rankings) must match the
//! uncached run byte for byte. This sweep is the end-to-end form of
//! that claim; the in-crate tests cover the mechanics tier by tier.

use chargers::{synth_fleet, ChargerFleet, FleetParams};
use ecocharge_core::{EcoChargeConfig, QueryCtx};
use ecocharge_session::{
    ServiceConfig, SessionService, SessionStats, ShardConfig, ShardEnv, ShardedService,
    TableCacheConfig,
};
use eis::{InfoServer, SimProviders};
use roadnet::{urban_grid, DetourBackend, RoadGraph, UrbanGridParams};
use trajgen::{generate_trips, BrinkhoffParams, Trip};

struct World {
    graph: RoadGraph,
    fleet: ChargerFleet,
    sims: SimProviders,
    trips: Vec<Trip>,
}

impl World {
    fn new(seed: u64) -> Self {
        let graph = urban_grid(&UrbanGridParams::default());
        let fleet = synth_fleet(&graph, &FleetParams { count: 120, seed, ..Default::default() });
        let sims = SimProviders::new(seed + 6);
        let mut trips = generate_trips(
            &graph,
            &BrinkhoffParams {
                trips: 3,
                min_trip_m: 8_000.0,
                max_trip_m: 14_000.0,
                ..Default::default()
            },
        );
        // Align departures so clone sessions interleave with their
        // originals at the shared rollover/adapt instants, then clone
        // every trip under a fresh id so the cache key space collides.
        for t in &mut trips {
            t.depart = ec_types::SimTime::from_secs(600);
        }
        let mut all = trips.clone();
        for (i, t) in trips.iter().enumerate() {
            let mut clone = t.clone();
            clone.id = ec_types::TripId(1000 + i as u32);
            all.push(clone);
        }
        Self { graph, fleet, sims, trips: all }
    }

    fn config(&self, backend: DetourBackend) -> EcoChargeConfig {
        EcoChargeConfig { detour_backend: backend, ..EcoChargeConfig::default() }
    }
}

fn scrub_share(mut s: SessionStats) -> SessionStats {
    // A cached solve never touches the InfoServer, so the observational
    // forecast-share attribution legitimately differs across runs.
    s.forecast_shared_hits = 0;
    s.forecast_self_hits = 0;
    s.forecast_untagged_hits = 0;
    s.forecast_misses = 0;
    s
}

fn serve_flat(
    world: &World,
    backend: DetourBackend,
    threads: usize,
    cached: bool,
) -> SessionService {
    let server = InfoServer::from_sims(world.sims.clone());
    let ctx =
        QueryCtx::new(&world.graph, &world.fleet, &server, &world.sims, world.config(backend));
    let table_cache =
        if cached { TableCacheConfig::enabled() } else { TableCacheConfig::default() };
    let mut svc =
        SessionService::new(ServiceConfig { threads, table_cache, ..ServiceConfig::default() });
    for trip in &world.trips {
        svc.register(&ctx, trip).expect("admission");
    }
    svc.run_to_completion(&ctx).expect("serving");
    svc
}

fn solves_of(
    svc: &SessionService,
) -> Vec<(ec_types::SessionId, Vec<ecocharge_session::SolvedTable>)> {
    svc.sessions().map(|s| (s.id, s.solves.clone())).collect()
}

#[test]
fn cached_serving_is_bit_identical_across_seeds_backends_threads() {
    for seed in [3u64, 11] {
        let world = World::new(seed);
        for backend in [DetourBackend::Dijkstra, DetourBackend::Ch] {
            let reference = serve_flat(&world, backend, 1, false);
            let ref_solves = solves_of(&reference);
            assert!(
                reference.stats().tables_emitted > 0,
                "seed {seed} {backend:?}: fixture produced no tables"
            );
            for threads in [1usize, 4] {
                let cached = serve_flat(&world, backend, threads, true);
                let label = format!("seed={seed} backend={backend:?} threads={threads}");
                assert_eq!(
                    cached.event_log(),
                    reference.event_log(),
                    "{label}: cache changed the event log"
                );
                assert_eq!(solves_of(&cached), ref_solves, "{label}: cache changed a table byte");
                assert_eq!(
                    scrub_share(cached.stats()),
                    scrub_share(reference.stats()),
                    "{label}: cache changed the deterministic counters"
                );
                let l1 =
                    cached.table_cache().expect("cache-on service exposes its cache").l1_snapshot();
                assert!(l1.hits > 0, "{label}: clone workload never hit the cache: {l1:?}");
            }
        }
    }
}

#[test]
fn cached_sharded_serving_matches_the_uncached_flat_reference() {
    for seed in [3u64, 11] {
        let world = World::new(seed);
        let backend = DetourBackend::Dijkstra;
        let reference = serve_flat(&world, backend, 1, false);
        let ref_solves = solves_of(&reference);
        for shards in [2usize, 4] {
            let env = ShardEnv::new(&world.sims, shards);
            let mut front = ShardedService::new(
                &env,
                &world.graph,
                &world.fleet,
                &world.sims,
                world.config(backend),
                ShardConfig {
                    shards,
                    threads: 2,
                    service: ServiceConfig {
                        table_cache: TableCacheConfig::enabled(),
                        ..ServiceConfig::default()
                    },
                    ..ShardConfig::default()
                },
            );
            for trip in &world.trips {
                front.register(trip).expect("admission");
            }
            front.run_to_completion().expect("serving");

            let label = format!("seed={seed} shards={shards}");
            assert_eq!(
                front.event_log(),
                reference.event_log(),
                "{label}: cache changed the merged shard log"
            );
            let sharded: Vec<_> =
                front.sessions().iter().map(|s| (s.id, s.solves.clone())).collect();
            assert_eq!(sharded, ref_solves, "{label}: cache changed a table byte across shards");
            let metrics = front.cache_metrics();
            let l1 = metrics.get("session.l1").expect("per-lane tier reported");
            assert!(l1.insertions > 0, "{label}: no lane ever populated its L1: {l1:?}");
        }
    }
}
