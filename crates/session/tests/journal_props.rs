//! Property tests for the journal codec's crash-safety contract:
//! whatever prefix of a journal survives a crash — truncation at *any*
//! byte, or a flipped byte anywhere in the record region — reading it
//! back returns exactly the longest valid record prefix, never panics,
//! and never fabricates or reorders a record.

use ec_types::{SessionId, SimTime};
use ecocharge_session::{
    read_journal, CommitEntry, EventKind, Journal, JournalConfig, OutcomeTag, Record,
};
use proptest::prelude::*;
use std::fs;
use std::path::{Path, PathBuf};

const KINDS: [EventKind; 5] = [
    EventKind::Rerank,
    EventKind::Rollover,
    EventKind::Adapt,
    EventKind::Retire,
    EventKind::Handoff,
];
const OUTCOMES: [OutcomeTag; 7] = [
    OutcomeTag::Emitted,
    OutcomeTag::Heartbeat,
    OutcomeTag::NoOffers,
    OutcomeTag::Retired,
    OutcomeTag::Shed,
    OutcomeTag::Failed,
    OutcomeTag::Handoff,
];

fn tmpdir(tag: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ecj-props-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn record_strategy() -> impl Strategy<Value = Record> {
    // The vendored proptest shim has no `prop_oneof!`; a drawn selector
    // picks the variant, and both payloads are drawn unconditionally so
    // the stream stays deterministic per case index.
    (
        0u8..2,
        (0u32..100, 0u32..50, 0u64..1_000_000, prop::collection::vec(0u32..10_000, 2..12)),
        (
            0u64..1_000_000,
            0u64..64,
            prop::collection::vec((0u64..1_000_000, 0u32..100, 0usize..5, 0usize..7), 0..10),
        ),
    )
        .prop_map(|(pick, (session, vehicle, depart, nodes), (after, deferred, raw))| {
            if pick == 0 {
                Record::Register {
                    session: SessionId(session),
                    vehicle,
                    depart: SimTime::from_secs(depart),
                    nodes,
                }
            } else {
                Record::Commit {
                    after,
                    deferred,
                    entries: raw
                        .into_iter()
                        .map(|(t, s, k, o)| CommitEntry {
                            time: SimTime::from_secs(t),
                            session: SessionId(s),
                            kind: KINDS[k],
                            outcome: OUTCOMES[o],
                        })
                        .collect(),
                }
            }
        })
}

/// Write `records` through a real `Journal` and return the file bytes
/// plus the per-record offsets the clean read reports.
fn journal_bytes(dir: &Path, records: &[Record]) -> (Vec<u8>, Vec<u64>, u64) {
    let config = JournalConfig { snapshot_every_ticks: 0, ..JournalConfig::new(dir.to_path_buf()) };
    let path = config.journal_path();
    let mut journal = Journal::create(config, ec_types::SimDuration::from_mins(5)).unwrap();
    for r in records {
        journal.append(r).unwrap();
    }
    drop(journal);
    let bytes = fs::read(&path).unwrap();
    let read = read_journal(&path).unwrap();
    assert_eq!(&read.records, records, "clean round-trip must be exact");
    assert!(read.tail_defect.is_none());
    (bytes, read.offsets, read.valid_len)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64 })]

    /// Truncate the journal at an arbitrary byte: the read must return
    /// exactly the records whose frames fit entirely under the cut — the
    /// longest valid prefix — and flag a tail defect iff the cut landed
    /// mid-record. Re-reading after healing (truncate to `valid_len`)
    /// must then be clean.
    #[test]
    fn truncation_at_any_byte_recovers_the_longest_valid_prefix(
        records in prop::collection::vec(record_strategy(), 1..12),
        cut_frac in 0.0f64..1.0,
        tag in 0u64..u64::MAX,
    ) {
        let dir = tmpdir(tag % 1024);
        let (bytes, offsets, valid_len) = journal_bytes(&dir, &records);
        // Cut anywhere in the record region (the header is a hard error
        // when torn — covered by unit tests, not a recoverable prefix).
        let header = offsets[0];
        let cut = header + ((valid_len - header) as f64 * cut_frac) as u64;

        let path = dir.join("journal.ecj");
        fs::write(&path, &bytes[..cut as usize]).unwrap();
        let read = read_journal(&path).unwrap();

        // Expected prefix: records whose frame ends at or before the cut.
        let mut ends: Vec<u64> = offsets[1..].to_vec();
        ends.push(valid_len);
        let expect = offsets.iter().zip(&ends).take_while(|(_, &end)| end <= cut).count();
        prop_assert_eq!(read.records.len(), expect, "cut={} offsets={:?}", cut, offsets);
        prop_assert_eq!(&read.records[..], &records[..expect]);
        // A defect is flagged iff the cut left partial bytes past the
        // last whole frame.
        let prefix_end = if expect == 0 { header } else { ends[expect - 1] };
        prop_assert_eq!(read.tail_defect.is_some(), cut > prefix_end, "cut={}", cut);
        prop_assert_eq!(read.valid_len, prefix_end);

        // Healing: truncating to the reported valid prefix reads clean.
        fs::write(&path, &bytes[..read.valid_len as usize]).unwrap();
        let healed = read_journal(&path).unwrap();
        prop_assert!(healed.tail_defect.is_none());
        prop_assert_eq!(&healed.records[..], &records[..expect]);
        let _ = fs::remove_dir_all(&dir);
    }

    /// Flip one byte anywhere in the record region: the read never
    /// panics, returns some true prefix of the written records, and
    /// reports a defect (the flip cannot go unnoticed — every frame is
    /// CRC'd).
    #[test]
    fn a_flipped_byte_never_yields_a_wrong_record(
        records in prop::collection::vec(record_strategy(), 1..10),
        flip_frac in 0.0f64..1.0,
        flip_bit in 0u8..8,
        tag in 0u64..u64::MAX,
    ) {
        let dir = tmpdir(1024 + tag % 1024);
        let (mut bytes, offsets, valid_len) = journal_bytes(&dir, &records);
        let header = offsets[0];
        let pos = header + ((valid_len - header - 1) as f64 * flip_frac) as u64;
        bytes[pos as usize] ^= 1 << flip_bit;

        let path = dir.join("journal.ecj");
        fs::write(&path, &bytes).unwrap();
        let read = read_journal(&path).unwrap();
        prop_assert!(read.tail_defect.is_some(), "a flipped record byte must be detected");
        // Every record it did return is a verbatim prefix of the truth;
        // the record containing the flip (and everything after) is gone.
        prop_assert!(read.records.len() < records.len(), "the defective record cannot decode");
        prop_assert_eq!(&read.records[..], &records[..read.records.len()]);
        let _ = fs::remove_dir_all(&dir);
    }

    /// Resuming a torn journal and appending fresh records yields a
    /// journal whose read is (healed prefix ++ appended) — append never
    /// corrupts what survived.
    #[test]
    fn resume_after_tear_preserves_the_prefix_and_appends(
        records in prop::collection::vec(record_strategy(), 2..10),
        extra in prop::collection::vec(record_strategy(), 1..4),
        cut_frac in 0.0f64..1.0,
        tag in 0u64..u64::MAX,
    ) {
        let dir = tmpdir(2048 + tag % 1024);
        let (bytes, offsets, valid_len) = journal_bytes(&dir, &records);
        let header = offsets[0];
        let cut = header + ((valid_len - header) as f64 * cut_frac) as u64;
        let path = dir.join("journal.ecj");
        fs::write(&path, &bytes[..cut as usize]).unwrap();

        let before = read_journal(&path).unwrap();
        let config = JournalConfig { snapshot_every_ticks: 0, ..JournalConfig::new(dir.clone()) };
        let mut journal = Journal::resume(config, before.valid_len).unwrap();
        for r in &extra {
            journal.append(r).unwrap();
        }
        drop(journal);

        let after = read_journal(&path).unwrap();
        prop_assert!(after.tail_defect.is_none());
        let mut expect = records[..before.records.len()].to_vec();
        expect.extend(extra.iter().cloned());
        prop_assert_eq!(after.records, expect);
        let _ = fs::remove_dir_all(&dir);
    }
}
