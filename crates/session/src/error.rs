//! The serving layer's unified error taxonomy.
//!
//! Every failure the session/journal/recovery stack can surface is a
//! typed variant with a **stable code** (`SES-*`, `JRN-*`, `REC-*`;
//! `EC-*` codes come from [`EcError::code`]). Codes are part of the
//! public contract: operators alert on them, the chaos harness asserts
//! on them, and they never change meaning across versions (new codes may
//! be added, existing ones are never reused). Display strings are
//! human-facing and may evolve; match on variants or codes, not text.
//!
//! The style is deliberately `thiserror`-shaped — one enum per failure
//! domain, `Display` + `std::error::Error` + `From` impls — written by
//! hand because this workspace vendors its few dependencies and an error
//! taxonomy is not worth a vendored proc-macro.

use ec_types::EcError;
use std::fmt;

/// Why an admission was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegisterError {
    /// The service is at its session cap.
    Full {
        /// The configured cap.
        max_sessions: usize,
    },
    /// The trip already has a live or finished session this service
    /// remembers.
    Duplicate(ec_types::SessionId),
    /// Trip segmentation failed.
    Planning(EcError),
    /// The admission could not be made durable: the write-ahead journal
    /// refused the `Register` record. The service quarantines itself.
    Journal(JournalError),
    /// The service is quarantined (read-only); no admissions until it is
    /// rebuilt via recovery.
    Quarantined {
        /// Stable code of the failure that triggered the quarantine.
        cause: &'static str,
    },
}

impl RegisterError {
    /// Stable, never-reused error code.
    #[must_use]
    pub const fn code(&self) -> &'static str {
        match self {
            Self::Full { .. } => "SES-101",
            Self::Duplicate(_) => "SES-102",
            Self::Planning(_) => "SES-103",
            Self::Journal(_) => "SES-104",
            Self::Quarantined { .. } => "SES-105",
        }
    }
}

impl fmt::Display for RegisterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] ", self.code())?;
        match self {
            Self::Full { max_sessions } => {
                write!(f, "admission refused: {max_sessions} active sessions")
            }
            Self::Duplicate(id) => write!(f, "trip already registered as session {id}"),
            Self::Planning(e) => write!(f, "trip could not be segmented: {e}"),
            Self::Journal(e) => write!(f, "admission could not be journaled: {e}"),
            Self::Quarantined { cause } => {
                write!(f, "service quarantined (cause {cause}): admissions refused")
            }
        }
    }
}

impl std::error::Error for RegisterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Planning(e) => Some(e),
            Self::Journal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<JournalError> for RegisterError {
    fn from(e: JournalError) -> Self {
        Self::Journal(e)
    }
}

/// A defect in the write-ahead journal or a snapshot file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// An OS-level I/O failure (open, create, read, sync, …).
    Io {
        /// The operation that failed.
        op: &'static str,
        /// The OS error text.
        detail: String,
    },
    /// The file does not start with the journal magic.
    BadMagic,
    /// The journal was written by an unknown format version.
    UnsupportedVersion {
        /// The version field found in the header.
        found: u32,
    },
    /// The final record is incomplete — the classic crash signature
    /// (power lost mid-`write`). Recovery truncates to the last valid
    /// record boundary and resumes there.
    TornTail {
        /// Byte offset where the torn record starts.
        offset: u64,
    },
    /// A record frame failed its CRC — bytes were corrupted in place.
    BadChecksum {
        /// Byte offset of the failing record.
        offset: u64,
    },
    /// A CRC-valid record did not decode (unknown kind, short payload).
    BadRecord {
        /// Byte offset of the failing record.
        offset: u64,
        /// What the decoder expected.
        what: &'static str,
    },
    /// The sink refused an append — the chaos harness's injected disk
    /// failure, or a real `write` error. The record was **not** made
    /// durable; the service quarantines.
    WriteFailed {
        /// Index of the record that failed (0-based since creation).
        record: u64,
        /// Failure detail.
        detail: String,
    },
    /// A snapshot file failed its checksum or did not decode. Recovery
    /// falls back to an earlier snapshot or a full-log replay.
    SnapshotCorrupt {
        /// The snapshot file.
        path: String,
        /// What was wrong with it.
        detail: String,
    },
}

impl JournalError {
    /// Stable, never-reused error code.
    #[must_use]
    pub const fn code(&self) -> &'static str {
        match self {
            Self::Io { .. } => "JRN-001",
            Self::BadMagic => "JRN-002",
            Self::UnsupportedVersion { .. } => "JRN-003",
            Self::TornTail { .. } => "JRN-004",
            Self::BadChecksum { .. } => "JRN-005",
            Self::BadRecord { .. } => "JRN-006",
            Self::WriteFailed { .. } => "JRN-007",
            Self::SnapshotCorrupt { .. } => "JRN-008",
        }
    }
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] ", self.code())?;
        match self {
            Self::Io { op, detail } => write!(f, "journal I/O failed during {op}: {detail}"),
            Self::BadMagic => write!(f, "not a session journal (bad magic)"),
            Self::UnsupportedVersion { found } => {
                write!(f, "unsupported journal version {found}")
            }
            Self::TornTail { offset } => {
                write!(f, "torn record at byte {offset} (crash mid-write)")
            }
            Self::BadChecksum { offset } => write!(f, "checksum mismatch at byte {offset}"),
            Self::BadRecord { offset, what } => {
                write!(f, "undecodable record at byte {offset}: expected {what}")
            }
            Self::WriteFailed { record, detail } => {
                write!(f, "journal append of record {record} failed: {detail}")
            }
            Self::SnapshotCorrupt { path, detail } => {
                write!(f, "snapshot {path} is corrupt: {detail}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

/// Why crash recovery could not rebuild a service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryError {
    /// No journal file in the configured directory.
    MissingJournal {
        /// The directory probed.
        dir: String,
    },
    /// The journal was written under a different configuration than the
    /// one recovery was asked to resume with — replaying would produce
    /// different itineraries, silently diverging from the journal.
    ConfigMismatch {
        /// Which knob disagrees.
        what: &'static str,
        /// The value recorded in the journal header.
        journal: u64,
        /// The value in the recovery config.
        config: u64,
    },
    /// Re-executing the journal tail produced different events or
    /// outcomes than the journal recorded — the determinism promise was
    /// violated (or the journal belongs to different world data).
    ReplayDivergence {
        /// What diverged, with both sides.
        detail: String,
    },
    /// Rebuilding a session's itinerary from its journaled route failed.
    Planning(EcError),
    /// The journal itself was unreadable (header-level defect).
    Journal(JournalError),
}

impl RecoveryError {
    /// Stable, never-reused error code.
    #[must_use]
    pub const fn code(&self) -> &'static str {
        match self {
            Self::MissingJournal { .. } => "REC-001",
            Self::ConfigMismatch { .. } => "REC-002",
            Self::ReplayDivergence { .. } => "REC-003",
            Self::Planning(_) => "REC-004",
            Self::Journal(_) => "REC-005",
        }
    }
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] ", self.code())?;
        match self {
            Self::MissingJournal { dir } => write!(f, "no session journal in {dir}"),
            Self::ConfigMismatch { what, journal, config } => {
                write!(f, "config mismatch on {what}: journal has {journal}, config has {config}")
            }
            Self::ReplayDivergence { detail } => write!(f, "replay divergence: {detail}"),
            Self::Planning(e) => write!(f, "could not rebuild a journaled session: {e}"),
            Self::Journal(e) => write!(f, "journal unreadable: {e}"),
        }
    }
}

impl std::error::Error for RecoveryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Planning(e) => Some(e),
            Self::Journal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<JournalError> for RecoveryError {
    fn from(e: JournalError) -> Self {
        Self::Journal(e)
    }
}

/// A serving-time failure of the [`crate::SessionService`]. This is the
/// error type of [`crate::SessionService::tick`] — everything the event
/// loop can refuse to do, with the journal/recovery domains nested as
/// sources.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// A solve failed and shedding was disabled (`shed_degraded: false`):
    /// the first failure in total order is propagated after the batch.
    Solve(EcError),
    /// A journal append failed; the service is now quarantined.
    Journal(JournalError),
    /// Recovery failed; no service was built.
    Recovery(RecoveryError),
    /// A worker panicked mid-batch. The batch's sessions were shed, the
    /// service quarantined — the panic is contained, never propagated.
    WorkerPanic {
        /// Events in the batch whose execution was abandoned.
        batch_events: usize,
    },
    /// Mutation refused: the service is quarantined (read-only). Reads —
    /// [`crate::SessionService::sessions`], stats, the event log — keep
    /// working.
    Quarantined {
        /// Stable code of the failure that triggered the quarantine.
        cause: &'static str,
    },
    /// An internal invariant broke (e.g. the scheduler referenced an
    /// unknown session). The service quarantines instead of panicking.
    Internal {
        /// The violated invariant.
        what: &'static str,
    },
}

impl SessionError {
    /// Stable, never-reused error code.
    #[must_use]
    pub const fn code(&self) -> &'static str {
        match self {
            Self::Solve(_) => "SES-001",
            Self::Journal(_) => "SES-002",
            Self::Recovery(_) => "SES-003",
            Self::WorkerPanic { .. } => "SES-004",
            Self::Quarantined { .. } => "SES-005",
            Self::Internal { .. } => "SES-006",
        }
    }
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] ", self.code())?;
        match self {
            Self::Solve(e) => write!(f, "solve failed with shedding disabled: {e}"),
            Self::Journal(e) => write!(f, "journaling failed, service quarantined: {e}"),
            Self::Recovery(e) => write!(f, "recovery failed: {e}"),
            Self::WorkerPanic { batch_events } => {
                write!(f, "worker panic mid-batch ({batch_events} events shed), quarantined")
            }
            Self::Quarantined { cause } => {
                write!(f, "service quarantined (cause {cause}): serving read-only")
            }
            Self::Internal { what } => write!(f, "internal invariant broken: {what}"),
        }
    }
}

impl std::error::Error for SessionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Solve(e) => Some(e),
            Self::Journal(e) => Some(e),
            Self::Recovery(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EcError> for SessionError {
    fn from(e: EcError) -> Self {
        Self::Solve(e)
    }
}

impl From<JournalError> for SessionError {
    fn from(e: JournalError) -> Self {
        Self::Journal(e)
    }
}

impl From<RecoveryError> for SessionError {
    fn from(e: RecoveryError) -> Self {
        Self::Recovery(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_distinct() {
        // The taxonomy's contract: every code is unique across all four
        // serving-layer enums and never changes. This list is the frozen
        // registry — extend it, never edit it.
        let codes = [
            RegisterError::Full { max_sessions: 1 }.code(),
            RegisterError::Duplicate(ec_types::SessionId(0)).code(),
            RegisterError::Planning(EcError::NoCandidates).code(),
            RegisterError::Journal(JournalError::BadMagic).code(),
            RegisterError::Quarantined { cause: "JRN-007" }.code(),
            JournalError::Io { op: "open", detail: String::new() }.code(),
            JournalError::BadMagic.code(),
            JournalError::UnsupportedVersion { found: 9 }.code(),
            JournalError::TornTail { offset: 0 }.code(),
            JournalError::BadChecksum { offset: 0 }.code(),
            JournalError::BadRecord { offset: 0, what: "kind" }.code(),
            JournalError::WriteFailed { record: 0, detail: String::new() }.code(),
            JournalError::SnapshotCorrupt { path: String::new(), detail: String::new() }.code(),
            RecoveryError::MissingJournal { dir: String::new() }.code(),
            RecoveryError::ConfigMismatch { what: "adapt_every", journal: 0, config: 1 }.code(),
            RecoveryError::ReplayDivergence { detail: String::new() }.code(),
            RecoveryError::Planning(EcError::NoCandidates).code(),
            RecoveryError::Journal(JournalError::BadMagic).code(),
            SessionError::Solve(EcError::NoCandidates).code(),
            SessionError::Journal(JournalError::BadMagic).code(),
            SessionError::Recovery(RecoveryError::MissingJournal { dir: String::new() }).code(),
            SessionError::WorkerPanic { batch_events: 1 }.code(),
            SessionError::Quarantined { cause: "SES-004" }.code(),
            SessionError::Internal { what: "x" }.code(),
        ];
        let expected = [
            "SES-101", "SES-102", "SES-103", "SES-104", "SES-105", "JRN-001", "JRN-002", "JRN-003",
            "JRN-004", "JRN-005", "JRN-006", "JRN-007", "JRN-008", "REC-001", "REC-002", "REC-003",
            "REC-004", "REC-005", "SES-001", "SES-002", "SES-003", "SES-004", "SES-005", "SES-006",
        ];
        assert_eq!(codes, expected);
        let mut unique: Vec<&str> = codes.to_vec();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), codes.len(), "codes must never collide");
    }

    #[test]
    fn display_leads_with_the_code() {
        // Log lines and shed reasons are grepped by code; the code is
        // always the first bracketed token.
        assert!(SessionError::WorkerPanic { batch_events: 3 }.to_string().starts_with("[SES-004]"));
        assert!(JournalError::TornTail { offset: 17 }.to_string().starts_with("[JRN-004]"));
        let nested = SessionError::Journal(JournalError::WriteFailed {
            record: 5,
            detail: "injected".into(),
        });
        let s = nested.to_string();
        assert!(s.starts_with("[SES-002]") && s.contains("[JRN-007]"), "{s}");
    }

    #[test]
    fn sources_chain_through_the_taxonomy() {
        use std::error::Error as _;
        let e = SessionError::Recovery(RecoveryError::Planning(EcError::NoCandidates));
        let src = e.source().expect("recovery source");
        assert!(src.to_string().contains("REC-004"));
    }
}
