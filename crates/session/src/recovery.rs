//! Crash recovery: rebuild a [`SessionService`] from the newest usable
//! snapshot plus the journal tail, and resume serving — with tables
//! bit-identical to a run that never crashed.
//!
//! The recovery pipeline:
//!
//! 1. **Read the journal** ([`crate::journal::read_journal`]): validate
//!    every frame, stop at the first defect, remember the valid prefix.
//!    A torn tail is the expected crash signature, not an error — the
//!    bytes past the last valid record were never acknowledged, so
//!    truncating them loses nothing the service promised.
//! 2. **Check the config**: the header pins `adapt_every`; itineraries
//!    are a pure function of `(trip, adapt_every)`, so resuming under a
//!    different cadence would replay different events than the journal
//!    recorded. Refused up front ([`RecoveryError::ConfigMismatch`]).
//! 3. **Pick a snapshot**: newest first; a snapshot that fails its
//!    checksum, does not decode, or sits *ahead* of the journal's last
//!    commit (it survived a crash that took journal records with it) is
//!    skipped — recovery degrades to an older snapshot and finally to a
//!    full-log replay. Snapshot loss costs replay time, never
//!    correctness.
//! 4. **Restore** sessions from the snapshot image: routes are rebuilt
//!    from journaled node ids, itineraries recomputed (pure), and each
//!    session's Dynamic Cache restored bit-exactly — adapted solves
//!    reuse cached `L`/`A` components, so without the cache image the
//!    first post-recovery Adapt would produce a (valid but) *different*
//!    table than the uninterrupted run.
//! 5. **Replay the tail**: journal records after the snapshot watermark
//!    re-execute in order with the same batch boundaries
//!    ([`SessionService::replay_commit`]); popped event keys, outcome
//!    tags and the watermark are all verified against the record —
//!    any disagreement is [`RecoveryError::ReplayDivergence`], never a
//!    silent divergence.
//! 6. **Resume**: the journal reopens truncated to its valid prefix and
//!    the service continues appending where the crash interrupted it.

use crate::error::{JournalError, RecoveryError};
use crate::journal::{
    decode_snapshot, list_snapshots, read_journal, Journal, JournalConfig, Record, SessionImage,
};
use crate::registry::{build_itinerary, SessionPhase, SessionRestore, SessionState, ShedReason};
use crate::service::{ServiceConfig, SessionService};
use crate::stats::SessionStats;
use ec_types::{ChargerId, NodeId, SessionId, TripId, VehicleId};
use ecocharge_core::{DynamicCache, EcoCharge, QueryCtx};
use roadnet::Route;
use std::path::PathBuf;

/// What recovery did — the audit trail the `repro recovery` series and
/// the chaos harness assert on.
#[derive(Debug, Default)]
pub struct RecoveryReport {
    /// Watermark of the snapshot recovery restored from (`None` = no
    /// usable snapshot, full-log replay).
    pub snapshot_watermark: Option<u64>,
    /// Snapshots that existed but were skipped, with the defect that
    /// disqualified each (corruption, or a watermark ahead of the
    /// journal).
    pub snapshots_skipped: Vec<(PathBuf, JournalError)>,
    /// Sessions rebuilt directly from the snapshot image.
    pub sessions_restored: usize,
    /// `Register` records re-applied from the journal tail.
    pub registers_replayed: usize,
    /// `Commit` records re-executed from the journal tail.
    pub commits_replayed: usize,
    /// Events re-executed across those commits.
    pub events_replayed: u64,
    /// The defect that ended the journal scan, when the file did not end
    /// cleanly (torn tail after a crash mid-write). Healed by truncation
    /// on resume.
    pub tail_defect: Option<JournalError>,
    /// Journal length after healing — the resume point.
    pub healed_len: u64,
}

/// Rebuild a service from `journal.dir` and reopen the journal for
/// appending. See the module docs for the pipeline.
///
/// # Errors
/// [`RecoveryError::MissingJournal`] when there is nothing to recover,
/// [`RecoveryError::ConfigMismatch`] on an `adapt_every` disagreement,
/// [`RecoveryError::Journal`] on a header-level defect,
/// [`RecoveryError::Planning`] when a journaled route no longer builds,
/// [`RecoveryError::ReplayDivergence`] when re-execution disagrees with
/// the journal.
pub fn recover(
    ctx: &QueryCtx<'_>,
    service: ServiceConfig,
    journal: JournalConfig,
) -> Result<(SessionService, RecoveryReport), RecoveryError> {
    let path = journal.journal_path();
    if !path.exists() {
        return Err(RecoveryError::MissingJournal { dir: journal.dir.display().to_string() });
    }
    let read = read_journal(&path)?;
    if read.adapt_every != service.adapt_every {
        return Err(RecoveryError::ConfigMismatch {
            what: "adapt_every",
            journal: read.adapt_every.as_secs(),
            config: service.adapt_every.as_secs(),
        });
    }

    let mut report = RecoveryReport {
        tail_defect: read.tail_defect.clone(),
        healed_len: read.valid_len,
        ..RecoveryReport::default()
    };

    // The journal's own horizon: a snapshot claiming a watermark past
    // the last valid commit outlived records the crash destroyed, and
    // restoring it would silently skip the replay verification of the
    // gap. Older snapshots (or the full log) cover it instead.
    let last_watermark = read
        .records
        .iter()
        .rev()
        .find_map(|r| match r {
            Record::Commit { after, .. } => Some(*after),
            Record::Register { .. } => None,
        })
        .unwrap_or(0);

    let mut image = None;
    for snap_path in list_snapshots(&journal.dir) {
        let bytes = match std::fs::read(&snap_path) {
            Ok(b) => b,
            Err(e) => {
                report.snapshots_skipped.push((
                    snap_path.clone(),
                    JournalError::Io { op: "read snapshot", detail: e.to_string() },
                ));
                continue;
            }
        };
        match decode_snapshot(&bytes, &snap_path) {
            Ok(img) if img.watermark <= last_watermark => {
                report.snapshot_watermark = Some(img.watermark);
                image = Some(img);
                break;
            }
            Ok(img) => report.snapshots_skipped.push((
                snap_path.clone(),
                JournalError::SnapshotCorrupt {
                    path: snap_path.display().to_string(),
                    detail: format!(
                        "watermark {} is ahead of the journal's last commit {last_watermark}",
                        img.watermark
                    ),
                },
            )),
            Err(e) => report.snapshots_skipped.push((snap_path, e)),
        }
    }

    let share = ctx.server.forecast_share();
    let snapshot_watermark = report.snapshot_watermark.unwrap_or(0);
    let mut svc = match &image {
        Some(img) => {
            share.restore(img.share);
            let mut states = Vec::with_capacity(img.sessions.len());
            for s in &img.sessions {
                states.push(restore_session(ctx, s, service.adapt_every)?);
            }
            report.sessions_restored = states.len();
            SessionService::from_recovery(service, img.stats, states)
        }
        None => SessionService::from_recovery(service, SessionStats::default(), Vec::new()),
    };
    svc.attach_share(share);

    for record in &read.records {
        match record {
            Record::Register { session, vehicle, depart, nodes } => {
                if svc.session(*session).is_some() {
                    continue; // already inside the snapshot image
                }
                let trip = rebuild_trip(ctx, session.0, *vehicle, *depart, nodes)?;
                svc.replay_register(ctx, &trip)?;
                report.registers_replayed += 1;
            }
            Record::Commit { after, deferred, entries } => {
                if *after <= snapshot_watermark {
                    continue; // already inside the snapshot image
                }
                svc.replay_commit(ctx, entries, *deferred, *after).map_err(|e| match e {
                    crate::error::SessionError::Recovery(r) => r,
                    other => RecoveryError::ReplayDivergence { detail: other.to_string() },
                })?;
                report.commits_replayed += 1;
                report.events_replayed += entries.len() as u64;
            }
        }
    }

    let resumed = Journal::resume(journal, read.valid_len)?;
    svc.attach_journal(resumed);
    Ok((svc, report))
}

/// Rebuild a [`trajgen::Trip`] from its journaled identity: the route is
/// re-derived from node ids (pure in the graph), so the trip — and every
/// itinerary computed from it — reproduces the original exactly.
pub(crate) fn rebuild_trip(
    ctx: &QueryCtx<'_>,
    trip_id: u32,
    vehicle: u32,
    depart: ec_types::SimTime,
    nodes: &[u32],
) -> Result<trajgen::Trip, RecoveryError> {
    let route = Route::from_nodes(ctx.graph, nodes.iter().map(|&n| NodeId(n)).collect())
        .map_err(RecoveryError::Planning)?;
    Ok(trajgen::Trip { id: TripId(trip_id), vehicle: VehicleId(vehicle), route, depart })
}

/// Rebuild one session from its snapshot image (see
/// [`SessionState::restore`]): identity and cursor from the image,
/// itinerary recomputed, Dynamic Cache restored bit-exactly.
fn restore_session(
    ctx: &QueryCtx<'_>,
    img: &SessionImage,
    adapt_every: ec_types::SimDuration,
) -> Result<SessionState, RecoveryError> {
    let trip = rebuild_trip(ctx, img.id.0, img.vehicle, img.depart, &img.nodes)?;
    let itinerary = build_itinerary(ctx, &trip, adapt_every).map_err(RecoveryError::Planning)?;
    let phase = match img.phase {
        0 => SessionPhase::Active,
        1 => SessionPhase::Completed,
        2 => SessionPhase::Shed,
        other => {
            return Err(RecoveryError::Journal(JournalError::SnapshotCorrupt {
                path: String::new(),
                detail: format!("session {} has unknown phase {other}", img.id),
            }))
        }
    };
    let next_stop = img.next_stop as usize;
    if next_stop > itinerary.len() {
        return Err(RecoveryError::ReplayDivergence {
            detail: format!(
                "session {} snapshot cursor {next_stop} is past its {}-stop itinerary",
                img.id,
                itinerary.len()
            ),
        });
    }
    let cache = DynamicCache::from_parts(
        img.cache.slot.clone(),
        img.cache.hits,
        img.cache.misses,
        img.cache.empty_probes,
    );
    Ok(SessionState::restore(SessionRestore {
        id: SessionId(img.id.0),
        trip,
        itinerary,
        next_stop,
        last_ranking: img
            .last_ranking
            .as_ref()
            .map(|ids| ids.iter().map(|&c| ChargerId(c)).collect()),
        phase,
        shed_reason: img
            .shed
            .as_ref()
            .map(|(code, detail)| ShedReason { code: code.clone(), detail: detail.clone() }),
        solver: EcoCharge::from_parts(cache, img.cache.prune),
    }))
}
