//! The deterministic virtual-time event scheduler.
//!
//! All sessions' pending work lives in one binary heap ordered by the
//! total key `(event_time, session_id, event_kind)`. Virtual time — the
//! simulated instant an event's solve is evaluated at — drives the
//! order; wall-clock execution (batching, threads, backpressure) can
//! only delay *when* an event runs, never *at which virtual instant* it
//! is computed or *in which order* it is popped. That makes the popped
//! sequence a pure function of the registered sessions, which the
//! property tests pin down across thread counts and registration-order
//! permutations.

use ec_types::{SessionId, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What a scheduled event does. The discriminant order is the
/// tie-break within one `(time, session)` — it completes the total
/// order. A session's whole itinerary is queued at registration, and
/// the itinerary is sorted by `(time, kind)`, so within a session the
/// heap replays exactly the itinerary order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    /// Shard hand-off: the trip's next stop belongs to another shard, so
    /// the session leaves this scheduler here and its itinerary tail
    /// (starting with the stop this event fronts, at the same virtual
    /// time) continues on the destination shard. First in the kind order
    /// so the departure sorts before the work it precedes; only sharded
    /// itineraries ever contain one.
    Handoff,
    /// Segment-boundary re-rank: the vehicle reached a split point of
    /// `SL` and Algorithm 1 answers for the new segment.
    Rerank,
    /// 15-minute forecast-window rollover ([`eis::FORECAST_TTL`] grid):
    /// refresh the current segment's table against the new window.
    Rollover,
    /// Mid-segment Dynamic-Cache adaptation at the app cadence
    /// ("recomputes … using a ≈3–5 minutes window", §IV-A).
    Adapt,
    /// Trip complete: retire the session.
    Retire,
    /// A plug-state transition in the closed-loop outcome world: a
    /// background (non-fleet) arrival occupying a plug, or a charging
    /// vehicle releasing one. Carried on the same total order as the
    /// solve events so occupancy is causally consistent with the tables
    /// being served; only the outcome simulator (`ecocharge-outcomes`)
    /// schedules these, never [`crate::build_itinerary`].
    Occupy,
    /// Arrival-discovery: a fleet driver reaches their chosen charger and
    /// learns the *true* occupancy (the paper's availability component is
    /// an estimate; this is the ground truth it is scored against). The
    /// driver's wait/balk/divert reaction and the observation fed back to
    /// the information server both hang off this event. Outcome-simulator
    /// only, like [`EventKind::Occupy`].
    Observe,
}

impl EventKind {
    /// Short label for logs and bench output.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            Self::Handoff => "handoff",
            Self::Rerank => "rerank",
            Self::Rollover => "rollover",
            Self::Adapt => "adapt",
            Self::Retire => "retire",
            Self::Occupy => "occupy",
            Self::Observe => "observe",
        }
    }
}

/// One scheduled occurrence for one session. `offset_m` is payload (the
/// trip offset the solve evaluates at), not part of the ordering key —
/// it is itself a function of `(session, time)` via the itinerary.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Virtual instant the event belongs to.
    pub time: SimTime,
    /// The session it advances.
    pub session: SessionId,
    /// What it does.
    pub kind: EventKind,
    /// Trip offset (metres) the solve evaluates at.
    pub offset_m: f64,
}

impl Event {
    /// The total-order key.
    #[must_use]
    pub fn key(&self) -> (SimTime, SessionId, EventKind) {
        (self.time, self.session, self.kind)
    }
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key().cmp(&other.key())
    }
}

/// What one [`EventScheduler::pop_batch`] returned.
#[derive(Debug, Clone)]
pub struct Batch {
    /// The events to execute, in total order.
    pub events: Vec<Event>,
    /// Runnable events (the continuation of the batch's distinct-session
    /// prefix) that exceeded the tick budget and stay queued — the
    /// backpressure gauge. Deferral never changes an event's virtual
    /// time, so the tables it eventually produces are unchanged; only
    /// wall-clock latency moves.
    pub deferred: u64,
}

/// Min-heap over [`Event`]s in `(time, session, kind)` order.
#[derive(Debug, Default)]
pub struct EventScheduler {
    heap: BinaryHeap<std::cmp::Reverse<Event>>,
    /// Deferral-lookahead scratch, kept across ticks so steady-state
    /// batching allocates nothing (serving pops a batch every tick for
    /// the lifetime of the service — per-tick buffers were measurable).
    lookahead: Vec<Event>,
}

impl EventScheduler {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue an event.
    pub fn push(&mut self, event: Event) {
        self.heap.push(std::cmp::Reverse(event));
    }

    /// Pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Virtual time of the next event, if any.
    #[must_use]
    pub fn next_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.0.time)
    }

    /// Pop the next batch: a prefix of the total order, capped at
    /// `budget` events and at **one event per session** — the largest
    /// set the executor may run concurrently without two workers
    /// touching the same session's state. The batch stops (never
    /// skips ahead) at the first event whose session already appears in
    /// it, so concatenating batches replays the total order exactly.
    ///
    /// `cancelled` filters dead sessions (shed ones whose later events
    /// are still queued): their events are dropped on the way out.
    ///
    /// The returned `deferred` counts the events an *unbounded* budget
    /// would additionally have run this tick (the continuation of the
    /// distinct-session prefix) — runnable work the budget pushed to a
    /// later tick. Zero whenever the batch stopped for ordering rather
    /// than budget.
    #[must_use]
    pub fn pop_batch(&mut self, budget: usize, cancelled: impl FnMut(SessionId) -> bool) -> Batch {
        let mut events = Vec::new();
        let deferred = self.pop_batch_into(budget, cancelled, &mut events);
        Batch { events, deferred }
    }

    /// [`EventScheduler::pop_batch`] into a caller-owned buffer: `events`
    /// is cleared and filled with the batch, the deferral count is
    /// returned. Steady-state serving calls this every tick with the same
    /// buffer (and the deferral lookahead reuses scratch held on the
    /// scheduler), so a warmed tick loop performs **zero allocations**
    /// here — pinned by the `pop_batch_steady_state_does_not_allocate`
    /// regression check in the bench crate.
    pub fn pop_batch_into(
        &mut self,
        budget: usize,
        mut cancelled: impl FnMut(SessionId) -> bool,
        events: &mut Vec<Event>,
    ) -> u64 {
        let budget = budget.max(1);
        events.clear();
        let mut barriered = false;
        while events.len() < budget {
            let Some(std::cmp::Reverse(next)) = self.heap.peek() else {
                break;
            };
            if cancelled(next.session) {
                let _ = self.heap.pop();
                continue;
            }
            if events.iter().any(|e| e.session == next.session) {
                barriered = true;
                break;
            }
            let std::cmp::Reverse(e) = self.heap.pop().expect("peeked");
            events.push(e);
        }
        // Look ahead past a pure budget cut: how much further the
        // distinct-session prefix would have run. The peeked events are
        // pushed straight back; the heap is unchanged. (The scratch is
        // taken off `self` for the duration so the heap stays borrowable.)
        let mut deferred = 0u64;
        if events.len() == budget && !barriered {
            let mut lookahead = std::mem::take(&mut self.lookahead);
            debug_assert!(lookahead.is_empty());
            while let Some(std::cmp::Reverse(next)) = self.heap.peek() {
                let repeat =
                    events.iter().chain(lookahead.iter()).any(|e| e.session == next.session);
                if repeat && !cancelled(next.session) {
                    break;
                }
                let std::cmp::Reverse(e) = self.heap.pop().expect("peeked");
                if !cancelled(e.session) {
                    deferred += 1;
                }
                lookahead.push(e);
            }
            for e in lookahead.drain(..) {
                self.heap.push(std::cmp::Reverse(e));
            }
            self.lookahead = lookahead;
        }
        deferred
    }

    /// Pop exactly the next `n` runnable events of the total order —
    /// the replay form of [`EventScheduler::pop_batch`]. Crash recovery
    /// re-executes journaled batches whose sizes are already known, so
    /// there is no budget decision to make and, crucially, **no deferral
    /// lookahead**: the journaled `Commit` record carries the deferral
    /// count the original run observed, and re-counting here would
    /// double-book it. Stops early (returning fewer than `n`) only when
    /// the heap runs dry — the caller treats that as replay divergence.
    ///
    /// `cancelled` filters dead sessions exactly as in `pop_batch`.
    #[must_use]
    pub fn pop_exact(
        &mut self,
        n: usize,
        mut cancelled: impl FnMut(SessionId) -> bool,
    ) -> Vec<Event> {
        let mut events = Vec::with_capacity(n);
        while events.len() < n {
            let Some(std::cmp::Reverse(next)) = self.heap.peek() else {
                break;
            };
            if cancelled(next.session) {
                let _ = self.heap.pop();
                continue;
            }
            let std::cmp::Reverse(e) = self.heap.pop().expect("peeked");
            events.push(e);
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_types::SplitMix64;

    fn ev(secs: u64, session: u32, kind: EventKind) -> Event {
        Event { time: SimTime::from_secs(secs), session: SessionId(session), kind, offset_m: 0.0 }
    }

    #[test]
    fn pops_in_total_order_regardless_of_push_order() {
        let mut canonical = vec![
            ev(10, 0, EventKind::Rerank),
            ev(10, 0, EventKind::Rollover),
            ev(10, 1, EventKind::Rerank),
            ev(15, 0, EventKind::Adapt),
            ev(20, 2, EventKind::Retire),
            ev(20, 3, EventKind::Rerank),
        ];
        let mut rng = SplitMix64::new(99);
        for _ in 0..20 {
            // Fisher–Yates over the push order.
            let mut shuffled = canonical.clone();
            for i in (1..shuffled.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                shuffled.swap(i, j);
            }
            let mut q = EventScheduler::new();
            for e in &shuffled {
                q.push(*e);
            }
            let mut popped = Vec::new();
            loop {
                let b = q.pop_batch(usize::MAX, |_| false);
                if b.events.is_empty() {
                    break;
                }
                popped.extend(b.events);
            }
            assert_eq!(popped, canonical);
        }
        canonical.sort(); // already sorted: the literal above is the key order
        assert_eq!(canonical[0].kind, EventKind::Rerank);
    }

    #[test]
    fn kind_breaks_ties_after_time_and_session() {
        assert!(ev(10, 0, EventKind::Handoff) < ev(10, 0, EventKind::Rerank));
        assert!(ev(10, 0, EventKind::Rerank) < ev(10, 0, EventKind::Rollover));
        assert!(ev(10, 0, EventKind::Rollover) < ev(10, 0, EventKind::Adapt));
        assert!(ev(10, 0, EventKind::Adapt) < ev(10, 0, EventKind::Retire));
        assert!(ev(10, 0, EventKind::Retire) < ev(10, 0, EventKind::Occupy));
        assert!(ev(10, 0, EventKind::Occupy) < ev(10, 0, EventKind::Observe));
        assert!(ev(10, 0, EventKind::Retire) < ev(10, 1, EventKind::Rerank));
        assert!(ev(10, 9, EventKind::Retire) < ev(11, 0, EventKind::Rerank));
    }

    #[test]
    fn pop_batch_respects_budget_and_counts_deferrals() {
        let mut q = EventScheduler::new();
        for s in 0..6 {
            q.push(ev(100, s, EventKind::Rerank));
        }
        q.push(ev(200, 0, EventKind::Adapt));
        let batch = q.pop_batch(4, |_| false);
        assert_eq!(batch.events.len(), 4);
        assert_eq!(batch.deferred, 2, "two events at t=100 were due but deferred");
        let batch = q.pop_batch(4, |_| false);
        assert_eq!(batch.events.len(), 3);
        assert_eq!(batch.deferred, 0);
        assert!(q.is_empty());
        assert_eq!(q.pop_batch(4, |_| false).events.len(), 0);
    }

    #[test]
    fn deferral_preserves_order_and_virtual_times() {
        let mut q = EventScheduler::new();
        let all: Vec<Event> = (0..10).map(|s| ev(50, s, EventKind::Rerank)).collect();
        for e in &all {
            q.push(*e);
        }
        let mut resumed = Vec::new();
        loop {
            let b = q.pop_batch(3, |_| false);
            if b.events.is_empty() {
                break;
            }
            resumed.extend(b.events);
        }
        assert_eq!(resumed, all, "budgeted pops must replay the identical total order");
        assert!(resumed.iter().all(|e| e.time == SimTime::from_secs(50)));
    }

    #[test]
    fn batch_takes_at_most_one_event_per_session_and_never_skips_ahead() {
        let mut q = EventScheduler::new();
        q.push(ev(50, 0, EventKind::Rerank));
        q.push(ev(51, 0, EventKind::Adapt));
        q.push(ev(100, 1, EventKind::Rerank));
        let b = q.pop_batch(10, |_| false);
        assert_eq!(b.events, vec![ev(50, 0, EventKind::Rerank)]);
        assert_eq!(b.deferred, 0, "an ordering barrier is not budget deferral");
        let b = q.pop_batch(10, |_| false);
        assert_eq!(b.events, vec![ev(51, 0, EventKind::Adapt), ev(100, 1, EventKind::Rerank)]);
        assert!(q.is_empty());
    }

    #[test]
    fn pop_batch_into_matches_pop_batch_and_reuses_capacity() {
        let fill = |q: &mut EventScheduler| {
            for s in 0..6 {
                q.push(ev(100, s, EventKind::Rerank));
            }
            q.push(ev(200, 0, EventKind::Adapt));
        };
        let (mut a, mut b) = (EventScheduler::new(), EventScheduler::new());
        fill(&mut a);
        fill(&mut b);
        let mut buf = Vec::new();
        loop {
            let want = a.pop_batch(4, |_| false);
            let deferred = b.pop_batch_into(4, |_| false, &mut buf);
            assert_eq!(buf, want.events);
            assert_eq!(deferred, want.deferred);
            if want.events.is_empty() {
                break;
            }
        }
        // A warmed buffer keeps its capacity across ticks: refilling and
        // re-popping the same shape must not need to regrow it.
        let cap = buf.capacity();
        assert!(cap >= 4);
        fill(&mut b);
        let _ = b.pop_batch_into(4, |_| false, &mut buf);
        assert_eq!(buf.capacity(), cap);
    }

    #[test]
    fn cancelled_sessions_are_dropped_on_the_way_out() {
        let mut q = EventScheduler::new();
        q.push(ev(10, 0, EventKind::Rerank));
        q.push(ev(20, 1, EventKind::Rerank));
        q.push(ev(30, 0, EventKind::Retire));
        let b = q.pop_batch(10, |s| s == SessionId(0));
        assert_eq!(b.events, vec![ev(20, 1, EventKind::Rerank)]);
        assert!(q.is_empty(), "cancelled events leave the heap");
    }
}
