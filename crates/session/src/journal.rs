//! The write-ahead event journal and snapshot store (DESIGN.md §4i).
//!
//! The journal is the durable form of the scheduler's total order: a
//! compact, versioned, checksummed binary log of every **committed state
//! transition** of a [`crate::SessionService`] — admissions and executed
//! batches — plus periodic snapshots of the full service image. Crash
//! recovery ([`crate::recovery`]) restores the latest valid snapshot and
//! re-executes the log tail; because every solve is a pure function of
//! `(session state, offset, time)` against a model-backed server, the
//! replayed service continues with **bit-identical Offering Tables**.
//!
//! ## File format
//!
//! One journal file `journal.ecj` per service:
//!
//! ```text
//! header  := magic "ECJL" | version u32 | adapt_every_secs u64 | crc32(prev 16 bytes)
//! record  := kind u8 | len u32 | payload[len] | crc32(kind ‖ len ‖ payload)
//! ```
//!
//! All integers little-endian; `f64` as IEEE-754 bit patterns
//! ([`f64::to_bits`]) so round-trips are bit-exact. A record's CRC covers
//! its frame *and* payload, so a torn write (crash mid-append) or a
//! flipped byte is detected at the exact record; [`read_journal`] returns
//! the longest valid prefix and the defect, and [`Journal::resume`]
//! truncates the tail before appending — torn tails heal, they never
//! poison the log.
//!
//! Snapshot files `snap-<watermark>.ecsnap` (watermark = events executed
//! when the image was taken) are whole-file checksummed the same way. A
//! corrupt snapshot is *not* fatal: recovery falls back to the previous
//! snapshot, or to a full-log replay.

use crate::error::JournalError;
use crate::scheduler::EventKind;
use crate::stats::SessionStats;
use ec_types::{
    ChargerId, ComponentQuality, GeoPoint, Interval, Provenance, SessionId, SimDuration, SimTime,
};
use ecocharge_core::objectives::Components;
use ecocharge_core::{CachedSolution, PruneStats, ShadowComponent};
use eis::ShareSnapshot;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// First four bytes of a journal file.
pub const JOURNAL_MAGIC: [u8; 4] = *b"ECJL";
/// First four bytes of a snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"ECSN";
/// Current format version (journal and snapshots move together).
pub const FORMAT_VERSION: u32 = 1;
/// The journal file name inside [`JournalConfig::dir`].
pub const JOURNAL_FILE: &str = "journal.ecj";

// ---------------------------------------------------------------- CRC32

/// IEEE CRC-32 lookup table, built at compile time (reflected polynomial
/// `0xEDB8_8320` — the zlib/PNG one, so external tools can verify).
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// IEEE CRC-32 of `bytes`.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------- codec

/// Little-endian append-only encoder.
#[derive(Debug, Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn str(&mut self, s: &str) {
        self.u32(u32::try_from(s.len()).unwrap_or(u32::MAX));
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn interval(&mut self, v: &Interval) {
        self.f64(v.lo());
        self.f64(v.hi());
    }
    fn quality(&mut self, q: ComponentQuality) {
        match q {
            ComponentQuality::Fresh => self.u8(0),
            ComponentQuality::Stale { age } => {
                self.u8(1);
                self.u64(age.as_secs());
            }
            ComponentQuality::Fallback => self.u8(2),
            ComponentQuality::Corrected { age } => {
                self.u8(3);
                self.u64(age.as_secs());
            }
        }
    }
    fn components(&mut self, c: &Components) {
        self.u32(c.charger.0);
        self.interval(&c.l);
        self.interval(&c.clean_kw);
        self.interval(&c.a);
        self.interval(&c.d);
        self.interval(&c.detour_kwh);
        self.u64(c.eta.as_secs());
        self.quality(c.quality.l);
        self.quality(c.quality.a);
        self.quality(c.quality.d);
    }
}

/// Bounds-checked little-endian decoder over one payload. Every method
/// fails typed (never panics) so corrupt bytes surface as
/// [`JournalError::BadRecord`]-style defects, not crashes.
#[derive(Debug)]
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
    /// File offset of the payload start, for error reporting.
    base: u64,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8], base: u64) -> Self {
        Self { buf, pos: 0, base }
    }

    fn fail(&self, what: &'static str) -> JournalError {
        JournalError::BadRecord { offset: self.base, what }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], JournalError> {
        let end = self.pos.checked_add(n).ok_or_else(|| self.fail(what))?;
        if end > self.buf.len() {
            return Err(self.fail(what));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, JournalError> {
        Ok(self.take(1, what)?[0])
    }
    fn u32(&mut self, what: &'static str) -> Result<u32, JournalError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn u64(&mut self, what: &'static str) -> Result<u64, JournalError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }
    fn f64(&mut self, what: &'static str) -> Result<f64, JournalError> {
        Ok(f64::from_bits(self.u64(what)?))
    }
    fn str(&mut self, what: &'static str) -> Result<String, JournalError> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.fail(what))
    }
    fn interval(&mut self, what: &'static str) -> Result<Interval, JournalError> {
        let lo = self.f64(what)?;
        let hi = self.f64(what)?;
        if !(lo.is_finite() && hi.is_finite() && lo <= hi) {
            return Err(self.fail(what));
        }
        Ok(Interval::new(lo, hi))
    }
    fn quality(&mut self, what: &'static str) -> Result<ComponentQuality, JournalError> {
        match self.u8(what)? {
            0 => Ok(ComponentQuality::Fresh),
            1 => Ok(ComponentQuality::Stale { age: SimDuration::from_secs(self.u64(what)?) }),
            2 => Ok(ComponentQuality::Fallback),
            3 => Ok(ComponentQuality::Corrected { age: SimDuration::from_secs(self.u64(what)?) }),
            _ => Err(self.fail(what)),
        }
    }
    fn components(&mut self, what: &'static str) -> Result<Components, JournalError> {
        Ok(Components {
            charger: ChargerId(self.u32(what)?),
            l: self.interval(what)?,
            clean_kw: self.interval(what)?,
            a: self.interval(what)?,
            d: self.interval(what)?,
            detour_kwh: self.interval(what)?,
            eta: SimTime::from_secs(self.u64(what)?),
            quality: Provenance {
                l: self.quality(what)?,
                a: self.quality(what)?,
                d: self.quality(what)?,
            },
        })
    }
    fn finished(&self) -> bool {
        self.pos == self.buf.len()
    }
}

// -------------------------------------------------------------- records

/// What executing one event produced — the compact per-event outcome the
/// journal records and recovery verifies against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutcomeTag {
    /// A table whose ranking changed (pushed to the driver).
    Emitted,
    /// A table repeating the previous ranking (heartbeat).
    Heartbeat,
    /// No chargers in range.
    NoOffers,
    /// The session retired at arrival.
    Retired,
    /// The solve failed and the session was shed.
    Shed,
    /// The solve failed with shedding disabled (strict mode); the
    /// session stayed registered and the tick surfaced the error.
    Failed,
    /// The session left this shard at a `Handoff` stop (sharded serving
    /// only). The destination shard's journal does *not* record the
    /// arrival — adoption is re-derived during lockstep replay.
    Handoff,
}

impl OutcomeTag {
    const fn to_u8(self) -> u8 {
        match self {
            Self::Emitted => 0,
            Self::Heartbeat => 1,
            Self::NoOffers => 2,
            Self::Retired => 3,
            Self::Shed => 4,
            Self::Failed => 5,
            Self::Handoff => 6,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(Self::Emitted),
            1 => Some(Self::Heartbeat),
            2 => Some(Self::NoOffers),
            3 => Some(Self::Retired),
            4 => Some(Self::Shed),
            5 => Some(Self::Failed),
            6 => Some(Self::Handoff),
            _ => None,
        }
    }
}

impl fmt::Display for OutcomeTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

// Explicit wire tags, frozen independently of the enum's declaration
// order (`Handoff` sorts first in EventKind but was added after the
// format shipped, so it takes the next free tag).
const fn kind_to_u8(kind: EventKind) -> u8 {
    match kind {
        EventKind::Rerank => 0,
        EventKind::Rollover => 1,
        EventKind::Adapt => 2,
        EventKind::Retire => 3,
        EventKind::Handoff => 4,
        EventKind::Occupy => 5,
        EventKind::Observe => 6,
    }
}

fn kind_from_u8(v: u8) -> Option<EventKind> {
    match v {
        0 => Some(EventKind::Rerank),
        1 => Some(EventKind::Rollover),
        2 => Some(EventKind::Adapt),
        3 => Some(EventKind::Retire),
        4 => Some(EventKind::Handoff),
        5 => Some(EventKind::Occupy),
        6 => Some(EventKind::Observe),
        _ => None,
    }
}

/// One executed event inside a [`Record::Commit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitEntry {
    /// Virtual instant of the event.
    pub time: SimTime,
    /// The session it advanced.
    pub session: SessionId,
    /// What it did.
    pub kind: EventKind,
    /// What came out.
    pub outcome: OutcomeTag,
}

/// One journaled state transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// A session was admitted. The route is stored as node ids and
    /// rebuilt deterministically via `Route::from_nodes`; the itinerary
    /// is a pure function of `(trip, adapt_every)` and is recomputed, not
    /// stored.
    Register {
        /// The session id (also the trip id).
        session: SessionId,
        /// The vehicle driving it.
        vehicle: u32,
        /// Departure instant.
        depart: SimTime,
        /// Route node ids, in path order.
        nodes: Vec<u32>,
    },
    /// One executed batch — a distinct-session prefix of the total order.
    Commit {
        /// `events_executed` after this batch (the watermark).
        after: u64,
        /// Budget deferrals counted when the batch was popped (stored so
        /// replay reproduces the counter without re-running the
        /// deferral lookahead).
        deferred: u64,
        /// The executed events with their outcomes, in batch order.
        entries: Vec<CommitEntry>,
    },
}

const KIND_REGISTER: u8 = 1;
const KIND_COMMIT: u8 = 2;

/// Frame `record` for appending: `kind | len | payload | crc`.
#[must_use]
pub fn encode_record(record: &Record) -> Vec<u8> {
    let mut e = Enc::default();
    let kind = match record {
        Record::Register { session, vehicle, depart, nodes } => {
            e.u32(session.0);
            e.u32(*vehicle);
            e.u64(depart.as_secs());
            e.u32(u32::try_from(nodes.len()).unwrap_or(u32::MAX));
            for &n in nodes {
                e.u32(n);
            }
            KIND_REGISTER
        }
        Record::Commit { after, deferred, entries } => {
            e.u64(*after);
            e.u64(*deferred);
            e.u32(u32::try_from(entries.len()).unwrap_or(u32::MAX));
            for entry in entries {
                e.u64(entry.time.as_secs());
                e.u32(entry.session.0);
                e.u8(kind_to_u8(entry.kind));
                e.u8(entry.outcome.to_u8());
            }
            KIND_COMMIT
        }
    };
    let payload = e.buf;
    let mut frame = Vec::with_capacity(payload.len() + 9);
    frame.push(kind);
    frame.extend_from_slice(&u32::try_from(payload.len()).unwrap_or(u32::MAX).to_le_bytes());
    frame.extend_from_slice(&payload);
    let crc = crc32(&frame);
    frame.extend_from_slice(&crc.to_le_bytes());
    frame
}

fn decode_payload(kind: u8, payload: &[u8], offset: u64) -> Result<Record, JournalError> {
    let mut d = Dec::new(payload, offset);
    let record = match kind {
        KIND_REGISTER => {
            let session = SessionId(d.u32("register.session")?);
            let vehicle = d.u32("register.vehicle")?;
            let depart = SimTime::from_secs(d.u64("register.depart")?);
            let n = d.u32("register.nodes.len")? as usize;
            let mut nodes = Vec::with_capacity(n.min(payload.len() / 4 + 1));
            for _ in 0..n {
                nodes.push(d.u32("register.node")?);
            }
            Record::Register { session, vehicle, depart, nodes }
        }
        KIND_COMMIT => {
            let after = d.u64("commit.after")?;
            let deferred = d.u64("commit.deferred")?;
            let n = d.u32("commit.entries.len")? as usize;
            let mut entries = Vec::with_capacity(n.min(payload.len() / 14 + 1));
            for _ in 0..n {
                let time = SimTime::from_secs(d.u64("commit.entry.time")?);
                let session = SessionId(d.u32("commit.entry.session")?);
                let kind = kind_from_u8(d.u8("commit.entry.kind")?)
                    .ok_or(JournalError::BadRecord { offset, what: "commit.entry.kind" })?;
                let outcome = OutcomeTag::from_u8(d.u8("commit.entry.outcome")?)
                    .ok_or(JournalError::BadRecord { offset, what: "commit.entry.outcome" })?;
                entries.push(CommitEntry { time, session, kind, outcome });
            }
            Record::Commit { after, deferred, entries }
        }
        _ => return Err(JournalError::BadRecord { offset, what: "record kind" }),
    };
    if !d.finished() {
        return Err(JournalError::BadRecord { offset, what: "trailing payload bytes" });
    }
    Ok(record)
}

// ------------------------------------------------------------- the file

/// File header: magic, version, the `adapt_every` the itineraries were
/// planned under (recovery refuses a mismatching config), CRC.
const HEADER_LEN: u64 = 4 + 4 + 8 + 4;

fn encode_header(adapt_every: SimDuration) -> [u8; HEADER_LEN as usize] {
    let mut h = [0u8; HEADER_LEN as usize];
    h[0..4].copy_from_slice(&JOURNAL_MAGIC);
    h[4..8].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    h[8..16].copy_from_slice(&adapt_every.as_secs().to_le_bytes());
    let crc = crc32(&h[0..16]);
    h[16..20].copy_from_slice(&crc.to_le_bytes());
    h
}

/// Everything [`read_journal`] learned from one journal file.
#[derive(Debug)]
pub struct JournalRead {
    /// Format version from the header.
    pub version: u32,
    /// The `adapt_every` the journal's itineraries were planned under.
    pub adapt_every: SimDuration,
    /// Every valid record, in append order.
    pub records: Vec<Record>,
    /// Byte offset where each record of `records` starts.
    pub offsets: Vec<u64>,
    /// File length of the valid prefix (`header + records`). A resumed
    /// journal truncates to this before appending.
    pub valid_len: u64,
    /// The defect that ended the scan early, if the file did not end
    /// cleanly (torn tail, bad checksum, undecodable record). Bytes past
    /// `valid_len` are unrecoverable and will be truncated on resume.
    pub tail_defect: Option<JournalError>,
}

/// Read a journal file, validating every frame. Header-level defects are
/// hard errors (there is nothing to recover); record-level defects end
/// the scan and are reported in [`JournalRead::tail_defect`] — the
/// records before the defect are still good.
///
/// # Errors
/// [`JournalError::Io`] when the file cannot be read,
/// [`JournalError::BadMagic`] / [`JournalError::UnsupportedVersion`] /
/// [`JournalError::BadChecksum`] for a damaged header.
pub fn read_journal(path: &Path) -> Result<JournalRead, JournalError> {
    let bytes = fs::read(path)
        .map_err(|e| JournalError::Io { op: "read journal", detail: e.to_string() })?;
    if bytes.len() < HEADER_LEN as usize {
        return Err(JournalError::BadMagic);
    }
    if bytes[0..4] != JOURNAL_MAGIC {
        return Err(JournalError::BadMagic);
    }
    let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if version != FORMAT_VERSION {
        return Err(JournalError::UnsupportedVersion { found: version });
    }
    let stored = u32::from_le_bytes([bytes[16], bytes[17], bytes[18], bytes[19]]);
    if crc32(&bytes[0..16]) != stored {
        return Err(JournalError::BadChecksum { offset: 0 });
    }
    let adapt_every = SimDuration::from_secs(u64::from_le_bytes([
        bytes[8], bytes[9], bytes[10], bytes[11], bytes[12], bytes[13], bytes[14], bytes[15],
    ]));

    let mut records = Vec::new();
    let mut offsets = Vec::new();
    let mut pos = HEADER_LEN as usize;
    let mut tail_defect = None;
    while pos < bytes.len() {
        let offset = pos as u64;
        // Frame head: kind + len.
        if pos + 5 > bytes.len() {
            tail_defect = Some(JournalError::TornTail { offset });
            break;
        }
        let kind = bytes[pos];
        let len =
            u32::from_le_bytes([bytes[pos + 1], bytes[pos + 2], bytes[pos + 3], bytes[pos + 4]])
                as usize;
        let Some(frame_end) = pos.checked_add(5 + len + 4) else {
            tail_defect = Some(JournalError::TornTail { offset });
            break;
        };
        if frame_end > bytes.len() {
            tail_defect = Some(JournalError::TornTail { offset });
            break;
        }
        let stored =
            u32::from_le_bytes(bytes[frame_end - 4..frame_end].try_into().expect("4 bytes"));
        if crc32(&bytes[pos..frame_end - 4]) != stored {
            tail_defect = Some(JournalError::BadChecksum { offset });
            break;
        }
        match decode_payload(kind, &bytes[pos + 5..frame_end - 4], offset) {
            Ok(record) => {
                records.push(record);
                offsets.push(offset);
                pos = frame_end;
            }
            Err(e) => {
                tail_defect = Some(e);
                break;
            }
        }
    }
    Ok(JournalRead { version, adapt_every, records, offsets, valid_len: pos as u64, tail_defect })
}

// ---------------------------------------------------------------- sinks

/// Where journal bytes go. The production sink is a file; the chaos
/// harness wraps it to inject write failures at seeded records.
pub trait JournalSink: Send + fmt::Debug {
    /// Append `bytes` durably (append-only; one call per record).
    ///
    /// # Errors
    /// [`JournalError::WriteFailed`] / [`JournalError::Io`] when the
    /// bytes were not made durable. The caller must assume nothing was
    /// written and quarantine.
    fn append(&mut self, bytes: &[u8]) -> Result<(), JournalError>;
}

/// The production sink: an append-mode file handle.
#[derive(Debug)]
pub struct FileSink {
    file: fs::File,
}

impl JournalSink for FileSink {
    fn append(&mut self, bytes: &[u8]) -> Result<(), JournalError> {
        self.file
            .write_all(bytes)
            .and_then(|()| self.file.flush())
            .map_err(|e| JournalError::Io { op: "append record", detail: e.to_string() })
    }
}

/// Seeded write-failure injection for the chaos harness: record `n`
/// fails when the per-record coin (`mix(seed, n)`) lands under
/// `fail_rate`, or unconditionally from `fail_from_record` on.
/// Deterministic per seed, so chaos runs are replayable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SinkChaos {
    /// Seed for the per-record coin.
    pub seed: u64,
    /// Probability a given append fails (0.0 = never).
    pub fail_rate: f64,
    /// First record index that always fails, if any.
    pub fail_from_record: Option<u64>,
}

impl Default for SinkChaos {
    fn default() -> Self {
        Self { seed: 0, fail_rate: 0.0, fail_from_record: None }
    }
}

impl SinkChaos {
    fn fails(&self, record: u64) -> bool {
        if self.fail_from_record.is_some_and(|from| record >= from) {
            return true;
        }
        if self.fail_rate <= 0.0 {
            return false;
        }
        let mut rng = ec_types::SplitMix64::new(ec_types::rng::mix(self.seed, record));
        rng.next_f64() < self.fail_rate
    }
}

/// A [`JournalSink`] wrapper that drops appends per a [`SinkChaos`] plan.
/// A failed append does **not** reach the inner sink — modeling a disk
/// that refused the write outright.
#[derive(Debug)]
pub struct ChaosSink<S> {
    inner: S,
    plan: SinkChaos,
    record: u64,
}

impl<S: JournalSink> ChaosSink<S> {
    /// Wrap `inner` with the given failure plan.
    pub fn new(inner: S, plan: SinkChaos) -> Self {
        Self { inner, plan, record: 0 }
    }
}

impl<S: JournalSink> JournalSink for ChaosSink<S> {
    fn append(&mut self, bytes: &[u8]) -> Result<(), JournalError> {
        let record = self.record;
        self.record += 1;
        if self.plan.fails(record) {
            return Err(JournalError::WriteFailed {
                record,
                detail: format!("chaos sink dropped append (seed {})", self.plan.seed),
            });
        }
        self.inner.append(bytes)
    }
}

// -------------------------------------------------------------- journal

/// Where and how often to journal.
#[derive(Debug, Clone)]
pub struct JournalConfig {
    /// Directory holding `journal.ecj` and `snap-*.ecsnap`.
    pub dir: PathBuf,
    /// Take a snapshot every this many committed ticks (0 = never; the
    /// log alone still recovers, snapshots only bound replay time).
    pub snapshot_every_ticks: u64,
    /// Injected sink failures (chaos harness); `None` in production.
    pub sink_chaos: Option<SinkChaos>,
}

impl JournalConfig {
    /// Plain journaling into `dir`, snapshot every 8 ticks.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into(), snapshot_every_ticks: 8, sink_chaos: None }
    }

    /// Path of the journal file under this config.
    #[must_use]
    pub fn journal_path(&self) -> PathBuf {
        self.dir.join(JOURNAL_FILE)
    }
}

/// An open, appendable journal.
#[derive(Debug)]
pub struct Journal {
    config: JournalConfig,
    sink: Box<dyn JournalSink>,
    ticks_since_snapshot: u64,
    /// Records appended through this handle.
    pub records_written: u64,
}

impl Journal {
    fn open_sink(config: &JournalConfig, file: fs::File) -> Box<dyn JournalSink> {
        let sink = FileSink { file };
        match config.sink_chaos {
            Some(plan) => Box::new(ChaosSink::new(sink, plan)),
            None => Box::new(sink),
        }
    }

    /// Create a fresh journal (truncating any previous one in `dir`) and
    /// write the header. `adapt_every` is pinned in the header so
    /// recovery can refuse a mismatching config.
    ///
    /// # Errors
    /// [`JournalError::Io`] when the directory or file cannot be created.
    pub fn create(config: JournalConfig, adapt_every: SimDuration) -> Result<Self, JournalError> {
        fs::create_dir_all(&config.dir)
            .map_err(|e| JournalError::Io { op: "create journal dir", detail: e.to_string() })?;
        let mut file = fs::File::create(config.journal_path())
            .map_err(|e| JournalError::Io { op: "create journal", detail: e.to_string() })?;
        file.write_all(&encode_header(adapt_every))
            .map_err(|e| JournalError::Io { op: "write header", detail: e.to_string() })?;
        Ok(Self {
            sink: Self::open_sink(&config, file),
            config,
            ticks_since_snapshot: 0,
            records_written: 0,
        })
    }

    /// Reopen an existing journal for appending, truncating to
    /// `valid_len` first (healing a torn tail — see [`read_journal`]).
    ///
    /// # Errors
    /// [`JournalError::Io`] when the file cannot be reopened.
    pub fn resume(config: JournalConfig, valid_len: u64) -> Result<Self, JournalError> {
        let file = fs::OpenOptions::new()
            .write(true)
            .open(config.journal_path())
            .map_err(|e| JournalError::Io { op: "reopen journal", detail: e.to_string() })?;
        file.set_len(valid_len)
            .map_err(|e| JournalError::Io { op: "truncate torn tail", detail: e.to_string() })?;
        use std::io::Seek as _;
        let mut file = file;
        file.seek(std::io::SeekFrom::End(0))
            .map_err(|e| JournalError::Io { op: "seek to tail", detail: e.to_string() })?;
        Ok(Self {
            sink: Self::open_sink(&config, file),
            config,
            ticks_since_snapshot: 0,
            records_written: 0,
        })
    }

    /// The config this journal runs under.
    #[must_use]
    pub const fn config(&self) -> &JournalConfig {
        &self.config
    }

    /// Append one record.
    ///
    /// # Errors
    /// Sink failures propagate; the record must be assumed lost.
    pub fn append(&mut self, record: &Record) -> Result<(), JournalError> {
        self.sink.append(&encode_record(record))?;
        self.records_written += 1;
        Ok(())
    }

    /// Count one committed tick; true when the snapshot cadence is due.
    pub fn tick_snapshot_due(&mut self) -> bool {
        if self.config.snapshot_every_ticks == 0 {
            return false;
        }
        self.ticks_since_snapshot += 1;
        if self.ticks_since_snapshot >= self.config.snapshot_every_ticks {
            self.ticks_since_snapshot = 0;
            true
        } else {
            false
        }
    }
}

// ------------------------------------------------------------ snapshots

/// A session's Dynamic-Cache state, bit-exact. Adapted solves reuse the
/// cached `L`/`A` components and refresh only `D`, so the cache is
/// *value-bearing* state — recovery without it would produce different
/// (cold-solve) tables at the next Adapt event.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheImage {
    /// The stored solution, if any.
    pub slot: Option<CachedSolution>,
    /// Dynamic-cache `(hits, misses)`.
    pub hits: u64,
    /// Dynamic-cache misses.
    pub misses: u64,
    /// Probes of an empty cache.
    pub empty_probes: u64,
    /// Cumulative lazy filter–refine counters.
    pub prune: PruneStats,
}

/// One session inside a [`ServiceImage`].
#[derive(Debug, Clone, PartialEq)]
pub struct SessionImage {
    /// The session id (also the trip id).
    pub id: SessionId,
    /// The vehicle driving the trip.
    pub vehicle: u32,
    /// Departure instant.
    pub depart: SimTime,
    /// Route node ids in path order (itinerary is recomputed from them).
    pub nodes: Vec<u32>,
    /// Itinerary cursor: index of the next unexecuted stop.
    pub next_stop: u32,
    /// Lifecycle: 0 = active, 1 = completed, 2 = shed.
    pub phase: u8,
    /// Shed provenance, when phase = 2: `(code, detail)`.
    pub shed: Option<(String, String)>,
    /// The last ranking shown to the driver (`None` after `NoOffers`).
    pub last_ranking: Option<Vec<u32>>,
    /// Solves recorded before the snapshot (audit count; the tables
    /// themselves live in the sessions, not the journal).
    pub solves_before: u64,
    /// The solver's value-bearing state.
    pub cache: CacheImage,
}

/// A full service state image at a watermark.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceImage {
    /// `events_executed` when the image was taken. Recovery replays
    /// commits with `after > watermark`.
    pub watermark: u64,
    /// The service's own counters (forecast fields excluded — those live
    /// in `share`).
    pub stats: SessionStats,
    /// The cross-session forecast-sharing ledger counters.
    pub share: ShareSnapshot,
    /// Every registered session, in id order.
    pub sessions: Vec<SessionImage>,
}

fn encode_stats(e: &mut Enc, s: &SessionStats) {
    for v in [
        s.registered,
        s.rejected,
        s.events_executed,
        s.events_deferred,
        s.tables_emitted,
        s.heartbeats,
        s.no_offer_solves,
        s.sessions_completed,
        s.sessions_shed,
        s.journal_records,
        s.snapshots_written,
        s.journal_defects,
    ] {
        e.u64(v);
    }
}

fn decode_stats(d: &mut Dec<'_>) -> Result<SessionStats, JournalError> {
    Ok(SessionStats {
        registered: d.u64("stats")?,
        rejected: d.u64("stats")?,
        events_executed: d.u64("stats")?,
        events_deferred: d.u64("stats")?,
        tables_emitted: d.u64("stats")?,
        heartbeats: d.u64("stats")?,
        no_offer_solves: d.u64("stats")?,
        sessions_completed: d.u64("stats")?,
        sessions_shed: d.u64("stats")?,
        journal_records: d.u64("stats")?,
        snapshots_written: d.u64("stats")?,
        journal_defects: d.u64("stats")?,
        ..SessionStats::default()
    })
}

fn encode_session_image(e: &mut Enc, s: &SessionImage) {
    e.u32(s.id.0);
    e.u32(s.vehicle);
    e.u64(s.depart.as_secs());
    e.u32(u32::try_from(s.nodes.len()).unwrap_or(u32::MAX));
    for &n in &s.nodes {
        e.u32(n);
    }
    e.u32(s.next_stop);
    e.u8(s.phase);
    match &s.shed {
        None => e.u8(0),
        Some((code, detail)) => {
            e.u8(1);
            e.str(code);
            e.str(detail);
        }
    }
    match &s.last_ranking {
        None => e.u8(0),
        Some(ids) => {
            e.u8(1);
            e.u32(u32::try_from(ids.len()).unwrap_or(u32::MAX));
            for &id in ids {
                e.u32(id);
            }
        }
    }
    e.u64(s.solves_before);
    e.u64(s.cache.hits);
    e.u64(s.cache.misses);
    e.u64(s.cache.empty_probes);
    e.u64(s.cache.prune.pool);
    e.u64(s.cache.prune.exact_evals);
    e.u64(s.cache.prune.pruned);
    e.u64(s.cache.prune.streamed_out);
    match &s.cache.slot {
        None => e.u8(0),
        Some(sol) => {
            e.u8(1);
            e.f64(sol.origin.lon);
            e.f64(sol.origin.lat);
            e.u64(sol.computed_at.as_secs());
            e.f64(sol.radius_km);
            e.u32(u32::try_from(sol.components.len()).unwrap_or(u32::MAX));
            for c in sol.components.iter() {
                e.components(c);
            }
            e.u32(u32::try_from(sol.shadows.len()).unwrap_or(u32::MAX));
            for sh in sol.shadows.iter() {
                e.u32(sh.pool_pos);
                e.interval(&sh.a_env);
                e.components(&sh.comp);
            }
        }
    }
}

fn decode_session_image(d: &mut Dec<'_>) -> Result<SessionImage, JournalError> {
    let id = SessionId(d.u32("session.id")?);
    let vehicle = d.u32("session.vehicle")?;
    let depart = SimTime::from_secs(d.u64("session.depart")?);
    let n = d.u32("session.nodes.len")? as usize;
    let mut nodes = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        nodes.push(d.u32("session.node")?);
    }
    let next_stop = d.u32("session.next_stop")?;
    let phase = d.u8("session.phase")?;
    if phase > 2 {
        return Err(d.fail("session.phase"));
    }
    let shed = match d.u8("session.shed.tag")? {
        0 => None,
        1 => Some((d.str("session.shed.code")?, d.str("session.shed.detail")?)),
        _ => return Err(d.fail("session.shed.tag")),
    };
    let last_ranking = match d.u8("session.ranking.tag")? {
        0 => None,
        1 => {
            let n = d.u32("session.ranking.len")? as usize;
            let mut ids = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                ids.push(d.u32("session.ranking.id")?);
            }
            Some(ids)
        }
        _ => return Err(d.fail("session.ranking.tag")),
    };
    let solves_before = d.u64("session.solves")?;
    let hits = d.u64("session.cache.hits")?;
    let misses = d.u64("session.cache.misses")?;
    let empty_probes = d.u64("session.cache.empty_probes")?;
    let prune = PruneStats {
        pool: d.u64("session.prune.pool")?,
        exact_evals: d.u64("session.prune.exact")?,
        pruned: d.u64("session.prune.pruned")?,
        streamed_out: d.u64("session.prune.streamed")?,
    };
    let slot = match d.u8("session.slot.tag")? {
        0 => None,
        1 => {
            let lon = d.f64("session.slot.lon")?;
            let lat = d.f64("session.slot.lat")?;
            let computed_at = SimTime::from_secs(d.u64("session.slot.at")?);
            let radius_km = d.f64("session.slot.radius")?;
            let nc = d.u32("session.slot.components.len")? as usize;
            let mut components = Vec::with_capacity(nc.min(1 << 20));
            for _ in 0..nc {
                components.push(d.components("session.slot.component")?);
            }
            let ns = d.u32("session.slot.shadows.len")? as usize;
            let mut shadows = Vec::with_capacity(ns.min(1 << 20));
            for _ in 0..ns {
                shadows.push(ShadowComponent {
                    pool_pos: d.u32("session.slot.shadow.pos")?,
                    a_env: d.interval("session.slot.shadow.env")?,
                    comp: d.components("session.slot.shadow.comp")?,
                });
            }
            Some(CachedSolution {
                origin: GeoPoint { lon, lat },
                computed_at,
                components: Arc::from(components),
                shadows: Arc::from(shadows),
                radius_km,
            })
        }
        _ => return Err(d.fail("session.slot.tag")),
    };
    Ok(SessionImage {
        id,
        vehicle,
        depart,
        nodes,
        next_stop,
        phase,
        shed,
        last_ranking,
        solves_before,
        cache: CacheImage { slot, hits, misses, empty_probes, prune },
    })
}

/// Encode a full snapshot file (magic, version, payload, whole-file CRC).
#[must_use]
pub fn encode_snapshot(image: &ServiceImage) -> Vec<u8> {
    let mut e = Enc::default();
    e.buf.extend_from_slice(&SNAPSHOT_MAGIC);
    e.u32(FORMAT_VERSION);
    e.u64(image.watermark);
    encode_stats(&mut e, &image.stats);
    e.u64(image.share.shared_hits);
    e.u64(image.share.self_hits);
    e.u64(image.share.untagged_hits);
    e.u64(image.share.misses);
    e.u32(u32::try_from(image.sessions.len()).unwrap_or(u32::MAX));
    for s in &image.sessions {
        encode_session_image(&mut e, s);
    }
    let crc = crc32(&e.buf);
    e.u32(crc);
    e.buf
}

/// Decode a snapshot file.
///
/// # Errors
/// [`JournalError::SnapshotCorrupt`] for any defect — magic, version,
/// checksum or payload (the caller falls back to an older snapshot or a
/// full-log replay; corruption here is never fatal to recovery).
pub fn decode_snapshot(bytes: &[u8], path: &Path) -> Result<ServiceImage, JournalError> {
    let corrupt = |detail: &str| JournalError::SnapshotCorrupt {
        path: path.display().to_string(),
        detail: detail.to_string(),
    };
    if bytes.len() < 12 || bytes[0..4] != SNAPSHOT_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if version != FORMAT_VERSION {
        return Err(corrupt("unsupported version"));
    }
    let body = &bytes[..bytes.len() - 4];
    let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
    if crc32(body) != stored {
        return Err(corrupt("checksum mismatch"));
    }
    let mut d = Dec::new(&body[8..], 8);
    let mut inner = || -> Result<ServiceImage, JournalError> {
        let watermark = d.u64("snapshot.watermark")?;
        let stats = decode_stats(&mut d)?;
        let share = ShareSnapshot {
            shared_hits: d.u64("snapshot.share")?,
            self_hits: d.u64("snapshot.share")?,
            untagged_hits: d.u64("snapshot.share")?,
            misses: d.u64("snapshot.share")?,
        };
        let n = d.u32("snapshot.sessions.len")? as usize;
        let mut sessions = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            sessions.push(decode_session_image(&mut d)?);
        }
        if !d.finished() {
            return Err(JournalError::BadRecord { offset: 8, what: "trailing snapshot bytes" });
        }
        Ok(ServiceImage { watermark, stats, share, sessions })
    };
    inner().map_err(|e| corrupt(&e.to_string()))
}

/// Snapshot file name for a watermark — zero-padded so lexicographic
/// order is watermark order.
#[must_use]
pub fn snapshot_name(watermark: u64) -> String {
    format!("snap-{watermark:020}.ecsnap")
}

/// Write a snapshot file next to the journal.
///
/// # Errors
/// [`JournalError::Io`] when the file cannot be written. The caller
/// treats this as **non-fatal**: serving degrades to journal-only (replay
/// just gets longer).
pub fn write_snapshot(dir: &Path, image: &ServiceImage) -> Result<PathBuf, JournalError> {
    let path = dir.join(snapshot_name(image.watermark));
    fs::write(&path, encode_snapshot(image))
        .map_err(|e| JournalError::Io { op: "write snapshot", detail: e.to_string() })?;
    Ok(path)
}

/// All snapshot files in `dir`, newest (highest watermark) first.
/// Unreadable directory = no snapshots (recovery falls back to the log).
#[must_use]
pub fn list_snapshots(dir: &Path) -> Vec<PathBuf> {
    let Ok(entries) = fs::read_dir(dir) else { return Vec::new() };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.extension().is_some_and(|x| x == "ecsnap")
                && p.file_name().is_some_and(|n| n.to_string_lossy().starts_with("snap-"))
        })
        .collect();
    paths.sort();
    paths.reverse();
    paths
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values (zlib-compatible).
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    fn sample_records() -> Vec<Record> {
        vec![
            Record::Register {
                session: SessionId(3),
                vehicle: 7,
                depart: SimTime::from_secs(1_000),
                nodes: vec![1, 2, 9, 4],
            },
            Record::Commit {
                after: 2,
                deferred: 1,
                entries: vec![
                    CommitEntry {
                        time: SimTime::from_secs(1_000),
                        session: SessionId(3),
                        kind: EventKind::Rerank,
                        outcome: OutcomeTag::Emitted,
                    },
                    CommitEntry {
                        time: SimTime::from_secs(1_300),
                        session: SessionId(3),
                        kind: EventKind::Adapt,
                        outcome: OutcomeTag::Heartbeat,
                    },
                ],
            },
        ]
    }

    fn write_file(dir: &Path, records: &[Record]) -> PathBuf {
        let path = dir.join(JOURNAL_FILE);
        let mut bytes = encode_header(SimDuration::from_mins(5)).to_vec();
        for r in records {
            bytes.extend_from_slice(&encode_record(r));
        }
        fs::write(&path, bytes).unwrap();
        path
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ecj-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn records_round_trip() {
        let dir = tmpdir("roundtrip");
        let records = sample_records();
        let path = write_file(&dir, &records);
        let read = read_journal(&path).unwrap();
        assert_eq!(read.records, records);
        assert_eq!(read.adapt_every, SimDuration::from_mins(5));
        assert!(read.tail_defect.is_none());
        assert_eq!(read.offsets.len(), records.len());
        assert_eq!(read.offsets[0], HEADER_LEN);
    }

    #[test]
    fn torn_tail_truncates_to_last_valid_record() {
        let dir = tmpdir("torn");
        let records = sample_records();
        let path = write_file(&dir, &records);
        let full = fs::read(&path).unwrap();
        let read = read_journal(&path).unwrap();
        let second_start = read.offsets[1];
        // Cut mid-way through the second record: only the first survives.
        fs::write(&path, &full[..second_start as usize + 3]).unwrap();
        let read = read_journal(&path).unwrap();
        assert_eq!(read.records.len(), 1);
        assert_eq!(read.valid_len, second_start);
        assert!(
            matches!(read.tail_defect, Some(JournalError::TornTail { offset }) if offset == second_start)
        );
    }

    #[test]
    fn flipped_byte_is_a_checksum_defect() {
        let dir = tmpdir("flip");
        let records = sample_records();
        let path = write_file(&dir, &records);
        let mut bytes = fs::read(&path).unwrap();
        let read = read_journal(&path).unwrap();
        let corrupt_at = read.offsets[1] as usize + 7;
        bytes[corrupt_at] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let read = read_journal(&path).unwrap();
        assert_eq!(read.records.len(), 1, "records before the flip stay valid");
        assert!(matches!(read.tail_defect, Some(JournalError::BadChecksum { .. })));
    }

    #[test]
    fn header_defects_are_hard_errors() {
        let dir = tmpdir("header");
        let path = write_file(&dir, &[]);
        let mut bytes = fs::read(&path).unwrap();
        bytes[0] = b'X';
        fs::write(&path, &bytes).unwrap();
        assert_eq!(read_journal(&path).unwrap_err(), JournalError::BadMagic);

        let mut bytes = encode_header(SimDuration::ZERO).to_vec();
        bytes[4] = 99; // version
                       // Recompute nothing: version check fires before CRC.
        fs::write(&path, &bytes).unwrap();
        assert_eq!(
            read_journal(&path).unwrap_err(),
            JournalError::UnsupportedVersion { found: 99 }
        );
    }

    #[test]
    fn resume_heals_a_torn_tail_and_appends() {
        let dir = tmpdir("resume");
        let records = sample_records();
        let path = write_file(&dir, &records);
        let full = fs::read(&path).unwrap();
        let offsets = read_journal(&path).unwrap().offsets;
        fs::write(&path, &full[..offsets[1] as usize + 6]).unwrap();

        let read = read_journal(&path).unwrap();
        let config = JournalConfig::new(&dir);
        let mut journal = Journal::resume(config, read.valid_len).unwrap();
        let appended = Record::Commit { after: 9, deferred: 0, entries: vec![] };
        journal.append(&appended).unwrap();

        let read = read_journal(&path).unwrap();
        assert!(read.tail_defect.is_none(), "tail healed");
        assert_eq!(read.records, vec![records[0].clone(), appended]);
    }

    #[test]
    fn chaos_sink_fails_deterministically() {
        #[derive(Debug, Default)]
        struct Counting(u64);
        impl JournalSink for Counting {
            fn append(&mut self, _b: &[u8]) -> Result<(), JournalError> {
                self.0 += 1;
                Ok(())
            }
        }
        let plan = SinkChaos { seed: 42, fail_rate: 0.5, fail_from_record: None };
        let run = || {
            let mut sink = ChaosSink::new(Counting::default(), plan);
            (0..32).map(|_| sink.append(b"x").is_ok()).collect::<Vec<bool>>()
        };
        let a = run();
        assert_eq!(a, run(), "same seed, same failure pattern");
        assert!(a.iter().any(|ok| *ok) && a.iter().any(|ok| !ok), "rate 0.5 mixes both");

        let mut sink = ChaosSink::new(
            Counting::default(),
            SinkChaos { seed: 0, fail_rate: 0.0, fail_from_record: Some(2) },
        );
        assert!(sink.append(b"x").is_ok());
        assert!(sink.append(b"x").is_ok());
        let err = sink.append(b"x").unwrap_err();
        assert_eq!(err.code(), "JRN-007");
        assert_eq!(sink.inner.0, 2, "failed append never reaches the file");
    }

    #[test]
    fn snapshot_round_trips_and_detects_corruption() {
        let image = ServiceImage {
            watermark: 17,
            stats: SessionStats { registered: 3, events_executed: 17, ..Default::default() },
            share: ShareSnapshot { shared_hits: 5, self_hits: 2, untagged_hits: 1, misses: 4 },
            sessions: vec![SessionImage {
                id: SessionId(3),
                vehicle: 7,
                depart: SimTime::from_secs(60),
                nodes: vec![1, 2, 3],
                next_stop: 2,
                phase: 0,
                shed: None,
                last_ranking: Some(vec![9, 4]),
                solves_before: 2,
                cache: CacheImage {
                    slot: Some(CachedSolution {
                        origin: GeoPoint::new(8.1234567, 53.7654321),
                        computed_at: SimTime::from_secs(55),
                        components: Arc::from(Vec::new()),
                        shadows: Arc::from(Vec::new()),
                        radius_km: 50.0,
                    }),
                    hits: 1,
                    misses: 2,
                    empty_probes: 1,
                    prune: PruneStats { pool: 10, exact_evals: 6, pruned: 4, streamed_out: 0 },
                },
            }],
        };
        let bytes = encode_snapshot(&image);
        let path = Path::new("snap-test.ecsnap");
        let decoded = decode_snapshot(&bytes, path).unwrap();
        assert_eq!(decoded, image);

        let mut bad = bytes.clone();
        bad[20] ^= 1;
        let err = decode_snapshot(&bad, path).unwrap_err();
        assert_eq!(err.code(), "JRN-008");
    }

    #[test]
    fn snapshot_names_sort_by_watermark() {
        let dir = tmpdir("snaps");
        for w in [3u64, 400, 27] {
            let image = ServiceImage {
                watermark: w,
                stats: SessionStats::default(),
                share: ShareSnapshot::default(),
                sessions: vec![],
            };
            write_snapshot(&dir, &image).unwrap();
        }
        let names: Vec<String> = list_snapshots(&dir)
            .iter()
            .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec![snapshot_name(400), snapshot_name(27), snapshot_name(3)]);
    }
}
