//! Geographic sharding: partition the world, not the fleet.
//!
//! [`ShardedService`] splits the served region into quadtree tiles
//! ([`spatial_index::TileGrid`]), balances the tiles across N shards by
//! charger count (LPT greedy — the classic longest-processing-time
//! heuristic), and runs one full serving stack per shard: its own
//! deterministic [`crate::EventScheduler`], its own
//! [`eis::InfoServer`] (forecast cache + [`eis::ForecastShare`] ledger)
//! and its own [`ecocharge_core::QueryCtx`] (search scratch, shared CH
//! detour index). A session is served by the shard its trip currently
//! drives through; shard tick batches execute in parallel through
//! `ec-exec`.
//!
//! ## Hand-off
//!
//! A trip that crosses a tile boundary owned by another shard carries a
//! [`EventKind::Handoff`] stop in its itinerary at the `(time, offset)`
//! of the first stop of the new shard run. Executing it produces no
//! solve — the origin shard drops the session from its registry
//! ([`SessionService::take_departures`]) and the front delivers the
//! *whole* session object (solver with its Dynamic-Cache slot, cursor,
//! last ranking, solve record) to the destination shard
//! ([`SessionService::adopt_session`]) at the end of the global tick.
//! Hand-off is pure transfer: no re-plan, no re-solve, nothing a table
//! could observe.
//!
//! Itinerary stops are assigned to shards **per time group**: all stops
//! sharing one virtual second stay on one shard (the shard under the
//! group's first stop). This keeps the heap's `(time, session, kind)`
//! order consistent with itinerary order — a `Handoff` sorts before
//! every other kind at its instant, so it may only front a time group,
//! never split one.
//!
//! ## The sharded determinism argument
//!
//! The unsharded [`SessionService`] promises bit-identical Offering
//! Tables at any thread count. Sharding adds two claims:
//!
//! 1. **Per-session solves are untouched.** A session's events execute
//!    in itinerary order whatever shard executes them (the cursor
//!    travels with the session), at unchanged `(offset, time)` instants,
//!    against its private solver state (which travels too). Forecast
//!    purity per `(key, window)` makes the answering server
//!    interchangeable — a different shard's cache returns byte-identical
//!    values. So every solve, and hence every table, is bit-identical to
//!    the unsharded run at any shard count.
//! 2. **The merged log is the total order.** Each shard's event log is a
//!    subsequence of the global `(time, session, kind)` order; merging
//!    the per-shard logs and dropping the `Handoff` markers reproduces
//!    the unsharded service's log exactly.
//!
//! ## Forecast federation
//!
//! Federation has two halves on two cadences:
//!
//! * **values, every tick** — each shard drains the fresh forecast
//!   cells it computed this tick
//!   ([`eis::InfoServer::export_fresh_cells`]) and every peer installs
//!   them, together with the exporting ledger's ownership claims. By
//!   forecast purity per `(key, window)` the installed bytes are
//!   exactly what the peer would compute itself, so value federation is
//!   bit-identity preserving — it only turns the peer's would-be misses
//!   into *shared* hits, which is precisely the cross-session reuse the
//!   unsharded server gives co-located sessions for free and
//!   partitioning would otherwise destroy. Draining is incremental, so
//!   each round costs O(cells computed this round), not O(cache size);
//! * **counters, at drain and on demand** — each shard's
//!   [`eis::ForecastShare`] ledger is exported and merged into one
//!   [`eis::Ledger`] — a pure CRDT-style join (commutative,
//!   associative, idempotent; see [`eis::share`]), so federation needs
//!   no global lock and no coordination. Exporting clones the owners
//!   map, so the join stays off the per-tick path.
//!
//! ## Crash safety
//!
//! A journaled front ([`ShardedService::with_journal`]) gives every
//! shard its own write-ahead journal under `dir/shard-N`, snapshots
//! disabled — recovery replays the full logs. [`recover_sharded`]
//! replays all shard journals **in causal lockstep**: a commit is
//! replayable once every session it touches is present on its shard, and
//! replaying a commit immediately delivers the hand-offs it produced, so
//! cross-shard adoptions replay exactly as they happened. Registration
//! records stay identical to the unsharded wire format (the sharded
//! itinerary is a pure function of `(trip, config, shard plan)` and is
//! recomputed, never journaled).

use crate::cache::{TableCache, TableTier};
use crate::error::{RecoveryError, RegisterError, SessionError};
use crate::journal::{read_journal, Journal, JournalConfig, Record};
use crate::recovery::{rebuild_trip, RecoveryReport};
use crate::registry::{build_itinerary, PlannedStop, SessionState};
use crate::scheduler::{Event, EventKind};
use crate::service::{ServiceConfig, SessionService};
use crate::stats::SessionStats;
use ec_types::{EcError, GeoPoint, SessionId, SimDuration};
use ecocharge_core::{EcoChargeConfig, QueryCtx};
use eis::{InfoServer, Ledger, SimProviders};
use spatial_index::TileGrid;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Sharding knobs, wrapped around the per-shard [`ServiceConfig`].
#[derive(Debug, Clone, Copy)]
pub struct ShardConfig {
    /// Number of shards (≥ 1; 1 degenerates to unsharded serving with
    /// zero hand-offs).
    pub shards: usize,
    /// Quadtree tile depth: the world is split into `4^depth` tiles
    /// before balancing (must exceed neither
    /// [`spatial_index::MAX_TILE_DEPTH`] nor what memory allows; depth 3
    /// = 64 tiles balances up to ~16 shards well).
    pub tile_depth: u32,
    /// Worker threads for the global tick: up to `min(threads, shards)`
    /// lanes execute their batches concurrently. Within a lane, batches
    /// always run single-threaded — the shard *is* the unit of
    /// parallelism here (within-shard batch fan-out is the unsharded
    /// service's own `threads` knob, measured by the bench's `sessions`
    /// series; stacking both would oversubscribe the host).
    pub threads: usize,
    /// The per-shard serving config ([`ServiceConfig::threads`] is
    /// overridden to 1 per the above; `max_sessions` applies per shard).
    pub service: ServiceConfig,
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self { shards: 4, tile_depth: 3, threads: 1, service: ServiceConfig::default() }
    }
}

impl ShardConfig {
    /// Lanes ticked concurrently per global tick.
    #[must_use]
    pub fn tick_workers(&self) -> usize {
        self.threads.min(self.shards).max(1)
    }

    /// The config one lane's [`SessionService`] runs under.
    fn lane_config(&self) -> ServiceConfig {
        ServiceConfig { threads: 1, ..self.service }
    }
}

/// The geographic partition: a fixed-depth tile grid over the graph's
/// bounding box plus a balanced tile→shard assignment. Pure in
/// `(graph bounds, fleet, shards, depth)`, so every process — including
/// crash recovery — recomputes the identical plan.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    grid: TileGrid,
    assignment: Vec<u32>,
    shards: usize,
    load: Vec<u64>,
}

impl ShardPlan {
    /// Partition `graph.bounds()` at `tile_depth` and balance the tiles
    /// across `shards` by charger count: tiles are taken heaviest-first
    /// (ties by tile id) and each goes to the least-loaded shard (ties
    /// by shard id) — LPT greedy, within 4/3 of the optimal makespan and
    /// fully deterministic.
    #[must_use]
    pub fn build(
        graph: &roadnet::RoadGraph,
        fleet: &chargers::ChargerFleet,
        shards: usize,
        tile_depth: u32,
    ) -> Self {
        assert!(shards >= 1, "a shard plan needs at least one shard");
        let grid = TileGrid::new(graph.bounds(), tile_depth);
        let tiles = grid.num_tiles() as usize;
        let mut counts = vec![0u64; tiles];
        for charger in fleet.all() {
            counts[grid.tile_of(&charger.loc) as usize] += 1;
        }
        let mut order: Vec<usize> = (0..tiles).collect();
        order.sort_by_key(|&t| (std::cmp::Reverse(counts[t]), t));
        let mut load = vec![0u64; shards];
        let mut assignment = vec![0u32; tiles];
        for t in order {
            let s = (0..shards).min_by_key(|&s| (load[s], s)).expect("shards >= 1");
            assignment[t] = s as u32;
            load[s] += counts[t];
        }
        Self { grid, assignment, shards, load }
    }

    /// The shard owning the tile under `pos` (out-of-bounds positions
    /// clamp onto the boundary, as in [`TileGrid::tile_of`]).
    #[must_use]
    pub fn shard_of(&self, pos: &GeoPoint) -> usize {
        self.assignment[self.grid.tile_of(pos) as usize] as usize
    }

    /// Shard count.
    #[must_use]
    pub const fn num_shards(&self) -> usize {
        self.shards
    }

    /// The tile grid the plan partitions.
    #[must_use]
    pub const fn grid(&self) -> &TileGrid {
        &self.grid
    }

    /// Chargers per shard under the balanced assignment.
    #[must_use]
    pub fn charger_load(&self) -> &[u64] {
        &self.load
    }
}

/// Plan a trip's itinerary for sharded serving: the unsharded
/// [`build_itinerary`] with a [`EventKind::Handoff`] stop inserted in
/// front of every shard change. Returns the itinerary and the home
/// shard (the shard of the first stop). Stops are assigned per *time
/// group* — see the module docs for why a group never splits.
///
/// # Errors
/// As [`build_itinerary`].
pub fn build_sharded_itinerary(
    ctx: &QueryCtx<'_>,
    trip: &trajgen::Trip,
    adapt_every: SimDuration,
    plan: &ShardPlan,
) -> Result<(Vec<PlannedStop>, usize), EcError> {
    let base = build_itinerary(ctx, trip, adapt_every)?;
    if plan.num_shards() == 1 {
        return Ok((base, 0));
    }
    let mut out = Vec::with_capacity(base.len() + 4);
    let mut home = None;
    let mut current = 0usize;
    let mut i = 0;
    while i < base.len() {
        let time = base[i].time;
        let shard = plan.shard_of(&trip.position_at_offset(ctx.graph, base[i].offset_m));
        match home {
            None => {
                home = Some(shard);
                current = shard;
            }
            Some(_) if shard != current => {
                out.push(PlannedStop {
                    kind: EventKind::Handoff,
                    time,
                    offset_m: base[i].offset_m,
                });
                current = shard;
            }
            Some(_) => {}
        }
        while i < base.len() && base[i].time == time {
            out.push(base[i]);
            i += 1;
        }
    }
    Ok((out, home.unwrap_or(0)))
}

/// The per-shard environment the lanes borrow: one [`InfoServer`] per
/// shard (own forecast cache, own [`eis::ForecastShare`] ledger). Kept
/// outside [`ShardedService`] so the service can borrow the servers for
/// its lifetime.
#[derive(Debug)]
pub struct ShardEnv {
    servers: Vec<InfoServer>,
}

impl ShardEnv {
    /// One model-backed server per shard over shared simulators, each
    /// logging its fresh-tier computations for the per-tick value
    /// federation round.
    #[must_use]
    pub fn new(sims: &SimProviders, shards: usize) -> Self {
        let servers: Vec<InfoServer> =
            (0..shards).map(|_| InfoServer::from_sims(sims.clone())).collect();
        for server in &servers {
            server.enable_federation();
        }
        Self { servers }
    }

    /// The per-shard servers, shard order.
    #[must_use]
    pub fn servers(&self) -> &[InfoServer] {
        &self.servers
    }
}

/// One shard's serving stack: its service plus the context it solves
/// against (per-shard server, shared graph/fleet/sims).
struct Lane<'a> {
    service: SessionService,
    ctx: QueryCtx<'a>,
}

impl std::fmt::Debug for Lane<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lane").field("service", &self.service).finish_non_exhaustive()
    }
}

/// The sharded front: keeps the unsharded `register → tick → retire`
/// surface while fanning work across geographic shards. See the module
/// docs for the architecture and the determinism argument.
#[derive(Debug)]
pub struct ShardedService<'a> {
    plan: ShardPlan,
    lanes: Vec<Lane<'a>>,
    ledger: Ledger,
    graph: &'a roadnet::RoadGraph,
    adapt_every: SimDuration,
    tick_workers: usize,
    /// The process-wide L2 Offering-Table tier every lane shares, when
    /// [`crate::TableCacheConfig`] enables caching.
    table_l2: Option<Arc<TableTier>>,
}

impl<'a> ShardedService<'a> {
    /// An unjournaled sharded front. `env` must hold exactly
    /// `shard.shards` servers.
    #[must_use]
    pub fn new(
        env: &'a ShardEnv,
        graph: &'a roadnet::RoadGraph,
        fleet: &'a chargers::ChargerFleet,
        sims: &'a SimProviders,
        config: EcoChargeConfig,
        shard: ShardConfig,
    ) -> Self {
        Self::assemble(env, graph, fleet, sims, config, shard, None).expect("unjournaled")
    }

    /// A sharded front journaling every shard under `dir/shard-N`.
    /// Snapshots are disabled shard-wide: sharded recovery replays the
    /// full per-shard logs in causal lockstep (a snapshot would restore
    /// one shard past adoptions its peers have not yet replayed).
    ///
    /// # Errors
    /// [`SessionError::Journal`] when a shard journal cannot be created.
    pub fn with_journal(
        env: &'a ShardEnv,
        graph: &'a roadnet::RoadGraph,
        fleet: &'a chargers::ChargerFleet,
        sims: &'a SimProviders,
        config: EcoChargeConfig,
        shard: ShardConfig,
        dir: &Path,
    ) -> Result<Self, SessionError> {
        Self::assemble(env, graph, fleet, sims, config, shard, Some(dir.to_path_buf()))
    }

    fn assemble(
        env: &'a ShardEnv,
        graph: &'a roadnet::RoadGraph,
        fleet: &'a chargers::ChargerFleet,
        sims: &'a SimProviders,
        config: EcoChargeConfig,
        shard: ShardConfig,
        journal_dir: Option<PathBuf>,
    ) -> Result<Self, SessionError> {
        assert_eq!(
            env.servers.len(),
            shard.shards,
            "the ShardEnv must hold one InfoServer per shard"
        );
        let plan = ShardPlan::build(graph, fleet, shard.shards, shard.tile_depth);
        let lane_config = shard.lane_config();
        let table_l2 = shard
            .service
            .table_cache
            .enabled
            .then(|| TableCache::shared_tier(&shard.service.table_cache));
        let mut lanes = Vec::with_capacity(shard.shards);
        for (i, server) in env.servers.iter().enumerate() {
            let mut service = match &journal_dir {
                Some(dir) => {
                    SessionService::with_journal(lane_config, shard_journal_config(dir, i))?
                }
                None => SessionService::new(lane_config),
            };
            let ctx = QueryCtx::new(graph, fleet, server, sims, config);
            service.attach_share(server.forecast_share());
            if let Some(tier) = &table_l2 {
                service.attach_table_l2(Arc::clone(tier));
            }
            lanes.push(Lane { service, ctx });
        }
        Ok(Self {
            plan,
            lanes,
            ledger: Ledger::default(),
            graph,
            adapt_every: shard.service.adapt_every,
            tick_workers: shard.tick_workers(),
            table_l2,
        })
    }

    /// Share one prebuilt CH detour index across every shard's context
    /// (each shard would otherwise build its own copy on first use).
    pub fn adopt_detour_ch(&self, ch: &Arc<roadnet::DetourCh>) {
        for lane in &self.lanes {
            lane.ctx.adopt_detour_ch(Arc::clone(ch));
        }
    }

    /// The partition in force.
    #[must_use]
    pub const fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Admit `trip`: plan its sharded itinerary and register it on its
    /// home shard (the shard under its first stop).
    ///
    /// # Errors
    /// As [`SessionService::register`]; duplicates are refused across
    /// *all* shards (a session may live on any of them).
    pub fn register(&mut self, trip: &trajgen::Trip) -> Result<SessionId, RegisterError> {
        let id = SessionId(trip.id.0);
        if self.lanes.iter().any(|l| l.service.session(id).is_some()) {
            return Err(RegisterError::Duplicate(id));
        }
        let (itinerary, home) = {
            let ctx = &self.lanes[0].ctx;
            build_sharded_itinerary(ctx, trip, self.adapt_every, &self.plan)
                .map_err(RegisterError::Planning)?
        };
        let Lane { service, ctx } = &mut self.lanes[home];
        service.register_planned(ctx, trip, Some(itinerary))
    }

    /// One **global tick**: every shard executes one batch concurrently,
    /// then the front delivers the round's hand-offs and runs the
    /// federation round (forecast values + ledger join, see the module
    /// docs). Returns events executed across all shards.
    ///
    /// # Errors
    /// The first failing shard's error, in shard order (that shard is
    /// quarantined; hand-offs staged by healthy shards stay staged — the
    /// per-shard journals remain the source of truth).
    pub fn tick(&mut self) -> Result<usize, SessionError> {
        let results = ec_exec::parallel_map_mut(
            self.tick_workers,
            &mut self.lanes,
            |_| (),
            |(), _, lane| {
                let Lane { service, ctx } = lane;
                service.tick(ctx)
            },
        );
        self.finish_tick(results)
    }

    /// One global tick with the lanes executed **serially**, returning
    /// `(events executed, per-lane seconds)`. The outcome is identical
    /// to [`ShardedService::tick`] — lanes are independent within a tick
    /// (hand-off delivery and federation happen only after every lane
    /// ran), so execution order cannot matter — but each lane's cost is
    /// measured in isolation. A scheduler model over those timings can
    /// price the parallel schedule exactly even on a host with fewer
    /// cores than shards, where wall-clocking [`ShardedService::tick`]
    /// would only measure time-slicing (see the bench's `repro shard`
    /// critical-path throughput).
    ///
    /// # Errors
    /// As [`ShardedService::tick`].
    pub fn tick_timed(&mut self) -> Result<(usize, Vec<f64>), SessionError> {
        let mut results = Vec::with_capacity(self.lanes.len());
        let mut lane_s = Vec::with_capacity(self.lanes.len());
        for lane in &mut self.lanes {
            let started = std::time::Instant::now();
            let Lane { service, ctx } = lane;
            results.push(service.tick(ctx));
            lane_s.push(started.elapsed().as_secs_f64());
        }
        Ok((self.finish_tick(results)?, lane_s))
    }

    /// The shared tail of a global tick: surface the first lane error
    /// (every lane has already run), deliver hand-offs, federate.
    fn finish_tick(
        &mut self,
        results: Vec<Result<usize, SessionError>>,
    ) -> Result<usize, SessionError> {
        let mut executed = 0;
        for result in results {
            executed += result?;
        }
        self.deliver_handoffs();
        self.federate_values();
        Ok(executed)
    }

    /// Move every staged departure to its destination shard.
    fn deliver_handoffs(&mut self) {
        let mut moves: Vec<(usize, SessionState)> = Vec::new();
        for lane in &mut self.lanes {
            for state in lane.service.take_departures() {
                let next = state
                    .next_event()
                    .expect("a Handoff stop always fronts at least one more stop");
                let dest =
                    self.plan.shard_of(&state.trip.position_at_offset(self.graph, next.offset_m));
                moves.push((dest, state));
            }
        }
        for (dest, state) in moves {
            self.lanes[dest].service.adopt_session(state);
        }
    }

    /// A full federation round: this tick's values plus the ledger
    /// counter join.
    fn federate(&mut self) {
        self.federate_values();
        let ledger = &mut self.ledger;
        for (i, lane) in self.lanes.iter().enumerate() {
            ledger.merge(&lane.ctx.server.forecast_share().export(i as u32));
        }
    }

    /// Value federation: move the fresh forecast cells computed since
    /// the last round to every peer shard (bit-identity preserving by
    /// forecast purity, see the module docs). Incremental — each round
    /// costs O(cells computed this round), so it runs every tick. The
    /// ledger counter join does *not*: exporting a [`eis::ForecastShare`]
    /// clones its whole owners map, so the join runs only at drain
    /// ([`ShardedService::run_to_completion`]) and on demand
    /// ([`ShardedService::federated_ledger`]), which always see a fresh
    /// join anyway.
    fn federate_values(&mut self) {
        if self.lanes.len() > 1 {
            let deltas: Vec<eis::ForecastCells> =
                self.lanes.iter().map(|l| l.ctx.server.export_fresh_cells()).collect();
            for (j, lane) in self.lanes.iter().enumerate() {
                for (i, delta) in deltas.iter().enumerate() {
                    if i != j && !delta.is_empty() {
                        lane.ctx.server.install_fresh_cells(delta);
                    }
                }
            }
        }
    }

    /// Global-tick until every shard's queue drains.
    ///
    /// # Errors
    /// As [`ShardedService::tick`].
    pub fn run_to_completion(&mut self) -> Result<(), SessionError> {
        while self.pending_events() > 0 {
            self.tick()?;
        }
        self.federate();
        Ok(())
    }

    /// Events still queued, all shards.
    #[must_use]
    pub fn pending_events(&self) -> usize {
        self.lanes.iter().map(|l| l.service.pending_events()).sum()
    }

    /// Live sessions, all shards.
    #[must_use]
    pub fn active_sessions(&self) -> usize {
        self.lanes.iter().map(|l| l.service.active_sessions()).sum()
    }

    /// Fleet-wide counters: per-shard stats [`SessionStats::absorb`]ed
    /// together (saturating). `events_executed` and `handoffs` count the
    /// `Handoff` markers, so they exceed the unsharded run's figures by
    /// exactly [`SessionStats::handoffs`].
    #[must_use]
    pub fn stats(&self) -> SessionStats {
        let mut total = SessionStats::default();
        for lane in &self.lanes {
            total.absorb(&lane.service.stats());
        }
        total
    }

    /// Per-shard counter snapshots, shard order.
    #[must_use]
    pub fn per_shard_stats(&self) -> Vec<SessionStats> {
        self.lanes.iter().map(|l| l.service.stats()).collect()
    }

    /// The unified cache-metrics registry across the whole front: every
    /// lane's `session.l1` merged, the shared `session.l2` reported
    /// once, and the per-shard InfoServer forecast tiers (`eis.fresh`,
    /// `eis.lkg`) merged. Observational counters — never part of the
    /// identity contract.
    #[must_use]
    pub fn cache_metrics(&self) -> servecache::CacheMetrics {
        let mut metrics = servecache::CacheMetrics::default();
        for lane in &self.lanes {
            if let Some(cache) = lane.service.table_cache() {
                metrics.record("session.l1", cache.l1_snapshot());
            }
            metrics.absorb(&lane.ctx.server.cache_metrics());
        }
        if let Some(tier) = &self.table_l2 {
            metrics.record("session.l2", tier.snapshot());
        }
        metrics
    }

    /// Per-event execution latencies across every lane, µs. Lane order,
    /// not execution order — use for percentiles, not for sequencing.
    #[must_use]
    pub fn event_latencies_us(&self) -> Vec<f64> {
        self.lanes
            .iter()
            .flat_map(|lane| lane.service.event_latencies_us().iter().copied())
            .collect()
    }

    /// The federated forecast ledger as of the last join, re-joined
    /// fresh so late observations are visible without waiting a tick.
    #[must_use]
    pub fn federated_ledger(&self) -> Ledger {
        let mut ledger = self.ledger.clone();
        for (i, lane) in self.lanes.iter().enumerate() {
            ledger.merge(&lane.ctx.server.forecast_share().export(i as u32));
        }
        ledger
    }

    /// The merged execution log: every shard's log, `Handoff` markers
    /// dropped, merged into `(time, session, kind)` order — by the
    /// determinism argument, exactly the unsharded service's log.
    #[must_use]
    pub fn event_log(&self) -> Vec<Event> {
        let mut log: Vec<Event> = self
            .lanes
            .iter()
            .flat_map(|l| l.service.event_log().iter().copied())
            .filter(|e| e.kind != EventKind::Handoff)
            .collect();
        log.sort_by_key(Event::key);
        log
    }

    /// One session by id, wherever it currently lives.
    #[must_use]
    pub fn session(&self, id: SessionId) -> Option<&SessionState> {
        self.lanes.iter().find_map(|l| l.service.session(id))
    }

    /// All sessions in id order, across shards.
    #[must_use]
    pub fn sessions(&self) -> Vec<&SessionState> {
        let mut all: Vec<&SessionState> =
            self.lanes.iter().flat_map(|l| l.service.sessions()).collect();
        all.sort_by_key(|s| s.id);
        all
    }
}

/// The journal layout of shard `i` under the front's journal directory.
fn shard_journal_config(dir: &Path, shard: usize) -> JournalConfig {
    JournalConfig {
        snapshot_every_ticks: 0,
        ..JournalConfig::new(dir.join(format!("shard-{shard}")))
    }
}

/// Rebuild a sharded front from its per-shard journals (see the module
/// docs). Every shard's full log is replayed; commits replay in causal
/// lockstep so cross-shard adoptions happen exactly as they did live,
/// and every replayed batch re-verifies events, outcomes and watermarks
/// against the journal.
///
/// # Errors
/// Per-shard as [`crate::recover`]; additionally
/// [`RecoveryError::ReplayDivergence`] when a journal registers a
/// session on a shard the recomputed plan does not home it on, or when
/// commit records reference adoptions no surviving journal explains
/// (cross-shard causality broken by corruption).
pub fn recover_sharded<'a>(
    env: &'a ShardEnv,
    graph: &'a roadnet::RoadGraph,
    fleet: &'a chargers::ChargerFleet,
    sims: &'a SimProviders,
    config: EcoChargeConfig,
    shard: ShardConfig,
    dir: &Path,
) -> Result<(ShardedService<'a>, Vec<RecoveryReport>), RecoveryError> {
    assert_eq!(env.servers.len(), shard.shards, "the ShardEnv must hold one InfoServer per shard");
    let plan = ShardPlan::build(graph, fleet, shard.shards, shard.tile_depth);

    let mut reads = Vec::with_capacity(shard.shards);
    for i in 0..shard.shards {
        let jconfig = shard_journal_config(dir, i);
        let path = jconfig.journal_path();
        if !path.exists() {
            return Err(RecoveryError::MissingJournal { dir: jconfig.dir.display().to_string() });
        }
        let read = read_journal(&path)?;
        if read.adapt_every != shard.service.adapt_every {
            return Err(RecoveryError::ConfigMismatch {
                what: "adapt_every",
                journal: read.adapt_every.as_secs(),
                config: shard.service.adapt_every.as_secs(),
            });
        }
        reads.push(read);
    }

    let lane_config = shard.lane_config();
    let table_l2 = shard
        .service
        .table_cache
        .enabled
        .then(|| TableCache::shared_tier(&shard.service.table_cache));
    let mut lanes: Vec<Lane<'a>> = env
        .servers
        .iter()
        .map(|server| {
            let mut service =
                SessionService::from_recovery(lane_config, SessionStats::default(), Vec::new());
            if let Some(tier) = &table_l2 {
                service.attach_table_l2(Arc::clone(tier));
            }
            Lane { service, ctx: QueryCtx::new(graph, fleet, server, sims, config) }
        })
        .collect();
    let mut reports: Vec<RecoveryReport> = reads
        .iter()
        .map(|r| RecoveryReport {
            tail_defect: r.tail_defect.clone(),
            healed_len: r.valid_len,
            ..RecoveryReport::default()
        })
        .collect();

    // Causal lockstep: round-robin over shards, each replaying records
    // until one is not yet *ready* — a commit touching a session whose
    // adoption a peer shard has not replayed. Replaying the peer's
    // Handoff commit delivers the adoption and unblocks it next pass.
    let mut cursors = vec![0usize; shard.shards];
    loop {
        let mut progressed = false;
        for i in 0..shard.shards {
            while let Some(record) = reads[i].records.get(cursors[i]) {
                if let Record::Commit { entries, .. } = record {
                    if !entries.iter().all(|e| lanes[i].service.session(e.session).is_some()) {
                        break;
                    }
                }
                match record {
                    Record::Register { session, vehicle, depart, nodes } => {
                        let trip =
                            rebuild_trip(&lanes[i].ctx, session.0, *vehicle, *depart, nodes)?;
                        let (itinerary, home) = build_sharded_itinerary(
                            &lanes[i].ctx,
                            &trip,
                            shard.service.adapt_every,
                            &plan,
                        )
                        .map_err(RecoveryError::Planning)?;
                        if home != i {
                            return Err(RecoveryError::ReplayDivergence {
                                detail: format!(
                                    "shard {i} journals the admission of session {session} but \
                                     the recomputed plan homes it on shard {home}"
                                ),
                            });
                        }
                        let Lane { service, ctx } = &mut lanes[i];
                        service.replay_register_planned(ctx, &trip, Some(itinerary))?;
                        reports[i].registers_replayed += 1;
                    }
                    Record::Commit { after, deferred, entries } => {
                        {
                            let Lane { service, ctx } = &mut lanes[i];
                            service.replay_commit(ctx, entries, *deferred, *after).map_err(
                                |e| match e {
                                    SessionError::Recovery(r) => r,
                                    other => RecoveryError::ReplayDivergence {
                                        detail: other.to_string(),
                                    },
                                },
                            )?;
                        }
                        reports[i].commits_replayed += 1;
                        reports[i].events_replayed += entries.len() as u64;
                        let moves: Vec<(usize, SessionState)> = lanes[i]
                            .service
                            .take_departures()
                            .into_iter()
                            .map(|state| {
                                let next = state
                                    .next_event()
                                    .expect("a Handoff stop always fronts at least one more stop");
                                let dest = plan
                                    .shard_of(&state.trip.position_at_offset(graph, next.offset_m));
                                (dest, state)
                            })
                            .collect();
                        for (dest, state) in moves {
                            lanes[dest].service.adopt_session(state);
                        }
                    }
                }
                cursors[i] += 1;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    if let Some(stuck) = (0..shard.shards).find(|&i| cursors[i] < reads[i].records.len()) {
        return Err(RecoveryError::ReplayDivergence {
            detail: format!(
                "shard {stuck} holds {} unreplayable commit record(s) referencing sessions no \
                 surviving journal hands off to it — cross-shard causality broken (corrupt or \
                 inconsistently healed journals)",
                reads[stuck].records.len() - cursors[stuck]
            ),
        });
    }

    for (i, read) in reads.iter().enumerate() {
        let journal = Journal::resume(shard_journal_config(dir, i), read.valid_len)?;
        let Lane { service, ctx } = &mut lanes[i];
        service.attach_journal(journal);
        service.attach_share(ctx.server.forecast_share());
    }

    let mut front = ShardedService {
        plan,
        lanes,
        ledger: Ledger::default(),
        graph,
        adapt_every: shard.service.adapt_every,
        tick_workers: shard.tick_workers(),
        table_l2,
    };
    front.federate();
    Ok((front, reports))
}

#[cfg(test)]
mod tests {
    use super::*;
    use chargers::{synth_fleet, FleetParams};
    use roadnet::{urban_grid, UrbanGridParams};
    use trajgen::{generate_trips, BrinkhoffParams};

    fn fixture() -> (roadnet::RoadGraph, chargers::ChargerFleet, SimProviders, Vec<trajgen::Trip>) {
        let graph = urban_grid(&UrbanGridParams::default());
        let fleet = synth_fleet(&graph, &FleetParams { count: 120, seed: 3, ..Default::default() });
        let sims = SimProviders::new(9);
        let trips = generate_trips(
            &graph,
            &BrinkhoffParams {
                trips: 4,
                min_trip_m: 10_000.0,
                max_trip_m: 18_000.0,
                ..Default::default()
            },
        );
        (graph, fleet, sims, trips)
    }

    #[test]
    fn plan_balances_chargers_and_covers_every_tile() {
        let (graph, fleet, _, _) = fixture();
        for shards in [1, 2, 4, 8] {
            let plan = ShardPlan::build(&graph, &fleet, shards, 3);
            assert_eq!(plan.num_shards(), shards);
            let total: u64 = plan.charger_load().iter().sum();
            assert_eq!(total, fleet.len() as u64, "every charger lands on exactly one shard");
            // LPT bound: no shard holds more than the heaviest tile plus
            // a fair share of the rest.
            let max = *plan.charger_load().iter().max().unwrap();
            let fair = total / shards as u64;
            let heaviest_tile = (0..plan.grid().num_tiles())
                .map(|t| fleet.all().iter().filter(|c| plan.grid().tile_of(&c.loc) == t).count())
                .max()
                .unwrap() as u64;
            assert!(
                max <= fair + heaviest_tile,
                "shards={shards}: max load {max} exceeds fair share {fair} + heaviest tile {heaviest_tile}"
            );
            // Every charger position maps to a valid shard.
            for c in fleet.all() {
                assert!(plan.shard_of(&c.loc) < shards);
            }
        }
    }

    #[test]
    fn sharded_itineraries_alternate_handoffs_with_work() {
        let (graph, fleet, sims, trips) = fixture();
        let server = InfoServer::from_sims(sims.clone());
        let ctx = QueryCtx::new(&graph, &fleet, &server, &sims, EcoChargeConfig::default());
        let plan = ShardPlan::build(&graph, &fleet, 4, 3);
        let mut saw_handoff = false;
        for trip in &trips {
            let (stops, home) =
                build_sharded_itinerary(&ctx, trip, SimDuration::from_mins(5), &plan).unwrap();
            assert!(home < 4);
            let base = build_itinerary(&ctx, trip, SimDuration::from_mins(5)).unwrap();
            let work: Vec<_> =
                stops.iter().copied().filter(|s| s.kind != EventKind::Handoff).collect();
            assert_eq!(work, base, "dropping the Handoff markers recovers the base itinerary");
            for pair in stops.windows(2) {
                if pair[0].kind == EventKind::Handoff {
                    saw_handoff = true;
                    assert_eq!(
                        pair[0].time, pair[1].time,
                        "a Handoff carries the time of the stop it fronts"
                    );
                    assert!(
                        pair[1].kind != EventKind::Handoff,
                        "consecutive Handoffs would be a zero-length shard run"
                    );
                }
            }
            assert_ne!(
                stops.last().unwrap().kind,
                EventKind::Handoff,
                "a Handoff is never the final stop"
            );
            // No time group is ever split across shards: a Handoff's
            // instant must not appear earlier in the itinerary.
            for (i, s) in stops.iter().enumerate() {
                if s.kind == EventKind::Handoff {
                    assert!(
                        stops[..i].iter().all(|p| p.time < s.time),
                        "a Handoff may only front a whole time group"
                    );
                }
            }
        }
        assert!(saw_handoff, "10–18 km urban trips at depth 3 must cross shard boundaries");
    }

    #[test]
    fn sharded_table_cache_is_bit_identical_and_feeds_the_shared_tier() {
        let (graph, fleet, sims, mut trips) = fixture();
        // Align departures so every session interleaves at the shared
        // rollover/adapt instants (staggered trips would keep each
        // shape's sessions adjacent in every batch, and even a one-entry
        // L1 would absorb all collisions), then clone every trip under a
        // fresh id so the key space collides.
        for t in &mut trips {
            t.depart = ec_types::SimTime::from_secs(600);
        }
        let mut all = trips.clone();
        for (i, t) in trips.iter().enumerate() {
            let mut clone = t.clone();
            clone.id = ec_types::TripId(1000 + i as u32);
            all.push(clone);
        }

        // Uncached, unsharded reference.
        let server = InfoServer::from_sims(sims.clone());
        let ctx = QueryCtx::new(&graph, &fleet, &server, &sims, EcoChargeConfig::default());
        let mut flat = SessionService::new(ServiceConfig::default());
        for trip in &all {
            flat.register(&ctx, trip).unwrap();
        }
        flat.run_to_completion(&ctx).unwrap();

        for shards in [2, 4] {
            let env = ShardEnv::new(&sims, shards);
            // A one-entry L1 forces real fall-through to the shared tier.
            let table_cache = crate::TableCacheConfig {
                enabled: true,
                l1_entries: 1,
                ..crate::TableCacheConfig::default()
            };
            let mut front = ShardedService::new(
                &env,
                &graph,
                &fleet,
                &sims,
                EcoChargeConfig::default(),
                ShardConfig {
                    shards,
                    threads: 2,
                    service: ServiceConfig { table_cache, ..ServiceConfig::default() },
                    ..ShardConfig::default()
                },
            );
            for trip in &all {
                front.register(trip).unwrap();
            }
            front.run_to_completion().unwrap();

            assert_eq!(front.event_log(), flat.event_log(), "shards={shards}");
            for (a, b) in front.sessions().iter().zip(flat.sessions()) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.solves, b.solves, "shards={shards}");
                assert_eq!(a.cache_stats(), b.cache_stats(), "restored solver counters");
            }
            let metrics = front.cache_metrics();
            let l1 = metrics.get("session.l1").expect("lanes report their L1s merged");
            assert!(l1.insertions > 0, "{l1:?}");
            let l2 = metrics.get("session.l2").expect("the front reports the shared tier once");
            assert!(l2.insertions > 0, "lanes must publish to the shared tier: {l2:?}");
            assert!(l2.hits > 0, "a one-entry L1 must fall through to the shared tier: {l2:?}");
            assert!(metrics.get("eis.fresh").is_some(), "forecast tiers ride along");
        }
    }

    #[test]
    fn single_shard_front_matches_the_unsharded_service() {
        let (graph, fleet, sims, trips) = fixture();

        let server = InfoServer::from_sims(sims.clone());
        let ctx = QueryCtx::new(&graph, &fleet, &server, &sims, EcoChargeConfig::default());
        let mut flat = SessionService::new(ServiceConfig::default());
        for trip in &trips {
            flat.register(&ctx, trip).unwrap();
        }
        flat.run_to_completion(&ctx).unwrap();

        let env = ShardEnv::new(&sims, 1);
        let mut front = ShardedService::new(
            &env,
            &graph,
            &fleet,
            &sims,
            EcoChargeConfig::default(),
            ShardConfig { shards: 1, ..ShardConfig::default() },
        );
        for trip in &trips {
            front.register(trip).unwrap();
        }
        front.run_to_completion().unwrap();

        assert_eq!(front.stats().handoffs, 0, "one shard can have no boundaries");
        assert_eq!(front.event_log(), flat.event_log());
        for (a, b) in front.sessions().iter().zip(flat.sessions()) {
            assert_eq!(a.solves, b.solves);
        }
    }
}
