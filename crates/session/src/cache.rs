//! Tiered Offering-Table caching for the serving layer.
//!
//! The serving stack's determinism argument makes a rendered Offering
//! Table *addressable*: under the purity gate (model-backed forecasts,
//! no stale tier, no resilience — the same test batch parallelism
//! uses), a session's n-th solve is a pure function of
//! `(trip shape, solve index, config, forecast window)`. Two sessions
//! driving the same route with the same vehicle and departure produce
//! bit-identical solve sequences — so the table, *and the full
//! post-solve solver state*, computed by one session can be replayed
//! into another without running Algorithm 1 at all.
//!
//! Two tiers serve that reuse:
//!
//! * **L1** — a per-lane [`servecache::Lru`] behind one mutex, owned by
//!   a single [`crate::SessionService`]. Per-lane, so sharded lanes
//!   never contend on it.
//! * **L2** — an optional shared-process [`servecache::SharedTier`]
//!   (sharded-lock LRU) one [`crate::ShardedService`] hands to every
//!   lane; an L2 hit is promoted into the probing lane's L1.
//!
//! ## The key
//!
//! [`TableKey`] is `(trip_digest, stop_index, config_hash, window)`:
//!
//! * `trip_digest` hashes the trip's *shape* — vehicle, departure and
//!   route nodes but **not** the trip id — so fleet workloads where many
//!   drivers follow the same popular route (the Zipf skew the serve
//!   bench hammers) collapse onto shared entries;
//! * `stop_index` is the session's solve cursor. Solves are
//!   path-dependent (adapted solves reuse the private Dynamic Cache),
//!   so the index pins the *entire solve history*, making the cached
//!   post-solve [`ecocharge_core::SolverSnapshot`] exact;
//! * `config_hash` digests every [`EcoChargeConfig`] field (weights via
//!   [`ecocharge_core::RawWeights`], floats bit-cast, enums by name);
//! * `window` is the [`eis::forecast_window`] bucket of the solve
//!   instant: redundant for correctness (the itinerary pins the time)
//!   but it gives rollover invalidation a deterministic predicate —
//!   executing a [`crate::EventKind::Rollover`] evicts every entry of
//!   an older window from the L1 ([`TableCache::roll_window`]).
//!
//! Dynamic-Cache *adaptation* needs no invalidation: an
//! [`crate::EventKind::Adapt`] event is itself a solve, so the state it
//! leaves behind is captured by the next stop's snapshot under the next
//! `stop_index`.
//!
//! ## What a hit restores
//!
//! A [`SolveArtifact`] carries the outcome (table or no-offers) *and*
//! the absolute post-solve [`ecocharge_core::SolverSnapshot`] (Dynamic
//! Cache slot + counters + prune totals). A hit replays both, so
//! journal snapshots, `CacheImage`s and later *adapted* solves are
//! bit-identical to the uncached run — the identity tests sweep cache
//! on/off across threads × shards to prove it. Failed solves are never
//! cached (errors must re-observe the server).
//!
//! Hit/miss counters live in the cache tiers (surfaced through
//! [`servecache::CacheMetrics`]), **not** in
//! [`crate::SessionStats`]: which concurrent session wins the insert
//! race is wall-clock dependent, and the stats struct is part of the
//! determinism contract.

use crate::scheduler::Event;
use ecocharge_core::{EcoChargeConfig, OfferingEntry, OfferingTable, RawWeights, SolverSnapshot};
use parking_lot::Mutex;
use servecache::{CacheMetrics, Fnv64, Lru, SharedTier, TierSnapshot};
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use trajgen::Trip;

/// The address of one rendered solve (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TableKey {
    /// FNV-1a digest of the trip *shape* (vehicle, departure, route
    /// nodes — not the id).
    pub trip_digest: u64,
    /// The session's solve cursor at this stop — pins the whole solve
    /// history under path-dependent Dynamic Caching.
    pub stop_index: u32,
    /// Digest of the full [`EcoChargeConfig`].
    pub config_hash: u64,
    /// [`eis::forecast_window`] bucket of the solve instant, seconds.
    pub window: u64,
}

impl TableKey {
    /// The key of `event` for a session serving `trip` with the cursor
    /// at `stop_index`, under the pre-digested config.
    #[must_use]
    pub fn of(trip_digest: u64, stop_index: usize, config_hash: u64, event: &Event) -> Self {
        Self {
            trip_digest,
            stop_index: u32::try_from(stop_index).unwrap_or(u32::MAX),
            config_hash,
            window: eis::forecast_window(event.time).as_secs(),
        }
    }
}

/// Digest the trip's shape: vehicle, departure second and route nodes.
/// The trip *id* is deliberately excluded — sessions are keyed by trip
/// id, but two ids over the same shape solve identically, and that
/// collapse is the whole point of the shared tier.
#[must_use]
pub fn trip_digest(trip: &Trip) -> u64 {
    let mut h = Fnv64::default();
    trip.vehicle.0.hash(&mut h);
    trip.depart.as_secs().hash(&mut h);
    for node in trip.route.nodes() {
        node.0.hash(&mut h);
    }
    h.finish()
}

/// Digest every field of the config. Exhaustive destructuring (no `..`)
/// so adding a field to [`EcoChargeConfig`] refuses to compile until
/// this digest learns about it — a silently unkeyed knob would alias
/// distinct solves.
#[must_use]
pub fn config_digest(config: &EcoChargeConfig) -> u64 {
    let EcoChargeConfig {
        k,
        radius_km,
        range_km,
        segment_km,
        weights,
        charge_window_h,
        quadtree_fraction,
        vehicle,
        degraded,
        threads,
        detour_backend,
        pruning,
    } = *config;
    let mut h = Fnv64::default();
    k.hash(&mut h);
    radius_km.to_bits().hash(&mut h);
    range_km.to_bits().hash(&mut h);
    segment_km.to_bits().hash(&mut h);
    let raw = RawWeights::from(weights);
    raw.w1.to_bits().hash(&mut h);
    raw.w2.to_bits().hash(&mut h);
    raw.w3.to_bits().hash(&mut h);
    charge_window_h.to_bits().hash(&mut h);
    quadtree_fraction.to_bits().hash(&mut h);
    match vehicle {
        None => 0u8.hash(&mut h),
        Some(v) => {
            1u8.hash(&mut h);
            v.id.0.hash(&mut h);
            v.battery_kwh.to_bits().hash(&mut h);
            v.soc.to_bits().hash(&mut h);
            v.max_ac_kw.to_bits().hash(&mut h);
            v.max_dc_kw.to_bits().hash(&mut h);
            v.reserve_soc.to_bits().hash(&mut h);
        }
    }
    degraded.fallback_enabled.hash(&mut h);
    for iv in [
        degraded.sun_fallback,
        degraded.wind_fallback,
        degraded.availability_fallback,
        degraded.traffic_fallback,
    ] {
        iv.lo().to_bits().hash(&mut h);
        iv.hi().to_bits().hash(&mut h);
    }
    threads.hash(&mut h);
    detour_backend.name().hash(&mut h);
    pruning.name().hash(&mut h);
    h.finish()
}

/// What one cached solve produced — the [`crate::SolveOutcome`] shapes
/// a solve event can take, minus failures (never cached).
#[derive(Debug, Clone, PartialEq)]
pub enum ArtifactOutcome {
    /// A table was rendered.
    Table(OfferingTable),
    /// No chargers in range at this stop.
    NoOffers,
}

/// One cached solve: the outcome plus the absolute post-solve solver
/// state a hit must replay (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct SolveArtifact {
    /// Table or no-offers.
    pub outcome: ArtifactOutcome,
    /// The solver's state *after* this solve, restored verbatim on hit.
    pub post: SolverSnapshot,
}

impl SolveArtifact {
    /// Deterministic byte estimate for budget accounting: key + struct
    /// + the table's entry payload + a flat allowance for the snapshot's
    ///   cached components (which live behind `Arc`s of varying length —
    ///   an estimate keyed on the table is stable across runs, which is
    ///   what a deterministic eviction order needs).
    #[must_use]
    pub fn weight_bytes(&self) -> usize {
        const SNAPSHOT_SLOP: usize = 256;
        let table_entries = match &self.outcome {
            ArtifactOutcome::Table(t) => t.len(),
            ArtifactOutcome::NoOffers => 0,
        };
        std::mem::size_of::<TableKey>()
            + std::mem::size_of::<Self>()
            + table_entries * std::mem::size_of::<OfferingEntry>()
            + SNAPSHOT_SLOP
    }
}

/// Capacity knobs for the two tiers. `Default` is **disabled**: table
/// caching is opt-in because it only applies under the purity gate and
/// the serve bench is its proving ground.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableCacheConfig {
    /// Master switch.
    pub enabled: bool,
    /// L1 (per-lane) entry budget.
    pub l1_entries: usize,
    /// L1 (per-lane) byte budget (estimated bytes, see
    /// [`SolveArtifact::weight_bytes`]).
    pub l1_bytes: usize,
    /// L2 (shared tier) entry budget, whole tier.
    pub l2_entries: usize,
    /// L2 (shared tier) byte budget, whole tier.
    pub l2_bytes: usize,
    /// L2 lock shards.
    pub l2_shards: usize,
}

impl Default for TableCacheConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            l1_entries: 1 << 14,
            l1_bytes: 64 << 20,
            l2_entries: 1 << 16,
            l2_bytes: 256 << 20,
            l2_shards: 16,
        }
    }
}

impl TableCacheConfig {
    /// The default knobs with the master switch on.
    #[must_use]
    pub fn enabled() -> Self {
        Self { enabled: true, ..Self::default() }
    }
}

/// The shared tier type both fronts pass around.
pub type TableTier = SharedTier<TableKey, Arc<SolveArtifact>>;

/// One lane's view of the tiered table cache: its private L1 plus an
/// optional handle on the process-wide L2. Interior mutability because
/// batch workers probe it through a shared reference.
#[derive(Debug)]
pub struct TableCache {
    l1: Mutex<Lru<TableKey, Arc<SolveArtifact>>>,
    l2: Option<Arc<TableTier>>,
    /// Highest forecast window (seconds) this lane has swept — gates
    /// [`TableCache::roll_window`] to one sweep per window per lane.
    swept: std::sync::atomic::AtomicU64,
}

impl TableCache {
    /// A lane cache under `config`, optionally attached to a shared L2.
    #[must_use]
    pub fn new(config: &TableCacheConfig, l2: Option<Arc<TableTier>>) -> Self {
        Self {
            l1: Mutex::new(Lru::new(config.l1_entries, config.l1_bytes)),
            l2,
            swept: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The process-wide L2 tier `config` asks for (the sharded front
    /// builds one and attaches it to every lane).
    #[must_use]
    pub fn shared_tier(config: &TableCacheConfig) -> Arc<TableTier> {
        Arc::new(SharedTier::new(config.l2_shards, config.l2_entries, config.l2_bytes))
    }

    /// Attach (or replace) the shared L2 handle.
    pub fn attach_l2(&mut self, l2: Arc<TableTier>) {
        self.l2 = Some(l2);
    }

    /// Probe L1 then L2; an L2 hit is promoted into L1 so the lane's
    /// next probe stays local.
    #[must_use]
    pub fn lookup(&self, key: &TableKey) -> Option<Arc<SolveArtifact>> {
        if let Some(hit) = self.l1.lock().get(key) {
            return Some(Arc::clone(hit));
        }
        let from_l2 = self.l2.as_ref().and_then(|tier| tier.get(key))?;
        let bytes = from_l2.weight_bytes();
        self.l1.lock().insert(*key, Arc::clone(&from_l2), bytes);
        Some(from_l2)
    }

    /// Publish a freshly computed artifact to both tiers.
    pub fn insert(&self, key: TableKey, artifact: Arc<SolveArtifact>) {
        let bytes = artifact.weight_bytes();
        self.l1.lock().insert(key, Arc::clone(&artifact), bytes);
        if let Some(tier) = &self.l2 {
            tier.insert(key, artifact, bytes);
        }
    }

    /// Forecast-window rollover invalidation: drop every **L1** entry
    /// of a window before `window_secs`. Keys pin their window, so
    /// stale entries could never be *wrongly* hit — eviction reclaims
    /// their budget the moment this lane's virtual clock has provably
    /// passed them. Guarded to one sweep per window per lane (rollover
    /// events arrive once per session; sweeping on each would rescan
    /// the tier thousands of times per window).
    ///
    /// Deliberately L1-only: lanes advance their virtual clocks
    /// independently, so a lane racing ahead must not sweep the shared
    /// L2 out from under a lane still serving an older window — there,
    /// old-window entries simply age out of the LRU once nothing probes
    /// them.
    pub fn roll_window(&self, window_secs: u64) {
        use std::sync::atomic::Ordering;
        let prev = self.swept.load(Ordering::Relaxed);
        if window_secs > prev
            && self
                .swept
                .compare_exchange(prev, window_secs, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            self.l1.lock().evict_where(|k| k.window < window_secs);
        }
    }

    /// The L1 tier counters.
    #[must_use]
    pub fn l1_snapshot(&self) -> TierSnapshot {
        self.l1.lock().snapshot()
    }

    /// The attached L2's counters (whole tier, shared across lanes).
    #[must_use]
    pub fn l2_snapshot(&self) -> Option<TierSnapshot> {
        self.l2.as_ref().map(|tier| tier.snapshot())
    }

    /// This lane's metrics: its private L1 always, the shared L2 only
    /// for callers that own a single lane (the sharded front reports
    /// the L2 once itself — see [`crate::ShardedService`]).
    #[must_use]
    pub fn metrics(&self, include_l2: bool) -> CacheMetrics {
        let mut m = CacheMetrics::default();
        m.record("session.l1", self.l1_snapshot());
        if include_l2 {
            if let Some(snap) = self.l2_snapshot() {
                m.record("session.l2", snap);
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_types::{SimTime, TripId, VehicleId};
    use ecocharge_core::Weights;

    fn fixture_trip(id: u32) -> Trip {
        let graph = roadnet::urban_grid(&roadnet::UrbanGridParams::default());
        let trips = trajgen::generate_trips(
            &graph,
            &trajgen::BrinkhoffParams { trips: 1, ..Default::default() },
        );
        let mut trip = trips[0].clone();
        trip.id = TripId(id);
        trip
    }

    #[test]
    fn trip_digest_ignores_id_but_sees_shape() {
        let a = fixture_trip(1);
        let b = fixture_trip(2);
        assert_eq!(trip_digest(&a), trip_digest(&b), "clones of one route share a digest");
        let mut c = a.clone();
        c.vehicle = VehicleId(999);
        assert_ne!(trip_digest(&a), trip_digest(&c), "vehicle is part of the shape");
        let mut d = a.clone();
        d.depart = SimTime::from_secs(a.depart.as_secs() + 1);
        assert_ne!(trip_digest(&a), trip_digest(&d), "departure is part of the shape");
    }

    #[test]
    fn config_digest_sees_every_knob_it_claims_to() {
        let base = EcoChargeConfig::default();
        let same = EcoChargeConfig::default();
        assert_eq!(config_digest(&base), config_digest(&same));
        let k = EcoChargeConfig { k: base.k + 1, ..base };
        assert_ne!(config_digest(&base), config_digest(&k));
        let w = EcoChargeConfig { weights: Weights::new(0.9, 0.05, 0.05), ..base };
        assert_ne!(config_digest(&base), config_digest(&w));
        let p = EcoChargeConfig { pruning: ecocharge_core::PruningMode::Off, ..base };
        assert_ne!(config_digest(&base), config_digest(&p));
        let d = EcoChargeConfig { detour_backend: roadnet::DetourBackend::Dijkstra, ..base };
        assert_ne!(config_digest(&base), config_digest(&d));
    }

    #[test]
    fn l2_hits_promote_into_l1() {
        let config = TableCacheConfig::enabled();
        let tier = TableCache::shared_tier(&config);
        let a = TableCache::new(&config, Some(Arc::clone(&tier)));
        let b = TableCache::new(&config, Some(Arc::clone(&tier)));
        let key = TableKey { trip_digest: 7, stop_index: 0, config_hash: 9, window: 0 };
        let artifact = Arc::new(SolveArtifact {
            outcome: ArtifactOutcome::NoOffers,
            post: SolverSnapshot::default(),
        });
        a.insert(key, Arc::clone(&artifact));
        // b has never seen the key: first probe is an L1 miss answered
        // by the shared tier, second is a local L1 hit.
        assert!(b.lookup(&key).is_some());
        let l1 = b.l1_snapshot();
        assert_eq!((l1.hits, l1.misses), (0, 1));
        assert!(b.lookup(&key).is_some());
        assert_eq!(b.l1_snapshot().hits, 1);
        let l2 = b.l2_snapshot().unwrap();
        assert_eq!(l2.hits, 1, "exactly one probe reached the shared tier");
    }

    #[test]
    fn roll_window_evicts_only_older_windows() {
        let config = TableCacheConfig::enabled();
        let cache = TableCache::new(&config, None);
        let artifact = Arc::new(SolveArtifact {
            outcome: ArtifactOutcome::NoOffers,
            post: SolverSnapshot::default(),
        });
        for window in [0u64, 900, 1800] {
            let key = TableKey { trip_digest: 1, stop_index: 0, config_hash: 1, window };
            cache.insert(key, Arc::clone(&artifact));
        }
        cache.roll_window(1800);
        let old = TableKey { trip_digest: 1, stop_index: 0, config_hash: 1, window: 900 };
        let live = TableKey { trip_digest: 1, stop_index: 0, config_hash: 1, window: 1800 };
        assert!(cache.lookup(&old).is_none());
        assert!(cache.lookup(&live).is_some());
        assert_eq!(cache.l1_snapshot().evictions, 2);
    }

    #[test]
    fn default_config_is_disabled() {
        assert!(!TableCacheConfig::default().enabled);
        assert!(TableCacheConfig::enabled().enabled);
    }
}
