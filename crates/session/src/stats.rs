//! Service-wide counters.

use eis::ShareSnapshot;

/// Everything the serving layer counts, in one snapshot. The forecast
/// counters come from the [`eis::ForecastShare`] ledger the service
/// attaches to its InfoServer; the rest are maintained by
/// [`crate::SessionService`] as events execute.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Sessions admitted.
    pub registered: u64,
    /// Registration attempts refused (admission cap or duplicate trip).
    pub rejected: u64,
    /// Events executed, all kinds.
    pub events_executed: u64,
    /// Runnable events pushed past their tick by the backpressure
    /// budget (one count per event per deferring tick).
    pub events_deferred: u64,
    /// Solves whose ranking changed — tables pushed to drivers.
    pub tables_emitted: u64,
    /// Solves that repeated the previous ranking (heartbeats).
    pub heartbeats: u64,
    /// Solves that found no charger in range.
    pub no_offer_solves: u64,
    /// Sessions that retired at arrival.
    pub sessions_completed: u64,
    /// Sessions shed on a degraded InfoServer (or by worker-panic
    /// containment).
    pub sessions_shed: u64,
    /// Fresh-forecast hits inherited from *another* session.
    pub forecast_shared_hits: u64,
    /// Fresh-forecast hits on the session's own earlier work.
    pub forecast_self_hits: u64,
    /// Fresh-forecast hits with no session attribution on either side
    /// (standalone solves, or cells whose ownership predates a crash —
    /// recovery restores counters but not cell ownership).
    pub forecast_untagged_hits: u64,
    /// Fresh-forecast misses (upstream work paid for).
    pub forecast_misses: u64,
    /// Records appended to the write-ahead journal (0 when the service
    /// runs unjournaled).
    pub journal_records: u64,
    /// Snapshot files written on the journal cadence.
    pub snapshots_written: u64,
    /// Non-fatal journal-layer defects tolerated while serving (failed
    /// snapshot writes — serving degraded to journal-only). Fatal
    /// defects quarantine the service instead of counting here.
    pub journal_defects: u64,
    /// Sessions handed off to another shard (sharded serving only; a
    /// session crossing `n` shard boundaries counts `n` times).
    pub handoffs: u64,
}

impl SessionStats {
    /// Fold a ledger snapshot into the forecast counters.
    pub(crate) fn absorb_share(&mut self, share: ShareSnapshot) {
        self.forecast_shared_hits = share.shared_hits;
        self.forecast_self_hits = share.self_hits;
        self.forecast_untagged_hits = share.untagged_hits;
        self.forecast_misses = share.misses;
    }

    /// Fold another service's counters into this one — the cross-shard
    /// aggregation the sharded front uses to present fleet-wide totals.
    /// Every field adds **saturating**: a fleet of shards each pinned
    /// near `u64::MAX` by a long soak must aggregate to the pin, not
    /// wrap back through zero (a wrapped total silently corrupts every
    /// derived rate).
    pub fn absorb(&mut self, other: &SessionStats) {
        let Self {
            registered,
            rejected,
            events_executed,
            events_deferred,
            tables_emitted,
            heartbeats,
            no_offer_solves,
            sessions_completed,
            sessions_shed,
            forecast_shared_hits,
            forecast_self_hits,
            forecast_untagged_hits,
            forecast_misses,
            journal_records,
            snapshots_written,
            journal_defects,
            handoffs,
        } = self;
        // Destructured so adding a counter without aggregating it is a
        // compile error, not a silently-dropped column.
        *registered = registered.saturating_add(other.registered);
        *rejected = rejected.saturating_add(other.rejected);
        *events_executed = events_executed.saturating_add(other.events_executed);
        *events_deferred = events_deferred.saturating_add(other.events_deferred);
        *tables_emitted = tables_emitted.saturating_add(other.tables_emitted);
        *heartbeats = heartbeats.saturating_add(other.heartbeats);
        *no_offer_solves = no_offer_solves.saturating_add(other.no_offer_solves);
        *sessions_completed = sessions_completed.saturating_add(other.sessions_completed);
        *sessions_shed = sessions_shed.saturating_add(other.sessions_shed);
        *forecast_shared_hits = forecast_shared_hits.saturating_add(other.forecast_shared_hits);
        *forecast_self_hits = forecast_self_hits.saturating_add(other.forecast_self_hits);
        *forecast_untagged_hits =
            forecast_untagged_hits.saturating_add(other.forecast_untagged_hits);
        *forecast_misses = forecast_misses.saturating_add(other.forecast_misses);
        *journal_records = journal_records.saturating_add(other.journal_records);
        *snapshots_written = snapshots_written.saturating_add(other.snapshots_written);
        *journal_defects = journal_defects.saturating_add(other.journal_defects);
        *handoffs = handoffs.saturating_add(other.handoffs);
    }

    /// Fraction of attributed forecast reads answered by another
    /// session's work. Saturating arithmetic: counters pinned at
    /// `u64::MAX` by a long soak must not overflow the denominator.
    #[must_use]
    pub fn shared_hit_rate(&self) -> f64 {
        let total = self
            .forecast_shared_hits
            .saturating_add(self.forecast_self_hits)
            .saturating_add(self.forecast_misses);
        if total == 0 {
            0.0
        } else {
            self.forecast_shared_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_share_carries_untagged_hits() {
        let mut s = SessionStats::default();
        s.absorb_share(ShareSnapshot { shared_hits: 4, self_hits: 3, untagged_hits: 2, misses: 1 });
        assert_eq!(s.forecast_untagged_hits, 2);
        assert!((s.shared_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn absorb_adds_every_counter() {
        let mut a =
            SessionStats { registered: 1, events_executed: 10, handoffs: 2, ..Default::default() };
        let b = SessionStats {
            registered: 3,
            events_executed: 5,
            handoffs: 1,
            sessions_completed: 4,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.registered, 4);
        assert_eq!(a.events_executed, 15);
        assert_eq!(a.handoffs, 3);
        assert_eq!(a.sessions_completed, 4);
    }

    #[test]
    fn absorb_saturates_instead_of_wrapping() {
        // Two shards each one tick below the ceiling: the fleet total
        // must pin at u64::MAX, not wrap to small garbage.
        let near = SessionStats {
            registered: u64::MAX - 1,
            rejected: u64::MAX - 1,
            events_executed: u64::MAX - 1,
            events_deferred: u64::MAX - 1,
            tables_emitted: u64::MAX - 1,
            heartbeats: u64::MAX - 1,
            no_offer_solves: u64::MAX - 1,
            sessions_completed: u64::MAX - 1,
            sessions_shed: u64::MAX - 1,
            forecast_shared_hits: u64::MAX - 1,
            forecast_self_hits: u64::MAX - 1,
            forecast_untagged_hits: u64::MAX - 1,
            forecast_misses: u64::MAX - 1,
            journal_records: u64::MAX - 1,
            snapshots_written: u64::MAX - 1,
            journal_defects: u64::MAX - 1,
            handoffs: u64::MAX - 1,
        };
        let mut total = near;
        total.absorb(&near);
        assert_eq!(total.registered, u64::MAX);
        assert_eq!(total.handoffs, u64::MAX);
        assert_eq!(total.journal_defects, u64::MAX);
        let rate = total.shared_hit_rate();
        assert!(rate.is_finite() && (0.0..=1.0).contains(&rate));
    }

    #[test]
    fn shared_hit_rate_survives_pinned_counters() {
        // A ledger saturated by a long soak (see eis::share) pins all
        // four counters at u64::MAX; the derived rate must stay a sane
        // fraction instead of overflowing the sum.
        let mut s = SessionStats::default();
        s.absorb_share(ShareSnapshot {
            shared_hits: u64::MAX,
            self_hits: u64::MAX,
            untagged_hits: u64::MAX,
            misses: u64::MAX,
        });
        let rate = s.shared_hit_rate();
        assert!(rate.is_finite() && (0.0..=1.0).contains(&rate));
    }
}
