//! Service-wide counters.

use eis::ShareSnapshot;

/// Everything the serving layer counts, in one snapshot. The forecast
/// counters come from the [`eis::ForecastShare`] ledger the service
/// attaches to its InfoServer; the rest are maintained by
/// [`crate::SessionService`] as events execute.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Sessions admitted.
    pub registered: u64,
    /// Registration attempts refused (admission cap or duplicate trip).
    pub rejected: u64,
    /// Events executed, all kinds.
    pub events_executed: u64,
    /// Runnable events pushed past their tick by the backpressure
    /// budget (one count per event per deferring tick).
    pub events_deferred: u64,
    /// Solves whose ranking changed — tables pushed to drivers.
    pub tables_emitted: u64,
    /// Solves that repeated the previous ranking (heartbeats).
    pub heartbeats: u64,
    /// Solves that found no charger in range.
    pub no_offer_solves: u64,
    /// Sessions that retired at arrival.
    pub sessions_completed: u64,
    /// Sessions shed on a degraded InfoServer.
    pub sessions_shed: u64,
    /// Fresh-forecast hits inherited from *another* session.
    pub forecast_shared_hits: u64,
    /// Fresh-forecast hits on the session's own earlier work.
    pub forecast_self_hits: u64,
    /// Fresh-forecast misses (upstream work paid for).
    pub forecast_misses: u64,
}

impl SessionStats {
    /// Fold a ledger snapshot into the forecast counters.
    pub(crate) fn absorb_share(&mut self, share: ShareSnapshot) {
        self.forecast_shared_hits = share.shared_hits;
        self.forecast_self_hits = share.self_hits;
        self.forecast_misses = share.misses;
    }

    /// Fraction of forecast reads answered by another session's work.
    #[must_use]
    pub fn shared_hit_rate(&self) -> f64 {
        let total = self.forecast_shared_hits + self.forecast_self_hits + self.forecast_misses;
        if total == 0 {
            0.0
        } else {
            self.forecast_shared_hits as f64 / total as f64
        }
    }
}
