//! Per-session lifecycle and the precomputed event itinerary.
//!
//! A session is one trip served end-to-end: **register** (segment the
//! trip, precompute every event the trip will ever need) → **advance**
//! (execute itinerary stops in order: segment-boundary re-ranks,
//! forecast-window rollovers, cache adaptations) → **retire** at
//! arrival. Because trips are scheduled (§II-A: the route is known), the
//! whole itinerary is a pure function of `(trip, config)` computed at
//! registration — there is nothing event execution can discover that
//! would change *which* events exist, which is what lets the scheduler
//! promise one total order up front.

use crate::cache::{trip_digest, ArtifactOutcome, SolveArtifact, TableCache, TableKey};
use crate::scheduler::{Event, EventKind};
use ec_types::{ChargerId, EcError, SessionId, SimDuration, SimTime};
use ecocharge_core::{CknnQuery, EcoCharge, OfferingTable, QueryCtx};
use std::fmt;
use std::sync::Arc;
use trajgen::Trip;

/// One precomputed itinerary stop: the virtual instant, trip offset and
/// kind of one future event of this session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannedStop {
    /// What happens.
    pub kind: EventKind,
    /// When (virtual time).
    pub time: SimTime,
    /// Where along the trip, metres.
    pub offset_m: f64,
}

/// Precompute a trip's full event itinerary:
///
/// * a [`EventKind::Rerank`] at every split point of the CkNN split list
///   (offset and free-flow ETA straight from [`CknnQuery`]);
/// * a [`EventKind::Rollover`] at every 15-minute forecast-window
///   boundary ([`eis::forecast_window`] grid) strictly inside the trip;
/// * an [`EventKind::Adapt`] every `adapt_every` (skipped when another
///   stop already lands on the same second; `SimDuration::ZERO`
///   disables the cadence);
/// * one [`EventKind::Retire`] at arrival.
///
/// Stops are sorted by `(time, kind)`; offsets for time-driven stops
/// come from the deterministic inverse ETA ([`Trip::offset_at_time`]).
///
/// # Errors
/// Propagates trip-segmentation failures from [`CknnQuery::new`].
pub fn build_itinerary(
    ctx: &QueryCtx<'_>,
    trip: &Trip,
    adapt_every: SimDuration,
) -> Result<Vec<PlannedStop>, EcError> {
    let query = CknnQuery::new(ctx, trip)?;
    let mut stops: Vec<PlannedStop> = query
        .split_points()
        .iter()
        .map(|sp| PlannedStop { kind: EventKind::Rerank, time: sp.eta, offset_m: sp.offset_m })
        .collect();
    let arrival = trip.arrival(ctx.graph);

    let mut window = eis::forecast_window(trip.depart) + eis::FORECAST_TTL;
    while window < arrival {
        if window > trip.depart {
            stops.push(PlannedStop {
                kind: EventKind::Rollover,
                time: window,
                offset_m: trip.offset_at_time(ctx.graph, window),
            });
        }
        window = window + eis::FORECAST_TTL;
    }

    if adapt_every > SimDuration::ZERO {
        let taken: std::collections::HashSet<u64> =
            stops.iter().map(|s| s.time.as_secs()).collect();
        let mut t = trip.depart + adapt_every;
        while t < arrival {
            if !taken.contains(&t.as_secs()) {
                stops.push(PlannedStop {
                    kind: EventKind::Adapt,
                    time: t,
                    offset_m: trip.offset_at_time(ctx.graph, t),
                });
            }
            t = t + adapt_every;
        }
    }

    stops.push(PlannedStop { kind: EventKind::Retire, time: arrival, offset_m: trip.length_m() });
    stops.sort_by_key(|s| (s.time, s.kind));
    Ok(stops)
}

/// Where a session is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionPhase {
    /// Events remain in its itinerary.
    Active,
    /// Retired at arrival; its solve record is complete.
    Completed,
    /// Shed by the service (degraded InfoServer); `shed_reason` carries
    /// the provenance.
    Shed,
}

/// One solve the session performed, with the exact inputs that produced
/// it — the replay record the identity tests (and any audit) use to
/// reproduce the table on a standalone [`EcoCharge`].
#[derive(Debug, Clone, PartialEq)]
pub struct SolvedTable {
    /// Which event asked for it.
    pub kind: EventKind,
    /// Virtual solve instant.
    pub time: SimTime,
    /// Trip offset, metres.
    pub offset_m: f64,
    /// The Offering Table.
    pub table: OfferingTable,
    /// True when the ranking changed against the session's previous
    /// solve (a table push to the driver); false for heartbeats.
    pub emitted: bool,
}

/// What executing one event observed.
#[derive(Debug)]
pub enum SolveOutcome {
    /// A table was produced; `emitted` as in [`SolvedTable`].
    Table {
        /// Ranking changed vs the previous solve.
        emitted: bool,
    },
    /// No chargers in range at this stop.
    NoOffers,
    /// The session retired (trip complete).
    Retired,
    /// The session left this shard at a [`EventKind::Handoff`] stop; the
    /// service extracts it for delivery to the destination shard. Only
    /// sharded itineraries produce this.
    HandedOff,
    /// The solve failed (provider/config error) — the service decides
    /// between shedding the session and propagating.
    Failed(EcError),
}

/// Why a session was shed, in typed form: a stable error code from the
/// taxonomy (`crate::error`) plus the human-facing provenance detail
/// (breaker states, stale tier). Alert on `code`; read `detail`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShedReason {
    /// Stable code of the underlying failure: the failing solve's
    /// [`EcError::code`], or `SES-004` when a worker panic shed the
    /// whole batch.
    pub code: String,
    /// Human provenance: the error text plus whatever the InfoServer's
    /// resilience layer knew at shed time.
    pub detail: String,
}

impl fmt::Display for ShedReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.code, self.detail)
    }
}

/// One registered session: the trip, its private ranking state (own
/// Dynamic Cache and search engine — never shared across sessions), the
/// precomputed itinerary and the cursor into it, and the full solve
/// record.
#[derive(Debug)]
pub struct SessionState {
    /// Stable id (the trip's id — registration-order independent).
    pub id: SessionId,
    /// The trip being served.
    pub trip: Trip,
    method: EcoCharge,
    itinerary: Vec<PlannedStop>,
    next_stop: usize,
    last_ranking: Option<Vec<ChargerId>>,
    /// Lifecycle phase.
    pub phase: SessionPhase,
    /// Every solve, in execution order. After crash recovery this holds
    /// only post-recovery solves (tables are not journaled; the journal
    /// records outcomes, not payloads).
    pub solves: Vec<SolvedTable>,
    /// Why the session was shed, when it was.
    pub shed_reason: Option<ShedReason>,
}

/// The pieces [`SessionState::restore`] rebuilds a session from — what a
/// snapshot stores (plus the deterministically recomputed itinerary).
#[derive(Debug)]
pub struct SessionRestore {
    /// Stable id.
    pub id: SessionId,
    /// The trip, rebuilt from journaled route node ids.
    pub trip: Trip,
    /// The itinerary, recomputed via [`build_itinerary`] (pure in
    /// `(trip, config)`, so recomputing reproduces the original exactly).
    pub itinerary: Vec<PlannedStop>,
    /// Cursor: stops before this index already executed pre-crash.
    pub next_stop: usize,
    /// The last ranking shown to the driver (drives `emitted` flags of
    /// post-recovery solves, so it must be restored exactly).
    pub last_ranking: Option<Vec<ChargerId>>,
    /// Lifecycle phase at snapshot time.
    pub phase: SessionPhase,
    /// Shed provenance, when phase is [`SessionPhase::Shed`].
    pub shed_reason: Option<ShedReason>,
    /// The solver with its Dynamic Cache restored bit-exactly (adapted
    /// solves reuse cached components — value-bearing state).
    pub solver: EcoCharge,
}

impl SessionState {
    /// A freshly admitted session.
    #[must_use]
    pub fn new(id: SessionId, trip: Trip, itinerary: Vec<PlannedStop>) -> Self {
        Self {
            id,
            trip,
            method: EcoCharge::new(),
            itinerary,
            next_stop: 0,
            last_ranking: None,
            phase: SessionPhase::Active,
            solves: Vec::new(),
            shed_reason: None,
        }
    }

    /// Rebuild a session from crash-recovery state. The inverse of the
    /// snapshot image: everything value-bearing is restored exactly; the
    /// solve record restarts empty (see [`SessionState::solves`]).
    #[must_use]
    pub fn restore(parts: SessionRestore) -> Self {
        Self {
            id: parts.id,
            trip: parts.trip,
            method: parts.solver,
            itinerary: parts.itinerary,
            next_stop: parts.next_stop,
            last_ranking: parts.last_ranking,
            phase: parts.phase,
            solves: Vec::new(),
            shed_reason: parts.shed_reason,
        }
    }

    /// The precomputed itinerary.
    #[must_use]
    pub fn itinerary(&self) -> &[PlannedStop] {
        &self.itinerary
    }

    /// Index of the next unexecuted itinerary stop (== number of events
    /// already executed for this session).
    #[must_use]
    pub const fn next_stop(&self) -> usize {
        self.next_stop
    }

    /// The session's solver — read by the journal when snapshotting (the
    /// Dynamic Cache inside is value-bearing state).
    #[must_use]
    pub const fn solver(&self) -> &EcoCharge {
        &self.method
    }

    /// Index one past the first [`EventKind::Handoff`] at or after
    /// `from` — the **local-prefix horizon**. A scheduler only ever holds
    /// a session's stops up to (and including) its next departure: the
    /// stops beyond it belong to another shard's scheduler and are pushed
    /// there by `adopt_session` when the hand-off is delivered. Pushing
    /// past the horizon would leave stale duplicates in the origin shard's
    /// heap when a trip later re-enters it (A→B→A). Unsharded itineraries
    /// have no Handoff stops, so the horizon is the itinerary end and
    /// this is a no-op.
    fn event_horizon(&self, from: usize) -> usize {
        self.itinerary
            .get(from..)
            .unwrap_or(&[])
            .iter()
            .position(|s| s.kind == EventKind::Handoff)
            .map_or(self.itinerary.len(), |i| from + i + 1)
    }

    /// Every itinerary stop up to the local-prefix horizon as a
    /// schedulable event, in itinerary order. The service queues all of
    /// them at registration — the heap then holds the session's complete
    /// local future, so its pop order *is* the shard's total order. (For
    /// unsharded itineraries the horizon is the whole itinerary.)
    pub fn planned_events(&self) -> impl Iterator<Item = Event> + '_ {
        self.itinerary[..self.event_horizon(0)].iter().map(|s| Event {
            time: s.time,
            session: self.id,
            kind: s.kind,
            offset_m: s.offset_m,
        })
    }

    /// The not-yet-executed tail of the itinerary — up to the next
    /// local-prefix horizon — as schedulable events: what recovery
    /// re-queues for a restored active session, and what `adopt_session`
    /// queues when a hand-off arrives (the heap then holds the session's
    /// complete remaining local future, exactly as if the executed prefix
    /// had run in this scheduler).
    pub fn pending_events(&self) -> impl Iterator<Item = Event> + '_ {
        self.itinerary[self.next_stop.min(self.itinerary.len())..self.event_horizon(self.next_stop)]
            .iter()
            .map(|s| Event { time: s.time, session: self.id, kind: s.kind, offset_m: s.offset_m })
    }

    /// The next unexecuted stop, if the session is still active —
    /// the sequencing check [`SessionState::execute`] asserts against.
    #[must_use]
    pub fn next_event(&self) -> Option<Event> {
        if self.phase != SessionPhase::Active {
            return None;
        }
        self.itinerary.get(self.next_stop).map(|s| Event {
            time: s.time,
            session: self.id,
            kind: s.kind,
            offset_m: s.offset_m,
        })
    }

    /// Execute `event` (which must be this session's current stop):
    /// advance the cursor and, for solve events, run one re-rank of
    /// Algorithm 1 at the stop's `(offset, time)` against the session's
    /// private Dynamic Cache.
    pub fn execute(&mut self, ctx: &QueryCtx<'_>, event: &Event) -> SolveOutcome {
        debug_assert_eq!(Some(event.key()), self.next_event().map(|e| e.key()));
        self.next_stop += 1;
        if event.kind == EventKind::Retire {
            self.phase = SessionPhase::Completed;
            return SolveOutcome::Retired;
        }
        if event.kind == EventKind::Handoff {
            // No solve: the stop only marks the departure point. The
            // session object (solver cache, cursor, ranking — everything)
            // travels to the destination shard as-is.
            return SolveOutcome::HandedOff;
        }
        match self.method.rerank(ctx, &self.trip, event.offset_m, event.time) {
            Ok(table) => {
                let ranking = table.charger_ids();
                let emitted = self.last_ranking.as_deref() != Some(&ranking[..]);
                if emitted {
                    self.last_ranking = Some(ranking);
                }
                self.solves.push(SolvedTable {
                    kind: event.kind,
                    time: event.time,
                    offset_m: event.offset_m,
                    table,
                    emitted,
                });
                SolveOutcome::Table { emitted }
            }
            Err(EcError::NoCandidates) => {
                self.last_ranking = None;
                SolveOutcome::NoOffers
            }
            Err(e) => SolveOutcome::Failed(e),
        }
    }

    /// [`SessionState::execute`] through the tiered Offering-Table
    /// cache (see [`crate::cache`]). Only solve events are keyed;
    /// `Retire`/`Handoff` stops delegate unchanged. A hit advances the
    /// cursor, restores the cached absolute post-solve solver snapshot,
    /// and replays the outcome against this session's *own* ranking
    /// history (`emitted` is per-driver state, never cached). A miss
    /// runs the normal path and publishes the artifact — unless the
    /// solve failed, which must re-observe the server every time.
    ///
    /// The caller is responsible for only passing a cache under the
    /// purity gate (model-backed forecasts, no stale tier, no
    /// resilience) — the same precondition batch parallelism has.
    pub fn execute_cached(
        &mut self,
        ctx: &QueryCtx<'_>,
        event: &Event,
        cache: &TableCache,
        config_hash: u64,
    ) -> SolveOutcome {
        if event.kind == EventKind::Retire || event.kind == EventKind::Handoff {
            return self.execute(ctx, event);
        }
        let key = TableKey::of(trip_digest(&self.trip), self.next_stop, config_hash, event);
        if event.kind == EventKind::Rollover {
            cache.roll_window(key.window);
        }
        if let Some(artifact) = cache.lookup(&key) {
            debug_assert_eq!(Some(event.key()), self.next_event().map(|e| e.key()));
            self.next_stop += 1;
            self.method.restore_snapshot(&artifact.post);
            return match &artifact.outcome {
                ArtifactOutcome::Table(table) => {
                    let ranking = table.charger_ids();
                    let emitted = self.last_ranking.as_deref() != Some(&ranking[..]);
                    if emitted {
                        self.last_ranking = Some(ranking);
                    }
                    self.solves.push(SolvedTable {
                        kind: event.kind,
                        time: event.time,
                        offset_m: event.offset_m,
                        table: table.clone(),
                        emitted,
                    });
                    SolveOutcome::Table { emitted }
                }
                ArtifactOutcome::NoOffers => {
                    self.last_ranking = None;
                    SolveOutcome::NoOffers
                }
            };
        }
        let outcome = self.execute(ctx, event);
        let cached_outcome = match &outcome {
            SolveOutcome::Table { .. } => Some(ArtifactOutcome::Table(
                self.solves.last().expect("a Table outcome pushes a solve").table.clone(),
            )),
            SolveOutcome::NoOffers => Some(ArtifactOutcome::NoOffers),
            _ => None,
        };
        if let Some(cached) = cached_outcome {
            cache.insert(
                key,
                Arc::new(SolveArtifact { outcome: cached, post: self.method.snapshot() }),
            );
        }
        outcome
    }

    /// Mark the session shed with its typed provenance.
    pub fn shed(&mut self, reason: ShedReason) {
        self.phase = SessionPhase::Shed;
        self.shed_reason = Some(reason);
    }

    /// The session's Dynamic-Cache `(hits, misses)`.
    #[must_use]
    pub fn cache_stats(&self) -> (u64, u64) {
        self.method.cache_stats()
    }

    /// The latest ranking shown to this session's driver.
    #[must_use]
    pub fn current_ranking(&self) -> Option<&[ChargerId]> {
        self.last_ranking.as_deref()
    }
}
