//! # `ecocharge-session` — the fleet-scale serving layer.
//!
//! Every crate below this one makes a *single* trip's CkNN-EC solve fast
//! or robust. This crate is the layer the ROADMAP's "heavy traffic from
//! millions of users" needs above that: a multi-tenant continuous-query
//! service that owns N concurrent trips end-to-end and multiplexes their
//! work instead of looping over them.
//!
//! * [`registry`] — per-session lifecycle (register trip → segment →
//!   re-rank → advance → retire) with the session's full solve record;
//! * [`scheduler`] — the deterministic virtual-time event scheduler: a
//!   binary-heap queue keyed `(event_time, session_id, event_kind)`
//!   interleaving segment-boundary re-ranks, 15-minute forecast-window
//!   rollovers and Dynamic-Cache adaptations across all sessions in one
//!   total order;
//! * [`service`] — [`SessionService`]: admission control, batched event
//!   execution fanned out through `ec-exec` (bit-identical Offering
//!   Tables at any thread count), bounded per-tick event budgets with
//!   deterministic overflow deferral, and graceful session shedding when
//!   the InfoServer is degraded;
//! * [`stats`] — [`SessionStats`], the service-wide counters including
//!   the cross-session forecast-sharing hit rates measured by
//!   [`eis::ForecastShare`].
//!
//! ## The determinism argument
//!
//! The service promises: *for every trip, the sequence of Offering
//! Tables produced through the service is bit-identical to replaying the
//! same `(offset, time)` solves through a standalone
//! [`ecocharge_core::EcoCharge`] on a fresh server — at any thread
//! count, any batch budget, any registration order.* Three properties
//! carry it:
//!
//! 1. **The heap holds the whole future.** Every event a session will
//!    ever need is queued at registration, so the heap's pop order *is*
//!    the global `(time, session, kind)` total order — independent of
//!    tick budget and thread count. A batch is a prefix of that order
//!    capped at one event per session, so batch items touch disjoint
//!    mutable state (`ec_exec::parallel_map_mut` cannot reorder anything
//!    a session observes) and each session's events execute strictly in
//!    itinerary order.
//! 2. **Virtual times never bend.** An event's `(offset_m, time)` come
//!    from the trip's precomputed itinerary; backpressure defers *real*
//!    execution to a later tick but never rewrites the virtual instant a
//!    solve is evaluated at.
//! 3. **Forecast purity per window.** For model-backed servers a
//!    forecast is a pure function of `(feed key, forecast window)`
//!    ([`eis::forecast_window`]), so whichever session warms a cache
//!    cell, every later reader gets byte-identical values — sharing
//!    changes cost, never answers. Against servers without that
//!    guarantee the service falls back to sequential batch execution.

pub mod registry;
pub mod scheduler;
pub mod service;
pub mod stats;

pub use registry::{
    build_itinerary, PlannedStop, SessionPhase, SessionState, SolveOutcome, SolvedTable,
};
pub use scheduler::{Batch, Event, EventKind, EventScheduler};
pub use service::{RegisterError, ServiceConfig, SessionService};
pub use stats::SessionStats;
