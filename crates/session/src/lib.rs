//! # `ecocharge-session` — the fleet-scale serving layer.
//!
//! Every crate below this one makes a *single* trip's CkNN-EC solve fast
//! or robust. This crate is the layer the ROADMAP's "heavy traffic from
//! millions of users" needs above that: a multi-tenant continuous-query
//! service that owns N concurrent trips end-to-end and multiplexes their
//! work instead of looping over them.
//!
//! * [`cache`] — the tiered Offering-Table cache: a per-lane L1 LRU of
//!   rendered solves plus an optional shared-process L2 tier, keyed so
//!   sessions sharing a trip shape replay each other's solves with
//!   bit-identical results (cache on/off is sweep-tested);
//! * [`registry`] — per-session lifecycle (register trip → segment →
//!   re-rank → advance → retire) with the session's full solve record;
//! * [`scheduler`] — the deterministic virtual-time event scheduler: a
//!   binary-heap queue keyed `(event_time, session_id, event_kind)`
//!   interleaving segment-boundary re-ranks, 15-minute forecast-window
//!   rollovers and Dynamic-Cache adaptations across all sessions in one
//!   total order;
//! * [`service`] — [`SessionService`]: admission control, batched event
//!   execution fanned out through `ec-exec` (bit-identical Offering
//!   Tables at any thread count), bounded per-tick event budgets with
//!   deterministic overflow deferral, and graceful session shedding when
//!   the InfoServer is degraded;
//! * [`stats`] — [`SessionStats`], the service-wide counters including
//!   the cross-session forecast-sharing hit rates measured by
//!   [`eis::ForecastShare`];
//! * [`error`] — the unified error taxonomy: every failure the serving
//!   stack can surface, as typed variants with stable codes (`SES-*`,
//!   `JRN-*`, `REC-*` here; `EC-*` from the core);
//! * [`journal`] — the write-ahead event journal: committed transitions
//!   in a compact, versioned, checksummed binary log with periodic
//!   whole-service snapshots;
//! * [`recovery`] — crash recovery: newest usable snapshot + journal
//!   tail replay, verified record-by-record against what the journal
//!   says happened;
//! * [`shard`] — geographic sharding: [`ShardedService`] partitions the
//!   world into balanced quadtree tiles, runs one serving stack per
//!   shard with deterministic cross-shard session hand-off, and
//!   federates the per-shard forecast ledgers with a pure CRDT join —
//!   bit-identical Offering Tables at any shard count.
//!
//! ## Crash safety
//!
//! A journaled service ([`SessionService::with_journal`]) appends every
//! committed transition — admissions and executed batches — to the
//! write-ahead journal *before* acknowledging it, and snapshots the
//! full service image (registry, cursors, per-session Dynamic Caches,
//! forecast-share ledger) on a tick cadence. After a crash,
//! [`recovery::recover`] rebuilds the service from the newest usable
//! snapshot and re-executes the journal tail with the original batch
//! boundaries; because execution is deterministic (below), the replayed
//! events, outcomes and Offering Tables are **bit-identical** to the
//! uninterrupted run — and the replay *verifies* that, record by
//! record, failing loudly ([`error::RecoveryError::ReplayDivergence`])
//! rather than diverging silently.
//!
//! Faults degrade, they do not cascade: a refused journal append or a
//! worker panic **quarantines** the service (reads keep answering,
//! mutations return typed errors, nothing panics outward); a failed
//! snapshot write degrades to journal-only operation; a torn journal
//! tail or corrupt snapshot file is healed or skipped by recovery.
//!
//! ## The determinism argument
//!
//! The service promises: *for every trip, the sequence of Offering
//! Tables produced through the service is bit-identical to replaying the
//! same `(offset, time)` solves through a standalone
//! [`ecocharge_core::EcoCharge`] on a fresh server — at any thread
//! count, any batch budget, any registration order.* Three properties
//! carry it:
//!
//! 1. **The heap holds the whole future.** Every event a session will
//!    ever need is queued at registration, so the heap's pop order *is*
//!    the global `(time, session, kind)` total order — independent of
//!    tick budget and thread count. A batch is a prefix of that order
//!    capped at one event per session, so batch items touch disjoint
//!    mutable state (`ec_exec::parallel_map_mut` cannot reorder anything
//!    a session observes) and each session's events execute strictly in
//!    itinerary order.
//! 2. **Virtual times never bend.** An event's `(offset_m, time)` come
//!    from the trip's precomputed itinerary; backpressure defers *real*
//!    execution to a later tick but never rewrites the virtual instant a
//!    solve is evaluated at.
//! 3. **Forecast purity per window.** For model-backed servers a
//!    forecast is a pure function of `(feed key, forecast window)`
//!    ([`eis::forecast_window`]), so whichever session warms a cache
//!    cell, every later reader gets byte-identical values — sharing
//!    changes cost, never answers. Against servers without that
//!    guarantee the service falls back to sequential batch execution.

pub mod cache;
pub mod error;
pub mod journal;
pub mod recovery;
pub mod registry;
pub mod scheduler;
pub mod service;
pub mod shard;
pub mod stats;

pub use cache::{
    config_digest, trip_digest, ArtifactOutcome, SolveArtifact, TableCache, TableCacheConfig,
    TableKey, TableTier,
};
pub use error::{JournalError, RecoveryError, RegisterError, SessionError};
pub use journal::{
    read_journal, CommitEntry, Journal, JournalConfig, JournalRead, OutcomeTag, Record,
    ServiceImage, SessionImage, SinkChaos,
};
pub use recovery::{recover, RecoveryReport};
pub use registry::{
    build_itinerary, PlannedStop, SessionPhase, SessionState, ShedReason, SolveOutcome, SolvedTable,
};
pub use scheduler::{Batch, Event, EventKind, EventScheduler};
pub use service::{ServiceChaos, ServiceConfig, ServiceHealth, SessionService};
pub use shard::{
    build_sharded_itinerary, recover_sharded, ShardConfig, ShardEnv, ShardPlan, ShardedService,
};
pub use stats::SessionStats;
