//! The multi-tenant session service.
//!
//! [`SessionService`] owns the registry, the scheduler and the batched
//! execution loop:
//!
//! * **admission** — a hard session cap and one-live-session-per-trip
//!   keying (so session ids — hence the scheduler's total order — do not
//!   depend on registration order);
//! * **ticks** — every session's whole itinerary is queued at
//!   registration, so the heap's pop order *is* the global total order;
//!   each [`SessionService::tick`] pops one bounded batch — a prefix of
//!   that order holding at most one event per session (enforced by
//!   [`EventScheduler::pop_batch`]) — and fans it out through
//!   [`ec_exec::parallel_map_mut`]; distinct sessions means parallel
//!   execution touches disjoint mutable state, and the per-session cap
//!   means a session's events execute strictly in itinerary order;
//! * **backpressure** — events due beyond the per-tick budget stay
//!   queued (counted in [`SessionStats::events_deferred`]); their
//!   virtual times are never rewritten, so deferral delays wall-clock
//!   latency only, never changes a table;
//! * **shedding** — when a solve fails against a degraded InfoServer,
//!   the session is retired gracefully with a typed [`ShedReason`]
//!   (stable error code + `eis` provenance) instead of poisoning the
//!   tick;
//! * **journaling** — with [`SessionService::with_journal`], every
//!   committed transition (admission, executed batch) is appended to the
//!   write-ahead journal before the next tick may run, and the full
//!   service image is snapshotted on a tick cadence — the basis of crash
//!   recovery ([`crate::recovery`]);
//! * **containment** — a journal append failure or a worker panic
//!   mid-batch **quarantines** the service: mutations return typed
//!   errors ([`SessionError::Quarantined`]) while reads (sessions,
//!   stats, event log) keep answering. A quarantined service never
//!   panics outward and never executes another event — the journal on
//!   disk stays the source of truth for recovery.

use crate::cache::{config_digest, TableCache, TableCacheConfig};
use crate::error::{JournalError, RegisterError, SessionError};
use crate::journal::{
    write_snapshot, CacheImage, CommitEntry, Journal, JournalConfig, OutcomeTag, Record,
    ServiceImage, SessionImage,
};
use crate::registry::{
    build_itinerary, PlannedStop, SessionPhase, SessionState, ShedReason, SolveOutcome,
};
use crate::scheduler::{Event, EventScheduler};
use crate::stats::SessionStats;
use ec_types::{EcError, SessionId, SimDuration, SimTime};
use ecocharge_core::QueryCtx;
use eis::{FeedKind, ForecastShare, InfoServer, SessionScope};
use servecache::CacheMetrics;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Fault injection for the service-level chaos harness. Deterministic
/// (keyed on the global event index), so chaos runs are replayable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceChaos {
    /// Panic inside the worker executing the event with this 0-based
    /// global index (the Nth event the service executes). Exercises the
    /// worker-panic containment path: batch shed, service quarantined,
    /// no panic escapes [`SessionService::tick`].
    pub panic_at_event: Option<u64>,
}

/// Serving-layer knobs (the per-trip ranking knobs stay on
/// [`ecocharge_core::EcoChargeConfig`]).
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Admission cap: concurrent *active* sessions.
    pub max_sessions: usize,
    /// Backpressure budget: events executed per tick (min 1).
    pub events_per_tick: usize,
    /// Mid-segment Dynamic-Cache adaptation cadence
    /// (`SimDuration::ZERO` disables the extra events; segment re-ranks
    /// and rollovers still run).
    pub adapt_every: SimDuration,
    /// Shed a session whose solve fails (degraded InfoServer) instead of
    /// failing the tick.
    pub shed_degraded: bool,
    /// Worker threads for batch fan-out. Sessions are the unit of
    /// parallelism; each solve runs single-threaded inside its session
    /// scope so forecast reads stay attributed (see [`eis::share`]).
    pub threads: usize,
    /// Injected faults (chaos harness); default = none.
    pub chaos: ServiceChaos,
    /// Tiered Offering-Table caching (L1 per lane, optional shared L2 —
    /// see [`crate::cache`]). Default **off**; when on it engages only
    /// under the purity gate batch parallelism already requires, and
    /// cached solves are bit-identical to uncached ones.
    pub table_cache: TableCacheConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            max_sessions: 10_000,
            events_per_tick: 64,
            adapt_every: SimDuration::from_mins(5),
            shed_degraded: true,
            threads: 1,
            chaos: ServiceChaos::default(),
            table_cache: TableCacheConfig::default(),
        }
    }
}

/// Whether the service is serving or has contained a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceHealth {
    /// Normal operation.
    Serving,
    /// A fault was contained: the service is read-only. `cause` is the
    /// stable code of the triggering failure (e.g. `JRN-007` for a
    /// refused journal append, `SES-004` for a worker panic).
    Quarantined {
        /// Stable code of the failure that triggered the quarantine.
        cause: &'static str,
    },
}

/// The fleet-scale serving layer (see the module docs).
#[derive(Debug)]
pub struct SessionService {
    config: ServiceConfig,
    scheduler: EventScheduler,
    slots: Vec<Option<SessionState>>,
    index: BTreeMap<SessionId, usize>,
    active: usize,
    stats: SessionStats,
    event_log: Vec<Event>,
    latencies_us: Vec<f64>,
    share: Option<Arc<ForecastShare>>,
    journal: Option<Journal>,
    health: ServiceHealth,
    last_defect: Option<JournalError>,
    /// Tick batch buffer, reused across ticks (with the scheduler's own
    /// lookahead scratch this makes the warmed pop path allocation-free).
    batch_scratch: Vec<Event>,
    /// The lane's tiered Offering-Table cache, when
    /// [`ServiceConfig::table_cache`] enables it.
    table_cache: Option<TableCache>,
    /// Sessions that executed a [`crate::EventKind::Handoff`] stop this
    /// tick and left the registry — the sharded front collects them via
    /// [`SessionService::take_departures`] and delivers each to its
    /// destination shard. Always empty in unsharded serving.
    departures: Vec<SessionState>,
}

impl SessionService {
    /// An empty, unjournaled service.
    #[must_use]
    pub fn new(config: ServiceConfig) -> Self {
        Self {
            config,
            scheduler: EventScheduler::new(),
            slots: Vec::new(),
            index: BTreeMap::new(),
            active: 0,
            stats: SessionStats::default(),
            event_log: Vec::new(),
            latencies_us: Vec::new(),
            share: None,
            journal: None,
            health: ServiceHealth::Serving,
            last_defect: None,
            batch_scratch: Vec::new(),
            table_cache: config
                .table_cache
                .enabled
                .then(|| TableCache::new(&config.table_cache, None)),
            departures: Vec::new(),
        }
    }

    /// An empty service writing a fresh write-ahead journal (truncating
    /// any previous one in the journal directory).
    ///
    /// # Errors
    /// [`SessionError::Journal`] when the journal cannot be created.
    pub fn with_journal(
        config: ServiceConfig,
        journal: JournalConfig,
    ) -> Result<Self, SessionError> {
        let journal = Journal::create(journal, config.adapt_every)?;
        let mut svc = Self::new(config);
        svc.journal = Some(journal);
        Ok(svc)
    }

    /// Rebuild a service skeleton from recovered sessions — the recovery
    /// module's constructor. Queues every active session's remaining
    /// itinerary; the caller then replays the journal tail on top.
    pub(crate) fn from_recovery(
        config: ServiceConfig,
        stats: SessionStats,
        states: Vec<SessionState>,
    ) -> Self {
        let mut svc = Self::new(config);
        svc.stats = stats;
        for state in states {
            if state.phase == SessionPhase::Active {
                for event in state.pending_events() {
                    svc.scheduler.push(event);
                }
                svc.active += 1;
            }
            let id = state.id;
            let slot = svc.slots.len();
            svc.slots.push(Some(state));
            svc.index.insert(id, slot);
        }
        svc
    }

    /// Attach the forecast-share ledger (recovery path; the normal path
    /// attaches lazily at first registration).
    pub(crate) fn attach_share(&mut self, share: Arc<ForecastShare>) {
        self.share = Some(share);
    }

    /// Attach an open journal for post-recovery appends.
    pub(crate) fn attach_journal(&mut self, journal: Journal) {
        self.journal = Some(journal);
    }

    /// Attach the process-wide shared L2 table tier (sharded front).
    /// No-op when table caching is disabled.
    pub(crate) fn attach_table_l2(&mut self, tier: Arc<crate::cache::TableTier>) {
        if let Some(cache) = &mut self.table_cache {
            cache.attach_l2(tier);
        }
    }

    /// The lane's table cache, when enabled.
    #[must_use]
    pub fn table_cache(&self) -> Option<&TableCache> {
        self.table_cache.as_ref()
    }

    /// Unified cache metrics for this lane's table-cache tiers
    /// (`session.l1`, and `session.l2` when a shared tier is attached).
    /// Counters are observational — which concurrent solve wins an
    /// insert race is wall-clock dependent — which is why they live
    /// here and not in [`SessionStats`].
    #[must_use]
    pub fn cache_metrics(&self) -> CacheMetrics {
        self.table_cache.as_ref().map(|c| c.metrics(true)).unwrap_or_default()
    }

    /// The configuration in force.
    #[must_use]
    pub const fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Serving or quarantined.
    #[must_use]
    pub const fn health(&self) -> ServiceHealth {
        self.health
    }

    /// The last *non-fatal* journal-layer defect tolerated while serving
    /// (a failed snapshot write — see [`SessionStats::journal_defects`]).
    #[must_use]
    pub const fn last_journal_defect(&self) -> Option<&JournalError> {
        self.last_defect.as_ref()
    }

    fn quarantine(&mut self, cause: &'static str) {
        self.health = ServiceHealth::Quarantined { cause };
    }

    /// Admit `trip` as a session: segment it, precompute its itinerary
    /// and queue every event of it. The session id is the trip id, so
    /// the scheduler's total order is invariant under registration
    /// order. Journaled services write the `Register` record **before**
    /// mutating the registry — an admission that is not durable does not
    /// happen.
    ///
    /// # Errors
    /// [`RegisterError::Full`] at the admission cap,
    /// [`RegisterError::Duplicate`] for an already-served trip,
    /// [`RegisterError::Planning`] when segmentation fails,
    /// [`RegisterError::Journal`] when the WAL refused the record (the
    /// service quarantines), [`RegisterError::Quarantined`] afterwards.
    pub fn register(
        &mut self,
        ctx: &QueryCtx<'_>,
        trip: &trajgen::Trip,
    ) -> Result<SessionId, RegisterError> {
        self.register_planned(ctx, trip, None)
    }

    /// [`SessionService::register`] with an optional pre-planned
    /// itinerary — the sharded front registers sessions with itineraries
    /// carrying [`crate::EventKind::Handoff`] stops (still a pure
    /// function of `(trip, config, shard plan)`, so the journal keeps
    /// recording only the trip and recovery recomputes the plan).
    pub(crate) fn register_planned(
        &mut self,
        ctx: &QueryCtx<'_>,
        trip: &trajgen::Trip,
        itinerary: Option<Vec<PlannedStop>>,
    ) -> Result<SessionId, RegisterError> {
        if let ServiceHealth::Quarantined { cause } = self.health {
            return Err(RegisterError::Quarantined { cause });
        }
        let id = SessionId(trip.id.0);
        if self.index.contains_key(&id) {
            self.stats.rejected += 1;
            return Err(RegisterError::Duplicate(id));
        }
        if self.active >= self.config.max_sessions {
            self.stats.rejected += 1;
            return Err(RegisterError::Full { max_sessions: self.config.max_sessions });
        }
        let itinerary = match itinerary {
            Some(planned) => planned,
            None => build_itinerary(ctx, trip, self.config.adapt_every).map_err(|e| {
                self.stats.rejected += 1;
                RegisterError::Planning(e)
            })?,
        };
        if let Some(journal) = self.journal.as_mut() {
            let record = Record::Register {
                session: id,
                vehicle: trip.vehicle.0,
                depart: trip.depart,
                nodes: trip.route.nodes().iter().map(|n| n.0).collect(),
            };
            if let Err(e) = journal.append(&record) {
                self.stats.rejected += 1;
                self.quarantine(e.code());
                return Err(RegisterError::Journal(e));
            }
            self.stats.journal_records += 1;
        }
        if self.share.is_none() {
            self.share = Some(ctx.server.forecast_share());
        }
        let state = SessionState::new(id, trip.clone(), itinerary);
        for event in state.planned_events() {
            self.scheduler.push(event);
        }
        let slot = self.slots.len();
        self.slots.push(Some(state));
        self.index.insert(id, slot);
        self.active += 1;
        self.stats.registered += 1;
        Ok(id)
    }

    /// Whether parallel batch execution is allowed against `server`:
    /// only when forecasts are pure per `(key, window)` — the
    /// model-backed, no-resilience, no-stale configuration (the same
    /// test the lazy filter–refine engine applies). Otherwise cache
    /// *values* could depend on which concurrent solve populated them,
    /// and the service degrades to sequential batches to keep the total
    /// order the only source of truth.
    fn parallel_ok(server: &InfoServer) -> bool {
        server.availability_model_backed() && !server.serves_stale() && !server.resilience_enabled()
    }

    /// The cancellation filter `pop_batch`/`pop_exact` use: a session is
    /// dead when it is unknown or no longer active. Unknown ids are
    /// treated as cancelled (defensive: the scheduler never invents ids,
    /// but a map miss must drop the event, not panic the serving loop).
    fn is_cancelled<'a>(
        index: &'a BTreeMap<SessionId, usize>,
        slots: &'a [Option<SessionState>],
    ) -> impl Fn(SessionId) -> bool + 'a {
        move |sid| {
            index.get(&sid).is_none_or(|&slot| {
                slots
                    .get(slot)
                    .and_then(|s| s.as_ref())
                    .is_none_or(|s| s.phase != SessionPhase::Active)
            })
        }
    }

    /// Execute `events` (already popped, distinct sessions) and fold the
    /// outcomes into registry + stats. Returns the journalable commit
    /// entries and, in strict mode, the first failing solve.
    ///
    /// Worker panics (real or chaos-injected) are contained here: the
    /// batch's sessions are shed with a `SES-004` reason, the service is
    /// quarantined, and a typed error is returned — a panic below the
    /// service boundary never unwinds through it.
    fn execute_batch(
        &mut self,
        ctx: &QueryCtx<'_>,
        events: &[Event],
    ) -> Result<(Vec<CommitEntry>, Option<EcError>), SessionError> {
        // Take the batch's session states out of their slots. A missing
        // state is an internal invariant violation — contained by
        // restoring what was taken and quarantining, never by panicking.
        let mut work: Vec<(Event, SessionState)> = Vec::with_capacity(events.len());
        for &ev in events {
            let taken = self
                .index
                .get(&ev.session)
                .copied()
                .and_then(|slot| self.slots.get_mut(slot).and_then(Option::take));
            match taken {
                Some(state) => work.push((ev, state)),
                None => {
                    self.restore_states(work);
                    self.quarantine("SES-006");
                    return Err(SessionError::Internal {
                        what: "scheduled event for a session absent from the registry",
                    });
                }
            }
        }

        // Both batch parallelism and table caching require forecast
        // purity: against a server without it, execution degrades to
        // sequential *uncached* batches (a cached table could otherwise
        // embed whichever degraded answer happened to be live).
        let pure = Self::parallel_ok(ctx.server);
        let threads = if pure { self.config.threads } else { 1 };
        let table_cache = if pure { self.table_cache.as_ref() } else { None };
        let config_hash = config_digest(&ctx.config);
        let base = self.stats.events_executed;
        let panic_at = self
            .config
            .chaos
            .panic_at_event
            .and_then(|t| t.checked_sub(base))
            .and_then(|rel| usize::try_from(rel).ok())
            .filter(|&rel| rel < work.len());
        let ran = catch_unwind(AssertUnwindSafe(|| {
            ec_exec::parallel_map_mut(
                threads,
                &mut work,
                |_| (),
                |_scratch, i, item| {
                    let (ev, state) = item;
                    if panic_at == Some(i) {
                        panic!("injected worker panic at global event {}", base + i as u64);
                    }
                    let _scope = SessionScope::enter(state.id.0);
                    let start = std::time::Instant::now();
                    let outcome = match table_cache {
                        Some(cache) => state.execute_cached(ctx, ev, cache, config_hash),
                        None => state.execute(ctx, ev),
                    };
                    (outcome, start.elapsed().as_secs_f64() * 1e6)
                },
            )
        }));

        let outcomes = match ran {
            Ok(outcomes) => outcomes,
            Err(_panic) => {
                // Panic containment: per-session state in this batch may
                // be partially mutated and can no longer be trusted —
                // shed the whole batch, quarantine, surface typed.
                let batch_events = work.len();
                for (ev, state) in &mut work {
                    if state.phase == SessionPhase::Active {
                        state.shed(ShedReason {
                            code: "SES-004".to_string(),
                            detail: format!(
                                "worker panic while executing {:?}@{}",
                                ev.kind,
                                ev.time.as_secs()
                            ),
                        });
                        self.stats.sessions_shed += 1;
                        self.active -= 1;
                    }
                }
                self.restore_states(work);
                self.quarantine("SES-004");
                return Err(SessionError::WorkerPanic { batch_events });
            }
        };

        let mut entries = Vec::with_capacity(work.len());
        let mut first_failure: Option<EcError> = None;
        for ((ev, mut state), (outcome, micros)) in work.into_iter().zip(outcomes) {
            self.event_log.push(ev);
            self.latencies_us.push(micros);
            self.stats.events_executed += 1;
            let tag = match outcome {
                SolveOutcome::Table { emitted: true } => {
                    self.stats.tables_emitted += 1;
                    OutcomeTag::Emitted
                }
                SolveOutcome::Table { emitted: false } => {
                    self.stats.heartbeats += 1;
                    OutcomeTag::Heartbeat
                }
                SolveOutcome::NoOffers => {
                    self.stats.no_offer_solves += 1;
                    OutcomeTag::NoOffers
                }
                SolveOutcome::Retired => {
                    self.stats.sessions_completed += 1;
                    self.active -= 1;
                    OutcomeTag::Retired
                }
                SolveOutcome::HandedOff => {
                    self.stats.handoffs += 1;
                    self.active -= 1;
                    OutcomeTag::Handoff
                }
                SolveOutcome::Failed(e) => {
                    if self.config.shed_degraded {
                        state.shed(ShedReason {
                            code: e.code().to_string(),
                            detail: shed_provenance(ctx.server, &e),
                        });
                        self.stats.sessions_shed += 1;
                        self.active -= 1;
                        OutcomeTag::Shed
                    } else {
                        if first_failure.is_none() {
                            first_failure = Some(e);
                        }
                        OutcomeTag::Failed
                    }
                }
            };
            entries.push(CommitEntry {
                time: ev.time,
                session: ev.session,
                kind: ev.kind,
                outcome: tag,
            });
            if tag == OutcomeTag::Handoff {
                // The session leaves this shard: drop it from the
                // registry (its remaining heap entries die lazily via the
                // cancellation filter — an unknown id is cancelled) and
                // stage the state for delivery to the destination shard.
                self.index.remove(&state.id);
                self.departures.push(state);
            } else {
                self.restore_states(std::iter::once((ev, state)));
            }
        }
        Ok((entries, first_failure))
    }

    /// Put taken states back into their slots, dropping any whose slot
    /// vanished (cannot happen; defensive against panicking in cleanup).
    fn restore_states(&mut self, work: impl IntoIterator<Item = (Event, SessionState)>) {
        for (_, state) in work {
            if let Some(&slot) = self.index.get(&state.id) {
                if let Some(s) = self.slots.get_mut(slot) {
                    *s = Some(state);
                }
            }
        }
    }

    /// Execute one batch of due events. Returns the number executed
    /// (zero when the queue is drained). Journaled services append the
    /// batch's `Commit` record and take snapshots on the configured
    /// cadence before returning.
    ///
    /// # Errors
    /// * [`SessionError::Quarantined`] — the service contained an
    ///   earlier fault and is read-only;
    /// * [`SessionError::WorkerPanic`] — a worker panicked in this batch
    ///   (batch shed, now quarantined);
    /// * [`SessionError::Journal`] — the WAL refused the commit record
    ///   (now quarantined; the in-memory state advanced but is no longer
    ///   authoritative — recover from the journal);
    /// * [`SessionError::Solve`] — `shed_degraded` off and a solve
    ///   failed: the first failure in total order, after the batch
    ///   completes and commits.
    pub fn tick(&mut self, ctx: &QueryCtx<'_>) -> Result<usize, SessionError> {
        if let ServiceHealth::Quarantined { cause } = self.health {
            return Err(SessionError::Quarantined { cause });
        }
        // The batch buffer is taken off `self` for the tick (the
        // cancellation filter borrows the registry) and put back after —
        // steady-state ticking reuses its capacity and allocates nothing
        // on the pop path.
        let mut events = std::mem::take(&mut self.batch_scratch);
        let deferred = {
            let cancelled = Self::is_cancelled(&self.index, &self.slots);
            self.scheduler.pop_batch_into(self.config.events_per_tick, &cancelled, &mut events)
        };
        if events.is_empty() {
            self.batch_scratch = events;
            return Ok(0);
        }
        self.stats.events_deferred += deferred;
        let executed_result = self.execute_batch(ctx, &events);
        events.clear();
        self.batch_scratch = events;
        let (entries, first_failure) = executed_result?;
        let executed = entries.len();

        if let Some(journal) = self.journal.as_mut() {
            let record = Record::Commit { after: self.stats.events_executed, deferred, entries };
            if let Err(e) = journal.append(&record) {
                self.quarantine(e.code());
                return Err(SessionError::Journal(e));
            }
            self.stats.journal_records += 1;
            if journal.tick_snapshot_due() {
                let dir = journal.config().dir.clone();
                let image = self.image();
                match write_snapshot(&dir, &image) {
                    Ok(_) => self.stats.snapshots_written += 1,
                    Err(e) => {
                        // Non-fatal: serving degrades to journal-only
                        // (recovery replays a longer tail).
                        self.stats.journal_defects += 1;
                        self.last_defect = Some(e);
                    }
                }
            }
        }
        match first_failure {
            Some(e) => Err(SessionError::Solve(e)),
            None => Ok(executed),
        }
    }

    /// Re-apply one journaled `Register` record during recovery: the
    /// admission already happened (only successful admissions are
    /// journaled), so cap and duplicate checks become divergence checks.
    pub(crate) fn replay_register(
        &mut self,
        ctx: &QueryCtx<'_>,
        trip: &trajgen::Trip,
    ) -> Result<(), crate::error::RecoveryError> {
        self.replay_register_planned(ctx, trip, None)
    }

    /// [`SessionService::replay_register`] with an optional pre-planned
    /// (sharded) itinerary — sharded recovery recomputes the shard plan
    /// and hands each shard the itinerary its journal's admissions were
    /// built from.
    pub(crate) fn replay_register_planned(
        &mut self,
        ctx: &QueryCtx<'_>,
        trip: &trajgen::Trip,
        itinerary: Option<Vec<PlannedStop>>,
    ) -> Result<(), crate::error::RecoveryError> {
        use crate::error::RecoveryError;
        let id = SessionId(trip.id.0);
        if self.index.contains_key(&id) {
            return Err(RecoveryError::ReplayDivergence {
                detail: format!("journal registers session {id} twice"),
            });
        }
        let itinerary = match itinerary {
            Some(planned) => planned,
            None => build_itinerary(ctx, trip, self.config.adapt_every)
                .map_err(RecoveryError::Planning)?,
        };
        if self.share.is_none() {
            self.share = Some(ctx.server.forecast_share());
        }
        let state = SessionState::new(id, trip.clone(), itinerary);
        for event in state.planned_events() {
            self.scheduler.push(event);
        }
        let slot = self.slots.len();
        self.slots.push(Some(state));
        self.index.insert(id, slot);
        self.active += 1;
        self.stats.registered += 1;
        self.stats.journal_records += 1;
        Ok(())
    }

    /// Re-execute one journaled batch during recovery: pop exactly the
    /// recorded events (no budget decision, no deferral lookahead — the
    /// recorded `deferred` count is credited as-is) and verify both the
    /// popped keys and the produced outcomes against the record.
    ///
    /// # Errors
    /// [`SessionError::Recovery`] with
    /// [`crate::error::RecoveryError::ReplayDivergence`] when replay
    /// produces different events or outcomes than the journal recorded.
    pub(crate) fn replay_commit(
        &mut self,
        ctx: &QueryCtx<'_>,
        entries: &[CommitEntry],
        deferred: u64,
        after: u64,
    ) -> Result<(), SessionError> {
        use crate::error::RecoveryError;
        let events = {
            let cancelled = Self::is_cancelled(&self.index, &self.slots);
            self.scheduler.pop_exact(entries.len(), &cancelled)
        };
        if events.len() != entries.len() {
            return Err(RecoveryError::ReplayDivergence {
                detail: format!(
                    "journal commits {} events but the scheduler could replay only {}",
                    entries.len(),
                    events.len()
                ),
            }
            .into());
        }
        for (ev, want) in events.iter().zip(entries) {
            if ev.time != want.time || ev.session != want.session || ev.kind != want.kind {
                return Err(RecoveryError::ReplayDivergence {
                    detail: format!(
                        "replayed event {:?}@{} for session {} where the journal recorded \
                         {:?}@{} for session {}",
                        ev.kind,
                        ev.time.as_secs(),
                        ev.session,
                        want.kind,
                        want.time.as_secs(),
                        want.session
                    ),
                }
                .into());
            }
        }
        self.stats.events_deferred += deferred;
        let (replayed, _strict_failure) = self.execute_batch(ctx, &events)?;
        for (got, want) in replayed.iter().zip(entries) {
            if got.outcome != want.outcome {
                return Err(RecoveryError::ReplayDivergence {
                    detail: format!(
                        "event {:?}@{} for session {} replayed as {} but the journal recorded {}",
                        got.kind,
                        got.time.as_secs(),
                        got.session,
                        got.outcome,
                        want.outcome
                    ),
                }
                .into());
            }
        }
        if self.stats.events_executed != after {
            return Err(RecoveryError::ReplayDivergence {
                detail: format!(
                    "watermark after replayed batch is {} but the journal recorded {after}",
                    self.stats.events_executed
                ),
            }
            .into());
        }
        self.stats.journal_records += 1;
        Ok(())
    }

    /// Tick until the queue drains (every session completed or shed).
    ///
    /// # Errors
    /// As [`SessionService::tick`].
    pub fn run_to_completion(&mut self, ctx: &QueryCtx<'_>) -> Result<(), SessionError> {
        while !self.scheduler.is_empty() {
            self.tick(ctx)?;
        }
        Ok(())
    }

    /// The full service image at the current watermark — what a snapshot
    /// stores.
    pub(crate) fn image(&self) -> ServiceImage {
        let share = self.share.as_ref().map(|s| s.snapshot()).unwrap_or_default();
        let sessions = self
            .index
            .values()
            .filter_map(|&slot| self.slots.get(slot).and_then(|s| s.as_ref()))
            .map(session_image)
            .collect();
        ServiceImage { watermark: self.stats.events_executed, stats: self.stats, share, sessions }
    }

    /// Counter snapshot, forecast-sharing ledger folded in.
    #[must_use]
    pub fn stats(&self) -> SessionStats {
        let mut s = self.stats;
        if let Some(share) = &self.share {
            s.absorb_share(share.snapshot());
        }
        s
    }

    /// Sessions that crossed a shard boundary this tick: each executed
    /// its [`crate::EventKind::Handoff`] stop and left this service's
    /// registry with its full state (solver cache, cursor, ranking,
    /// solve record) intact. The sharded front delivers each to
    /// [`SessionService::adopt_session`] on the destination shard.
    /// Always empty in unsharded serving.
    pub fn take_departures(&mut self) -> Vec<SessionState> {
        std::mem::take(&mut self.departures)
    }

    /// Adopt a session handed off from another shard: queue its
    /// remaining itinerary tail (starting with the stop its `Handoff`
    /// event fronted, at the same virtual time) and register its state.
    /// The session keeps its id, Dynamic-Cache slot, cursor and solve
    /// record — adoption is pure transfer, never a re-plan.
    pub fn adopt_session(&mut self, state: SessionState) {
        debug_assert!(!self.index.contains_key(&state.id), "session {} adopted twice", state.id);
        debug_assert_eq!(state.phase, SessionPhase::Active);
        for event in state.pending_events() {
            self.scheduler.push(event);
        }
        let id = state.id;
        let slot = self.slots.len();
        self.slots.push(Some(state));
        self.index.insert(id, slot);
        self.active += 1;
    }

    /// Live sessions (registered, not yet retired or shed).
    #[must_use]
    pub const fn active_sessions(&self) -> usize {
        self.active
    }

    /// Events still queued.
    #[must_use]
    pub fn pending_events(&self) -> usize {
        self.scheduler.len()
    }

    /// Virtual time of the next queued event, if any. Lets an outer
    /// loop (e.g. the closed-loop outcome engine) interleave its own
    /// virtual-time heap with this service's without draining either.
    #[must_use]
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.scheduler.next_time()
    }

    /// Every executed event, in execution order — which, by the
    /// determinism argument, *is* the scheduler's total order whatever
    /// the thread count or tick budget. A recovered service's log covers
    /// replayed and post-recovery events (the pre-snapshot prefix lives
    /// only in the journal).
    #[must_use]
    pub fn event_log(&self) -> &[Event] {
        &self.event_log
    }

    /// Per-event wall-clock execution latencies, microseconds, in
    /// execution order (measurement only — not deterministic).
    #[must_use]
    pub fn event_latencies_us(&self) -> &[f64] {
        &self.latencies_us
    }

    /// One session by id.
    #[must_use]
    pub fn session(&self, id: SessionId) -> Option<&SessionState> {
        self.index.get(&id).and_then(|&slot| self.slots.get(slot).and_then(|s| s.as_ref()))
    }

    /// All sessions in id order (the registry keeps retired and shed
    /// sessions so their solve records stay auditable).
    pub fn sessions(&self) -> impl Iterator<Item = &SessionState> {
        self.index.values().filter_map(|&slot| self.slots.get(slot).and_then(|s| s.as_ref()))
    }
}

/// Snapshot one session (see [`SessionImage`]).
fn session_image(s: &SessionState) -> SessionImage {
    let cache = s.solver().dynamic_cache();
    let (hits, misses) = cache.stats();
    SessionImage {
        id: s.id,
        vehicle: s.trip.vehicle.0,
        depart: s.trip.depart,
        nodes: s.trip.route.nodes().iter().map(|n| n.0).collect(),
        next_stop: u32::try_from(s.next_stop()).unwrap_or(u32::MAX),
        phase: match s.phase {
            SessionPhase::Active => 0,
            SessionPhase::Completed => 1,
            SessionPhase::Shed => 2,
        },
        shed: s.shed_reason.as_ref().map(|r| (r.code.clone(), r.detail.clone())),
        last_ranking: s.current_ranking().map(|ids| ids.iter().map(|c| c.0).collect()),
        solves_before: s.solves.len() as u64,
        cache: CacheImage {
            slot: cache.slot().cloned(),
            hits,
            misses,
            empty_probes: cache.empty_probes(),
            prune: s.solver().prune_stats(),
        },
    }
}

/// Build the shed-reason provenance detail: the failing error plus
/// whatever the server's resilience layer knows (breaker states per
/// feed, stale tier) — the same provenance surface `eis::resilience`
/// exposes to the ranking layer. The stable code travels separately in
/// [`ShedReason::code`].
fn shed_provenance(server: &InfoServer, e: &EcError) -> String {
    let mut parts = vec![format!("solve failed: {e}")];
    for feed in [FeedKind::Weather, FeedKind::Wind, FeedKind::Availability, FeedKind::Traffic] {
        if let Some(state) = server.breaker_state(feed) {
            parts.push(format!("{feed:?} breaker {state:?}"));
        }
    }
    if server.serves_stale() {
        parts.push(format!("stale tier on ({} served)", server.stats().stale_served()));
    }
    parts.join("; ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use chargers::{synth_fleet, FleetParams};
    use ecocharge_core::{DegradedPolicy, EcoChargeConfig};
    use eis::SimProviders;
    use roadnet::{urban_grid, UrbanGridParams};
    use trajgen::{generate_trips, BrinkhoffParams, Trip};

    struct Fixture {
        graph: roadnet::RoadGraph,
        fleet: chargers::ChargerFleet,
        sims: SimProviders,
        trips: Vec<Trip>,
    }

    impl Fixture {
        fn new() -> Self {
            let graph = urban_grid(&UrbanGridParams::default());
            let fleet =
                synth_fleet(&graph, &FleetParams { count: 120, seed: 3, ..Default::default() });
            let sims = SimProviders::new(9);
            let trips = generate_trips(
                &graph,
                &BrinkhoffParams {
                    trips: 3,
                    min_trip_m: 10_000.0,
                    max_trip_m: 18_000.0,
                    ..Default::default()
                },
            );
            Self { graph, fleet, sims, trips }
        }

        fn server(&self) -> InfoServer {
            InfoServer::from_sims(self.sims.clone())
        }

        fn ctx<'a>(&'a self, server: &'a InfoServer) -> QueryCtx<'a> {
            QueryCtx::new(&self.graph, &self.fleet, server, &self.sims, EcoChargeConfig::default())
        }
    }

    fn run_service(f: &Fixture, config: ServiceConfig) -> SessionService {
        let server = f.server();
        let ctx = f.ctx(&server);
        let mut svc = SessionService::new(config);
        for trip in &f.trips {
            svc.register(&ctx, trip).unwrap();
        }
        svc.run_to_completion(&ctx).unwrap();
        svc
    }

    #[test]
    fn serves_sessions_to_completion() {
        let f = Fixture::new();
        let svc = run_service(&f, ServiceConfig::default());
        let stats = svc.stats();
        assert_eq!(stats.registered, f.trips.len() as u64);
        assert_eq!(stats.sessions_completed, f.trips.len() as u64);
        assert_eq!(svc.active_sessions(), 0);
        assert_eq!(svc.pending_events(), 0);
        assert_eq!(svc.health(), ServiceHealth::Serving);
        let planned: usize = svc.sessions().map(|s| s.itinerary().len()).sum();
        assert_eq!(stats.events_executed, planned as u64);
        assert!(stats.tables_emitted >= f.trips.len() as u64, "every trip opens with a table");
        for s in svc.sessions() {
            assert_eq!(s.phase, SessionPhase::Completed);
            assert!(!s.solves.is_empty());
            assert!(s.solves[0].emitted, "first solve is always a push");
        }
        // The executed log is the scheduler's total order.
        let log = svc.event_log();
        assert_eq!(log.len(), planned);
        assert!(log.windows(2).all(|w| w[0].key() <= w[1].key()), "log must be sorted by key");
        assert_eq!(svc.event_latencies_us().len(), log.len());
    }

    #[test]
    fn admission_cap_and_duplicate_trips_are_refused() {
        let f = Fixture::new();
        let server = f.server();
        let ctx = f.ctx(&server);
        let mut svc =
            SessionService::new(ServiceConfig { max_sessions: 1, ..ServiceConfig::default() });
        let id = svc.register(&ctx, &f.trips[0]).unwrap();
        assert_eq!(svc.register(&ctx, &f.trips[1]), Err(RegisterError::Full { max_sessions: 1 }));
        svc.run_to_completion(&ctx).unwrap();
        // Capacity freed by retirement…
        svc.register(&ctx, &f.trips[1]).unwrap();
        // …but a finished trip stays registered (its record is kept).
        assert_eq!(svc.register(&ctx, &f.trips[0]), Err(RegisterError::Duplicate(id)));
        assert_eq!(svc.stats().rejected, 2);
    }

    #[test]
    fn backpressure_defers_without_changing_any_table() {
        let f = Fixture::new();
        let wide = run_service(&f, ServiceConfig::default());
        let tight =
            run_service(&f, ServiceConfig { events_per_tick: 1, ..ServiceConfig::default() });
        assert!(tight.stats().events_deferred > 0, "a 1-event budget must defer");
        assert_eq!(tight.event_log(), wide.event_log(), "deferral cannot reorder execution");
        for (a, b) in tight.sessions().zip(wide.sessions()) {
            assert_eq!(a.solves, b.solves, "deferral cannot change a single table");
        }
    }

    #[test]
    fn parallel_batches_are_bit_identical_to_sequential() {
        let f = Fixture::new();
        let seq = run_service(&f, ServiceConfig { threads: 1, ..ServiceConfig::default() });
        for threads in [2, 4, 8] {
            let par = run_service(&f, ServiceConfig { threads, ..ServiceConfig::default() });
            assert_eq!(par.event_log(), seq.event_log(), "threads={threads}");
            // Forecast-share attribution is observational (which session
            // gets credited a hit depends on wall-clock interleaving);
            // everything else must match exactly.
            let scrub = |mut s: SessionStats| {
                s.forecast_shared_hits = 0;
                s.forecast_self_hits = 0;
                s.forecast_untagged_hits = 0;
                s.forecast_misses = 0;
                s
            };
            assert_eq!(scrub(par.stats()), scrub(seq.stats()), "threads={threads}");
            for (a, b) in par.sessions().zip(seq.sessions()) {
                assert_eq!(a.solves, b.solves, "threads={threads}");
            }
        }
    }

    #[test]
    fn degraded_server_sheds_sessions_with_provenance() {
        use eis::FlakyProvider;
        let f = Fixture::new();
        // Every upstream call fails, and component fallbacks are off, so
        // every first solve errors.
        let flaky = Arc::new(FlakyProvider::new(f.sims.clone(), 1, "bundle"));
        let server = InfoServer::new(flaky.clone(), flaky.clone(), flaky)
            .with_resilience(eis::ResiliencePolicy::default(), 7);
        let config =
            EcoChargeConfig { degraded: DegradedPolicy::disabled(), ..EcoChargeConfig::default() };
        let ctx = QueryCtx::new(&f.graph, &f.fleet, &server, &f.sims, config);

        let mut svc = SessionService::new(ServiceConfig::default());
        for trip in &f.trips {
            svc.register(&ctx, trip).unwrap();
        }
        svc.run_to_completion(&ctx).unwrap();
        let stats = svc.stats();
        assert_eq!(stats.sessions_shed, f.trips.len() as u64);
        assert_eq!(stats.sessions_completed, 0);
        assert_eq!(svc.active_sessions(), 0);
        for s in svc.sessions() {
            assert_eq!(s.phase, SessionPhase::Shed);
            let reason = s.shed_reason.as_ref().unwrap();
            assert!(
                reason.code.starts_with("EC-"),
                "shed reason must carry the solve's stable code: {reason}"
            );
            assert!(reason.detail.contains("solve failed"), "{reason}");
            assert!(reason.detail.contains("breaker"), "resilience provenance missing: {reason}");
        }

        // Without shedding, the same failure surfaces as a typed tick
        // error carrying the solve's code.
        let mut strict =
            SessionService::new(ServiceConfig { shed_degraded: false, ..ServiceConfig::default() });
        strict.register(&ctx, &f.trips[0]).unwrap();
        let err = strict.run_to_completion(&ctx).unwrap_err();
        assert!(matches!(err, SessionError::Solve(_)), "{err}");
        assert_eq!(err.code(), "SES-001");
    }

    /// Duplicate each fixture trip under a fresh id: sessions sharing a
    /// trip *shape* are exactly what the table-cache key collapses.
    fn with_clones(trips: &[Trip]) -> Vec<Trip> {
        let mut all = trips.to_vec();
        for (i, t) in trips.iter().enumerate() {
            let mut clone = t.clone();
            clone.id = ec_types::TripId(1000 + i as u32);
            all.push(clone);
        }
        all
    }

    fn scrub_share(mut s: SessionStats) -> SessionStats {
        // Forecast-share attribution is observational, and a cached
        // solve never touches the server at all, so these counters
        // legitimately differ between cached and uncached runs.
        s.forecast_shared_hits = 0;
        s.forecast_self_hits = 0;
        s.forecast_untagged_hits = 0;
        s.forecast_misses = 0;
        s
    }

    #[test]
    fn table_cache_is_bit_identical_and_replays_clone_sessions() {
        let f = Fixture::new();
        let trips = with_clones(&f.trips);
        let run = |threads: usize, table_cache: crate::TableCacheConfig| {
            let server = f.server();
            let ctx = f.ctx(&server);
            let mut svc = SessionService::new(ServiceConfig {
                threads,
                table_cache,
                ..ServiceConfig::default()
            });
            for trip in &trips {
                svc.register(&ctx, trip).unwrap();
            }
            svc.run_to_completion(&ctx).unwrap();
            svc
        };
        let off = run(1, crate::TableCacheConfig::default());
        assert!(off.cache_metrics().tiers().is_empty(), "cache off reports no tiers");
        for threads in [1, 2, 8] {
            let on = run(threads, crate::TableCacheConfig::enabled());
            assert_eq!(on.event_log(), off.event_log(), "threads={threads}");
            for (a, b) in on.sessions().zip(off.sessions()) {
                assert_eq!(a.solves, b.solves, "threads={threads}");
                assert_eq!(a.cache_stats(), b.cache_stats(), "restored solver counters");
                assert_eq!(a.solver().prune_stats(), b.solver().prune_stats());
                assert_eq!(a.current_ranking(), b.current_ranking());
            }
            assert_eq!(scrub_share(on.stats()), scrub_share(off.stats()), "threads={threads}");
            let metrics = on.cache_metrics();
            let l1 = metrics.get("session.l1").expect("cache on reports its L1");
            assert!(l1.insertions > 0);
            // Hit counters are deliberately outside the determinism
            // contract (§4l): two lanes solving the same shape in one
            // parallel batch may both miss and both insert. Only the
            // sequential run promises every clone after the first hits.
            if threads == 1 {
                assert!(l1.hits > 0, "clone sessions must replay cached solves: {l1:?}");
            }
        }
    }

    #[test]
    fn impure_servers_bypass_the_table_cache() {
        // A resilience-wrapped server fails the purity gate even while
        // healthy: cached tables could embed degraded answers, so the
        // service must serve uncached (and sequential) — with identical
        // solves to a plain run.
        let f = Fixture::new();
        let run = |server: &InfoServer, table_cache: crate::TableCacheConfig| {
            let ctx = f.ctx(server);
            let mut svc =
                SessionService::new(ServiceConfig { table_cache, ..ServiceConfig::default() });
            for trip in &f.trips {
                svc.register(&ctx, trip).unwrap();
            }
            svc.run_to_completion(&ctx).unwrap();
            svc
        };
        let plain_server = f.server();
        let plain = run(&plain_server, crate::TableCacheConfig::default());
        let guarded_server = f.server().with_resilience(eis::ResiliencePolicy::default(), 7);
        let guarded = run(&guarded_server, crate::TableCacheConfig::enabled());
        assert_eq!(guarded.event_log(), plain.event_log());
        for (a, b) in guarded.sessions().zip(plain.sessions()) {
            assert_eq!(a.solves, b.solves);
        }
        let l1 = guarded.cache_metrics().get("session.l1").expect("tier exists, idle");
        assert_eq!(
            (l1.hits, l1.misses, l1.insertions),
            (0, 0, 0),
            "the purity gate must keep the cache untouched: {l1:?}"
        );
    }

    #[test]
    fn worker_panic_is_contained_sheds_batch_and_quarantines() {
        let f = Fixture::new();
        let server = f.server();
        let ctx = f.ctx(&server);
        for threads in [1, 4] {
            let mut svc = SessionService::new(ServiceConfig {
                threads,
                chaos: ServiceChaos { panic_at_event: Some(0) },
                ..ServiceConfig::default()
            });
            for trip in &f.trips {
                svc.register(&ctx, trip).unwrap();
            }
            // The panic must surface as a typed error, not an unwind.
            let err = svc.run_to_completion(&ctx).unwrap_err();
            assert!(matches!(err, SessionError::WorkerPanic { .. }), "{err}");
            assert_eq!(svc.health(), ServiceHealth::Quarantined { cause: "SES-004" });
            // Degradation contract: reads still work…
            assert!(svc.stats().sessions_shed > 0);
            assert!(svc
                .sessions()
                .any(|s| { s.shed_reason.as_ref().is_some_and(|r| r.code == "SES-004") }));
            // …mutations are refused typed.
            let err = svc.tick(&ctx).unwrap_err();
            assert_eq!(err.code(), "SES-005");
            let err = svc.register(&ctx, &f.trips[0]).unwrap_err();
            assert_eq!(err.code(), "SES-105");
        }
    }
}
