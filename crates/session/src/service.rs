//! The multi-tenant session service.
//!
//! [`SessionService`] owns the registry, the scheduler and the batched
//! execution loop:
//!
//! * **admission** — a hard session cap and one-live-session-per-trip
//!   keying (so session ids — hence the scheduler's total order — do not
//!   depend on registration order);
//! * **ticks** — every session's whole itinerary is queued at
//!   registration, so the heap's pop order *is* the global total order;
//!   each [`SessionService::tick`] pops one bounded batch — a prefix of
//!   that order holding at most one event per session (enforced by
//!   [`EventScheduler::pop_batch`]) — and fans it out through
//!   [`ec_exec::parallel_map_mut`]; distinct sessions means parallel
//!   execution touches disjoint mutable state, and the per-session cap
//!   means a session's events execute strictly in itinerary order;
//! * **backpressure** — events due beyond the per-tick budget stay
//!   queued (counted in [`SessionStats::events_deferred`]); their
//!   virtual times are never rewritten, so deferral delays wall-clock
//!   latency only, never changes a table;
//! * **shedding** — when a solve fails against a degraded InfoServer,
//!   the session is retired gracefully with an `eis`-provenance reason
//!   string (breaker states, stale tier) instead of poisoning the tick.

use crate::registry::{build_itinerary, SessionPhase, SessionState, SolveOutcome};
use crate::scheduler::{Event, EventScheduler};
use crate::stats::SessionStats;
use ec_types::{EcError, SessionId, SimDuration};
use ecocharge_core::QueryCtx;
use eis::{FeedKind, ForecastShare, InfoServer, SessionScope};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Serving-layer knobs (the per-trip ranking knobs stay on
/// [`ecocharge_core::EcoChargeConfig`]).
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Admission cap: concurrent *active* sessions.
    pub max_sessions: usize,
    /// Backpressure budget: events executed per tick (min 1).
    pub events_per_tick: usize,
    /// Mid-segment Dynamic-Cache adaptation cadence
    /// (`SimDuration::ZERO` disables the extra events; segment re-ranks
    /// and rollovers still run).
    pub adapt_every: SimDuration,
    /// Shed a session whose solve fails (degraded InfoServer) instead of
    /// failing the tick.
    pub shed_degraded: bool,
    /// Worker threads for batch fan-out. Sessions are the unit of
    /// parallelism; each solve runs single-threaded inside its session
    /// scope so forecast reads stay attributed (see [`eis::share`]).
    pub threads: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            max_sessions: 10_000,
            events_per_tick: 64,
            adapt_every: SimDuration::from_mins(5),
            shed_degraded: true,
            threads: 1,
        }
    }
}

/// Why an admission was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegisterError {
    /// The service is at its session cap.
    Full {
        /// The configured cap.
        max_sessions: usize,
    },
    /// The trip already has a live or finished session this service
    /// remembers.
    Duplicate(SessionId),
    /// Trip segmentation failed.
    Planning(EcError),
}

impl fmt::Display for RegisterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Full { max_sessions } => {
                write!(f, "admission refused: {max_sessions} active sessions")
            }
            Self::Duplicate(id) => write!(f, "trip already registered as session {id}"),
            Self::Planning(e) => write!(f, "trip could not be segmented: {e}"),
        }
    }
}

impl std::error::Error for RegisterError {}

/// The fleet-scale serving layer (see the module docs).
#[derive(Debug)]
pub struct SessionService {
    config: ServiceConfig,
    scheduler: EventScheduler,
    slots: Vec<Option<SessionState>>,
    index: BTreeMap<SessionId, usize>,
    active: usize,
    stats: SessionStats,
    event_log: Vec<Event>,
    latencies_us: Vec<f64>,
    share: Option<Arc<ForecastShare>>,
}

impl SessionService {
    /// An empty service.
    #[must_use]
    pub fn new(config: ServiceConfig) -> Self {
        Self {
            config,
            scheduler: EventScheduler::new(),
            slots: Vec::new(),
            index: BTreeMap::new(),
            active: 0,
            stats: SessionStats::default(),
            event_log: Vec::new(),
            latencies_us: Vec::new(),
            share: None,
        }
    }

    /// The configuration in force.
    #[must_use]
    pub const fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Admit `trip` as a session: segment it, precompute its itinerary
    /// and queue every event of it. The session id is the trip id, so
    /// the scheduler's total order is invariant under registration
    /// order.
    ///
    /// # Errors
    /// [`RegisterError::Full`] at the admission cap,
    /// [`RegisterError::Duplicate`] for an already-served trip,
    /// [`RegisterError::Planning`] when segmentation fails.
    pub fn register(
        &mut self,
        ctx: &QueryCtx<'_>,
        trip: &trajgen::Trip,
    ) -> Result<SessionId, RegisterError> {
        let id = SessionId(trip.id.0);
        if self.index.contains_key(&id) {
            self.stats.rejected += 1;
            return Err(RegisterError::Duplicate(id));
        }
        if self.active >= self.config.max_sessions {
            self.stats.rejected += 1;
            return Err(RegisterError::Full { max_sessions: self.config.max_sessions });
        }
        let itinerary = build_itinerary(ctx, trip, self.config.adapt_every).map_err(|e| {
            self.stats.rejected += 1;
            RegisterError::Planning(e)
        })?;
        if self.share.is_none() {
            self.share = Some(ctx.server.forecast_share());
        }
        let state = SessionState::new(id, trip.clone(), itinerary);
        for event in state.planned_events() {
            self.scheduler.push(event);
        }
        let slot = self.slots.len();
        self.slots.push(Some(state));
        self.index.insert(id, slot);
        self.active += 1;
        self.stats.registered += 1;
        Ok(id)
    }

    /// Whether parallel batch execution is allowed against `server`:
    /// only when forecasts are pure per `(key, window)` — the
    /// model-backed, no-resilience, no-stale configuration (the same
    /// test the lazy filter–refine engine applies). Otherwise cache
    /// *values* could depend on which concurrent solve populated them,
    /// and the service degrades to sequential batches to keep the total
    /// order the only source of truth.
    fn parallel_ok(server: &InfoServer) -> bool {
        server.availability_model_backed() && !server.serves_stale() && !server.resilience_enabled()
    }

    /// Execute one batch of due events. Returns the number executed
    /// (zero when the queue is drained).
    ///
    /// # Errors
    /// With `shed_degraded` off, the first failing solve (in total
    /// order) is propagated after the batch completes.
    pub fn tick(&mut self, ctx: &QueryCtx<'_>) -> Result<usize, EcError> {
        let (index, slots) = (&self.index, &self.slots);
        let batch = self.scheduler.pop_batch(self.config.events_per_tick, |sid| {
            slots[index[&sid]].as_ref().is_none_or(|s| s.phase != SessionPhase::Active)
        });
        if batch.events.is_empty() {
            return Ok(0);
        }
        self.stats.events_deferred += batch.deferred;

        let mut work: Vec<(Event, SessionState)> = batch
            .events
            .into_iter()
            .map(|ev| {
                let slot = self.index[&ev.session];
                let state = self.slots[slot].take().expect("scheduled session present");
                (ev, state)
            })
            .collect();

        let threads = if Self::parallel_ok(ctx.server) { self.config.threads } else { 1 };
        let outcomes = ec_exec::parallel_map_mut(
            threads,
            &mut work,
            |_| (),
            |_scratch, _, item| {
                let (ev, state) = item;
                let _scope = SessionScope::enter(state.id.0);
                let start = std::time::Instant::now();
                let outcome = state.execute(ctx, ev);
                (outcome, start.elapsed().as_secs_f64() * 1e6)
            },
        );

        let executed = work.len();
        let mut first_failure: Option<EcError> = None;
        for ((ev, state), (outcome, micros)) in work.into_iter().zip(outcomes) {
            self.event_log.push(ev);
            self.latencies_us.push(micros);
            self.stats.events_executed += 1;
            let mut state = state;
            match outcome {
                SolveOutcome::Table { emitted: true } => self.stats.tables_emitted += 1,
                SolveOutcome::Table { emitted: false } => self.stats.heartbeats += 1,
                SolveOutcome::NoOffers => self.stats.no_offer_solves += 1,
                SolveOutcome::Retired => {
                    self.stats.sessions_completed += 1;
                    self.active -= 1;
                }
                SolveOutcome::Failed(e) => {
                    if self.config.shed_degraded {
                        state.shed(shed_provenance(ctx.server, &e));
                        self.stats.sessions_shed += 1;
                        self.active -= 1;
                    } else if first_failure.is_none() {
                        first_failure = Some(e);
                    }
                }
            }
            let slot = self.index[&state.id];
            self.slots[slot] = Some(state);
        }
        match first_failure {
            Some(e) => Err(e),
            None => Ok(executed),
        }
    }

    /// Tick until the queue drains (every session completed or shed).
    ///
    /// # Errors
    /// As [`SessionService::tick`].
    pub fn run_to_completion(&mut self, ctx: &QueryCtx<'_>) -> Result<(), EcError> {
        while !self.scheduler.is_empty() {
            self.tick(ctx)?;
        }
        Ok(())
    }

    /// Counter snapshot, forecast-sharing ledger folded in.
    #[must_use]
    pub fn stats(&self) -> SessionStats {
        let mut s = self.stats;
        if let Some(share) = &self.share {
            s.absorb_share(share.snapshot());
        }
        s
    }

    /// Live sessions (registered, not yet retired or shed).
    #[must_use]
    pub const fn active_sessions(&self) -> usize {
        self.active
    }

    /// Events still queued.
    #[must_use]
    pub fn pending_events(&self) -> usize {
        self.scheduler.len()
    }

    /// Every executed event, in execution order — which, by the
    /// determinism argument, *is* the scheduler's total order whatever
    /// the thread count or tick budget.
    #[must_use]
    pub fn event_log(&self) -> &[Event] {
        &self.event_log
    }

    /// Per-event wall-clock execution latencies, microseconds, in
    /// execution order (measurement only — not deterministic).
    #[must_use]
    pub fn event_latencies_us(&self) -> &[f64] {
        &self.latencies_us
    }

    /// One session by id.
    #[must_use]
    pub fn session(&self, id: SessionId) -> Option<&SessionState> {
        self.index.get(&id).and_then(|&slot| self.slots[slot].as_ref())
    }

    /// All sessions in id order (the registry keeps retired and shed
    /// sessions so their solve records stay auditable).
    pub fn sessions(&self) -> impl Iterator<Item = &SessionState> {
        self.index.values().filter_map(|&slot| self.slots[slot].as_ref())
    }
}

/// Build the shed-reason provenance: the failing error plus whatever the
/// server's resilience layer knows (breaker states per feed, stale
/// tier) — the same provenance surface `eis::resilience` exposes to the
/// ranking layer.
fn shed_provenance(server: &InfoServer, e: &EcError) -> String {
    let mut parts = vec![format!("solve failed: {e}")];
    for feed in [FeedKind::Weather, FeedKind::Wind, FeedKind::Availability, FeedKind::Traffic] {
        if let Some(state) = server.breaker_state(feed) {
            parts.push(format!("{feed:?} breaker {state:?}"));
        }
    }
    if server.serves_stale() {
        parts.push(format!("stale tier on ({} served)", server.stats().stale_served()));
    }
    parts.join("; ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use chargers::{synth_fleet, FleetParams};
    use ecocharge_core::{DegradedPolicy, EcoChargeConfig};
    use eis::SimProviders;
    use roadnet::{urban_grid, UrbanGridParams};
    use trajgen::{generate_trips, BrinkhoffParams, Trip};

    struct Fixture {
        graph: roadnet::RoadGraph,
        fleet: chargers::ChargerFleet,
        sims: SimProviders,
        trips: Vec<Trip>,
    }

    impl Fixture {
        fn new() -> Self {
            let graph = urban_grid(&UrbanGridParams::default());
            let fleet =
                synth_fleet(&graph, &FleetParams { count: 120, seed: 3, ..Default::default() });
            let sims = SimProviders::new(9);
            let trips = generate_trips(
                &graph,
                &BrinkhoffParams {
                    trips: 3,
                    min_trip_m: 10_000.0,
                    max_trip_m: 18_000.0,
                    ..Default::default()
                },
            );
            Self { graph, fleet, sims, trips }
        }

        fn server(&self) -> InfoServer {
            InfoServer::from_sims(self.sims.clone())
        }

        fn ctx<'a>(&'a self, server: &'a InfoServer) -> QueryCtx<'a> {
            QueryCtx::new(&self.graph, &self.fleet, server, &self.sims, EcoChargeConfig::default())
        }
    }

    fn run_service(f: &Fixture, config: ServiceConfig) -> SessionService {
        let server = f.server();
        let ctx = f.ctx(&server);
        let mut svc = SessionService::new(config);
        for trip in &f.trips {
            svc.register(&ctx, trip).unwrap();
        }
        svc.run_to_completion(&ctx).unwrap();
        svc
    }

    #[test]
    fn serves_sessions_to_completion() {
        let f = Fixture::new();
        let svc = run_service(&f, ServiceConfig::default());
        let stats = svc.stats();
        assert_eq!(stats.registered, f.trips.len() as u64);
        assert_eq!(stats.sessions_completed, f.trips.len() as u64);
        assert_eq!(svc.active_sessions(), 0);
        assert_eq!(svc.pending_events(), 0);
        let planned: usize = svc.sessions().map(|s| s.itinerary().len()).sum();
        assert_eq!(stats.events_executed, planned as u64);
        assert!(stats.tables_emitted >= f.trips.len() as u64, "every trip opens with a table");
        for s in svc.sessions() {
            assert_eq!(s.phase, SessionPhase::Completed);
            assert!(!s.solves.is_empty());
            assert!(s.solves[0].emitted, "first solve is always a push");
        }
        // The executed log is the scheduler's total order.
        let log = svc.event_log();
        assert_eq!(log.len(), planned);
        assert!(log.windows(2).all(|w| w[0].key() <= w[1].key()), "log must be sorted by key");
        assert_eq!(svc.event_latencies_us().len(), log.len());
    }

    #[test]
    fn admission_cap_and_duplicate_trips_are_refused() {
        let f = Fixture::new();
        let server = f.server();
        let ctx = f.ctx(&server);
        let mut svc =
            SessionService::new(ServiceConfig { max_sessions: 1, ..ServiceConfig::default() });
        let id = svc.register(&ctx, &f.trips[0]).unwrap();
        assert_eq!(svc.register(&ctx, &f.trips[1]), Err(RegisterError::Full { max_sessions: 1 }));
        svc.run_to_completion(&ctx).unwrap();
        // Capacity freed by retirement…
        svc.register(&ctx, &f.trips[1]).unwrap();
        // …but a finished trip stays registered (its record is kept).
        assert_eq!(svc.register(&ctx, &f.trips[0]), Err(RegisterError::Duplicate(id)));
        assert_eq!(svc.stats().rejected, 2);
    }

    #[test]
    fn backpressure_defers_without_changing_any_table() {
        let f = Fixture::new();
        let wide = run_service(&f, ServiceConfig::default());
        let tight =
            run_service(&f, ServiceConfig { events_per_tick: 1, ..ServiceConfig::default() });
        assert!(tight.stats().events_deferred > 0, "a 1-event budget must defer");
        assert_eq!(tight.event_log(), wide.event_log(), "deferral cannot reorder execution");
        for (a, b) in tight.sessions().zip(wide.sessions()) {
            assert_eq!(a.solves, b.solves, "deferral cannot change a single table");
        }
    }

    #[test]
    fn parallel_batches_are_bit_identical_to_sequential() {
        let f = Fixture::new();
        let seq = run_service(&f, ServiceConfig { threads: 1, ..ServiceConfig::default() });
        for threads in [2, 4, 8] {
            let par = run_service(&f, ServiceConfig { threads, ..ServiceConfig::default() });
            assert_eq!(par.event_log(), seq.event_log(), "threads={threads}");
            // Forecast-share attribution is observational (which session
            // gets credited a hit depends on wall-clock interleaving);
            // everything else must match exactly.
            let scrub = |mut s: SessionStats| {
                s.forecast_shared_hits = 0;
                s.forecast_self_hits = 0;
                s.forecast_misses = 0;
                s
            };
            assert_eq!(scrub(par.stats()), scrub(seq.stats()), "threads={threads}");
            for (a, b) in par.sessions().zip(seq.sessions()) {
                assert_eq!(a.solves, b.solves, "threads={threads}");
            }
        }
    }

    #[test]
    fn degraded_server_sheds_sessions_with_provenance() {
        use eis::FlakyProvider;
        let f = Fixture::new();
        // Every upstream call fails, and component fallbacks are off, so
        // every first solve errors.
        let flaky = Arc::new(FlakyProvider::new(f.sims.clone(), 1, "bundle"));
        let server = InfoServer::new(flaky.clone(), flaky.clone(), flaky)
            .with_resilience(eis::ResiliencePolicy::default(), 7);
        let config =
            EcoChargeConfig { degraded: DegradedPolicy::disabled(), ..EcoChargeConfig::default() };
        let ctx = QueryCtx::new(&f.graph, &f.fleet, &server, &f.sims, config);

        let mut svc = SessionService::new(ServiceConfig::default());
        for trip in &f.trips {
            svc.register(&ctx, trip).unwrap();
        }
        svc.run_to_completion(&ctx).unwrap();
        let stats = svc.stats();
        assert_eq!(stats.sessions_shed, f.trips.len() as u64);
        assert_eq!(stats.sessions_completed, 0);
        assert_eq!(svc.active_sessions(), 0);
        for s in svc.sessions() {
            assert_eq!(s.phase, SessionPhase::Shed);
            let reason = s.shed_reason.as_deref().unwrap();
            assert!(reason.contains("solve failed"), "{reason}");
            assert!(reason.contains("breaker"), "resilience provenance missing: {reason}");
        }

        // Without shedding, the same failure surfaces as a tick error.
        let mut strict =
            SessionService::new(ServiceConfig { shed_degraded: false, ..ServiceConfig::default() });
        strict.register(&ctx, &f.trips[0]).unwrap();
        assert!(strict.run_to_completion(&ctx).is_err());
    }
}
