//! Deterministic work-stealing parallel execution for CkNN-EC.
//!
//! The framework's dominant cost is per-candidate road-network search
//! (three A*/Dijkstra runs per charger). This crate provides the small,
//! dependency-light primitives that fan that work out over OS threads
//! while keeping results **bit-identical to sequential execution**:
//!
//! * every item is addressed by its index and its result is written into
//!   a pre-sized slot, so output order never depends on scheduling;
//! * work is claimed from a single shared atomic counter (a degenerate
//!   but contention-free work-stealing deque), so no items are dropped
//!   or duplicated;
//! * each worker owns one reusable scratch value (e.g. a
//!   `roadnet::SearchEngine`), so no search state is shared;
//! * `threads <= 1` takes the exact sequential code path, byte for byte.
//!
//! Floating-point results are bit-identical because each item's
//! computation touches only its own scratch and inputs — parallelism
//! changes *when* an item runs, never *what* it computes.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Map `f` over `items` on up to `threads` workers, preserving order.
///
/// `scratch(w)` builds the per-worker scratch value (worker indices are
/// `0..workers`); `f(&mut scratch, index, item)` computes one result.
/// The returned vector satisfies `out[i] == f(_, i, &items[i])` exactly
/// as the sequential loop would produce it.
///
/// With `threads <= 1` (or fewer than two items) this is a plain
/// sequential loop over `scratch(0)` — no threads, no channels.
pub fn parallel_map<T, S, R, FS, F>(threads: usize, items: &[T], mut scratch: FS, f: F) -> Vec<R>
where
    T: Sync,
    S: Send,
    R: Send,
    FS: FnMut(usize) -> S,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let workers = threads.min(items.len()).max(1);
    if workers <= 1 {
        let mut s = scratch(0);
        return items.iter().enumerate().map(|(i, t)| f(&mut s, i, t)).collect();
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = crossbeam::channel::unbounded::<(usize, R)>();
    let mut slots: Vec<Option<R>> = Vec::new();
    slots.resize_with(items.len(), || None);

    std::thread::scope(|scope| {
        for w in 0..workers {
            let mut s = scratch(w);
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                if tx.send((i, f(&mut s, i, &items[i]))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (i, r) in rx.iter() {
            slots[i] = Some(r);
        }
    });

    slots.into_iter().map(|r| r.expect("every slot computed exactly once")).collect()
}

/// Map `f` over `items` **by mutable reference** on up to `threads`
/// workers, preserving order — the fan-out the session service uses to
/// execute one batch of events, each against its own session's mutable
/// state (Dynamic Cache, search engine).
///
/// Items must be distinct objects (a `&mut [T]` guarantees it), so no
/// two workers can ever touch the same state: each index is claimed by
/// exactly one worker via the shared counter, and the per-item mutex
/// exists only to make `&mut T` reachable from scoped threads without
/// `unsafe` — every lock is taken exactly once, uncontended.
///
/// With `threads <= 1` (or fewer than two items) this is the exact
/// sequential loop, byte for byte, same as [`parallel_map`].
pub fn parallel_map_mut<T, S, R, FS, F>(
    threads: usize,
    items: &mut [T],
    mut scratch: FS,
    f: F,
) -> Vec<R>
where
    T: Send,
    S: Send,
    R: Send,
    FS: FnMut(usize) -> S,
    F: Fn(&mut S, usize, &mut T) -> R + Sync,
{
    let workers = threads.min(items.len()).max(1);
    if workers <= 1 {
        let mut s = scratch(0);
        return items.iter_mut().enumerate().map(|(i, t)| f(&mut s, i, t)).collect();
    }

    let cells: Vec<parking_lot::Mutex<&mut T>> =
        items.iter_mut().map(parking_lot::Mutex::new).collect();
    let n = cells.len();
    let next = AtomicUsize::new(0);
    let (tx, rx) = crossbeam::channel::unbounded::<(usize, R)>();
    let mut slots: Vec<Option<R>> = Vec::new();
    slots.resize_with(n, || None);

    std::thread::scope(|scope| {
        for w in 0..workers {
            let mut s = scratch(w);
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            let cells = &cells;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let mut item = cells[i].lock();
                let r = f(&mut s, i, &mut **item);
                drop(item);
                if tx.send((i, r)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (i, r) in rx.iter() {
            slots[i] = Some(r);
        }
    });

    slots.into_iter().map(|r| r.expect("every slot computed exactly once")).collect()
}

/// Fallible [`parallel_map`]: `f` returns `Result<R, E>` and the first
/// error **by item index** (not by completion time) is returned, making
/// the error value deterministic.
///
/// The sequential path (`threads <= 1`) short-circuits on the first
/// error exactly like a `?`-loop. The parallel path computes all slots
/// before selecting the error, so side effects of *later failing* items
/// (e.g. upstream probe counts) can exceed the sequential run's — but
/// only on error paths, which abort the whole query anyway.
pub fn try_parallel_map<T, S, R, E, FS, F>(
    threads: usize,
    items: &[T],
    mut scratch: FS,
    f: F,
) -> Result<Vec<R>, E>
where
    T: Sync,
    S: Send,
    R: Send,
    E: Send,
    FS: FnMut(usize) -> S,
    F: Fn(&mut S, usize, &T) -> Result<R, E> + Sync,
{
    let workers = threads.min(items.len()).max(1);
    if workers <= 1 {
        let mut s = scratch(0);
        let mut out = Vec::with_capacity(items.len());
        for (i, t) in items.iter().enumerate() {
            out.push(f(&mut s, i, t)?);
        }
        return Ok(out);
    }
    let results = parallel_map(threads, items, scratch, f);
    let mut out = Vec::with_capacity(results.len());
    for r in results {
        out.push(r?);
    }
    Ok(out)
}

/// Run `a` on the current thread and `b` on a scoped worker, returning
/// both results. Used to overlap independent batched searches.
pub fn join<RA, RB, A, B>(a: A, b: B) -> (RA, RB)
where
    RA: Send,
    RB: Send,
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
{
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        (ra, hb.join().expect("joined task panicked"))
    })
}

/// Three-way [`join`]: `a` runs on the current thread, `b` and `c` on
/// scoped workers.
pub fn join3<RA, RB, RC, A, B, C>(a: A, b: B, c: C) -> (RA, RB, RC)
where
    RA: Send,
    RB: Send,
    RC: Send,
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    C: FnOnce() -> RC + Send,
{
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let hc = scope.spawn(c);
        let ra = a();
        (ra, hb.join().expect("joined task panicked"), hc.join().expect("joined task panicked"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn parallel_map_preserves_item_order() {
        let items: Vec<u64> = (0..997).collect();
        let seq = parallel_map(1, &items, |_| (), |_, i, &x| x * 3 + i as u64);
        for threads in [2, 4, 8] {
            let par = parallel_map(threads, &items, |_| (), |_, i, &x| x * 3 + i as u64);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn each_worker_gets_its_own_scratch() {
        let items: Vec<u32> = (0..64).collect();
        let spawned = AtomicU64::new(0);
        // Scratch is a counter private to each worker; if it were shared,
        // the per-item increments would interleave and sums would differ.
        let out = parallel_map(
            4,
            &items,
            |_| {
                spawned.fetch_add(1, Ordering::Relaxed);
                0u64
            },
            |local, _, _| {
                *local += 1;
                *local
            },
        );
        // Each worker's scratch starts at 0, so every result is >= 1 and
        // no result can exceed the item count.
        assert!(out.iter().all(|&v| v >= 1 && v <= items.len() as u64));
        assert!(spawned.load(Ordering::Relaxed) <= 4);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u8> = vec![];
        assert!(parallel_map(8, &empty, |_| (), |_, _, &x| x).is_empty());
        assert_eq!(parallel_map(8, &[9u8], |_| (), |_, _, &x| x + 1), vec![10]);
    }

    #[test]
    fn parallel_map_mut_mutates_every_item_and_matches_sequential() {
        let mut seq_items: Vec<(u64, u64)> = (0..311).map(|i| (i, 0)).collect();
        let mut par_items = seq_items.clone();
        let run = |threads: usize, items: &mut [(u64, u64)]| {
            parallel_map_mut(
                threads,
                items,
                |_| 0u64,
                |calls, i, item| {
                    *calls += 1;
                    item.1 = item.0 * 7 + i as u64;
                    item.1
                },
            )
        };
        let seq_out = run(1, &mut seq_items);
        for threads in [2, 4, 8] {
            let mut items = (0..311).map(|i| (i, 0)).collect::<Vec<_>>();
            let out = run(threads, &mut items);
            assert_eq!(out, seq_out, "threads={threads}");
            assert_eq!(items, seq_items, "threads={threads}: in-place mutations must match");
        }
        let _ = run(4, &mut par_items);
        assert!(par_items.iter().all(|&(i, v)| v != 0 || i == 0), "every item visited");
    }

    #[test]
    fn parallel_map_mut_handles_empty_and_singleton() {
        let mut empty: Vec<u8> = vec![];
        assert!(parallel_map_mut(8, &mut empty, |_| (), |_, _, x| *x).is_empty());
        let mut one = [9u8];
        assert_eq!(
            parallel_map_mut(
                8,
                &mut one,
                |_| (),
                |_, _, x| {
                    *x += 1;
                    *x
                }
            ),
            vec![10]
        );
        assert_eq!(one, [10]);
    }

    #[test]
    fn try_parallel_map_returns_first_error_by_index() {
        let items: Vec<u32> = (0..100).collect();
        for threads in [1, 4] {
            let err = try_parallel_map(
                threads,
                &items,
                |_| (),
                |_, _, &x| {
                    if x % 7 == 3 {
                        Err(x)
                    } else {
                        Ok(x)
                    }
                },
            )
            .unwrap_err();
            assert_eq!(err, 3, "threads={threads}");
        }
    }

    #[test]
    fn try_parallel_map_ok_matches_sequential() {
        let items: Vec<u64> = (0..333).collect();
        let seq: Vec<u64> =
            try_parallel_map::<_, _, _, (), _, _>(1, &items, |_| (), |_, _, &x| Ok(x * x)).unwrap();
        let par: Vec<u64> =
            try_parallel_map::<_, _, _, (), _, _>(4, &items, |_| (), |_, _, &x| Ok(x * x)).unwrap();
        assert_eq!(par, seq);
    }

    #[test]
    fn join_and_join3_return_all_results() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!((a, b), (2, "two"));
        let (x, y, z) = join3(|| 1, || 2, || 3);
        assert_eq!((x, y, z), (1, 2, 3));
    }
}
